"""Hand-written lexer for the Verilog-2001 subset used throughout the project.

The lexer is deliberately simple and fully deterministic: it performs a single
left-to-right scan, strips comments, and produces :class:`~repro.verilog.tokens.Token`
objects.  It is the first stage of the "industry-standard compiler" substitute used
for dataset verification and syntax pass@k scoring (see DESIGN.md).
"""

from __future__ import annotations

from .errors import LexerError
from .tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789$")
_DIGITS = set("0123456789")
_BASE_CHARS = {
    "b": set("01xXzZ?_"),
    "o": set("01234567xXzZ?_"),
    "d": set("0123456789_"),
    "h": set("0123456789abcdefABCDEFxXzZ?_"),
}


class Lexer:
    """Convert Verilog source text into a list of tokens.

    Example:
        >>> tokens = Lexer("module m; endmodule").tokenize()
        >>> [t.text for t in tokens[:-1]]
        ['module', 'm', ';', 'endmodule']
    """

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1
        self.tokens: list[Token] = []

    # ------------------------------------------------------------------ helpers
    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _error(self, message: str) -> LexerError:
        return LexerError(message, self.line, self.column)

    def _emit(self, kind: TokenKind, text: str, line: int, column: int) -> None:
        self.tokens.append(Token(kind, text, line, column))

    # ------------------------------------------------------------------ scanning
    def tokenize(self) -> list[Token]:
        """Scan the whole source and return tokens terminated by an EOF token."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                self._skip_line_comment()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            elif ch == "`":
                self._skip_compiler_directive()
            elif ch in _IDENT_START:
                self._scan_identifier()
            elif ch == "\\":
                self._scan_escaped_identifier()
            elif ch == "$":
                self._scan_system_identifier()
            elif ch in _DIGITS or (ch == "'" and self._peek(1).lower() in "bodh"):
                self._scan_number()
            elif ch == '"':
                self._scan_string()
            else:
                self._scan_operator_or_punctuation()
        self._emit(TokenKind.EOF, "", self.line, self.column)
        return self.tokens

    def _skip_line_comment(self) -> None:
        while self.pos < len(self.source) and self._peek() != "\n":
            self._advance()

    def _skip_block_comment(self) -> None:
        start_line, start_col = self.line, self.column
        self._advance(2)
        while self.pos < len(self.source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LexerError("unterminated block comment", start_line, start_col)

    def _skip_compiler_directive(self) -> None:
        # `timescale, `define, `include ... are skipped up to end of line.  The
        # synthesizable subset we model does not require macro expansion.
        while self.pos < len(self.source) and self._peek() != "\n":
            self._advance()

    def _scan_identifier(self) -> None:
        line, column = self.line, self.column
        start = self.pos
        while self.pos < len(self.source) and self._peek() in _IDENT_CONT:
            self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENTIFIER
        self._emit(kind, text, line, column)

    def _scan_escaped_identifier(self) -> None:
        line, column = self.line, self.column
        self._advance()  # backslash
        start = self.pos
        while self.pos < len(self.source) and self._peek() not in " \t\r\n":
            self._advance()
        text = self.source[start : self.pos]
        if not text:
            raise LexerError("empty escaped identifier", line, column)
        self._emit(TokenKind.IDENTIFIER, text, line, column)

    def _scan_system_identifier(self) -> None:
        line, column = self.line, self.column
        start = self.pos
        self._advance()  # $
        while self.pos < len(self.source) and self._peek() in _IDENT_CONT:
            self._advance()
        self._emit(TokenKind.SYSTEM_IDENTIFIER, self.source[start : self.pos], line, column)

    def _scan_number(self) -> None:
        line, column = self.line, self.column
        start = self.pos
        # Optional decimal size before the base specifier.
        while self.pos < len(self.source) and self._peek() in _DIGITS | {"_"}:
            self._advance()
        if self._peek() == "'":
            self._advance()
            signed_marker = self._peek().lower()
            if signed_marker == "s":
                self._advance()
            base = self._peek().lower()
            if base not in _BASE_CHARS:
                raise self._error(f"invalid number base {base!r}")
            self._advance()
            allowed = _BASE_CHARS[base]
            digit_start = self.pos
            while self.pos < len(self.source) and self._peek() in allowed:
                self._advance()
            if self.pos == digit_start:
                raise self._error("based number is missing digits")
        else:
            # Possibly a real literal (e.g. delays in testbench code).
            if self._peek() == "." and self._peek(1) in _DIGITS:
                self._advance()
                while self.pos < len(self.source) and self._peek() in _DIGITS:
                    self._advance()
        self._emit(TokenKind.NUMBER, self.source[start : self.pos], line, column)

    def _scan_string(self) -> None:
        line, column = self.line, self.column
        self._advance()  # opening quote
        start = self.pos
        while self.pos < len(self.source) and self._peek() != '"':
            if self._peek() == "\\":
                self._advance()
            if self._peek() == "\n":
                raise LexerError("unterminated string literal", line, column)
            self._advance()
        if self.pos >= len(self.source):
            raise LexerError("unterminated string literal", line, column)
        text = self.source[start : self.pos]
        self._advance()  # closing quote
        self._emit(TokenKind.STRING, text, line, column)

    def _scan_operator_or_punctuation(self) -> None:
        line, column = self.line, self.column
        for op in MULTI_CHAR_OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                self._emit(TokenKind.OPERATOR, op, line, column)
                return
        ch = self._peek()
        if ch in SINGLE_CHAR_OPERATORS:
            self._advance()
            self._emit(TokenKind.OPERATOR, ch, line, column)
            return
        if ch in PUNCTUATION:
            self._advance()
            self._emit(TokenKind.PUNCTUATION, ch, line, column)
            return
        raise self._error(f"unexpected character {ch!r}")


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper returning the token list for ``source``."""
    return Lexer(source).tokenize()
