"""Recursive-descent parser for the Verilog-2001 subset.

The parser turns a token stream into the AST defined in
:mod:`repro.verilog.ast_nodes`.  It accepts both ANSI-style and non-ANSI-style
port declarations, procedural blocks with the usual statement forms, continuous
assignments, parameters, functions and module instantiations — the constructs
exercised by the HaVen datasets and benchmarks.

Example:
    >>> from repro.verilog.parser import parse_source
    >>> design = parse_source("module inv(input a, output y); assign y = ~a; endmodule")
    >>> design.modules[0].name
    'inv'
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenKind

# Binary operator precedence, lowest first.  Each level is left-associative
# except ``**`` which is handled right-associatively in ``_parse_binary``.
_BINARY_PRECEDENCE: list[tuple[str, ...]] = [
    ("||",),
    ("&&",),
    ("|", "~|"),
    ("^", "~^", "^~"),
    ("&", "~&"),
    ("==", "!=", "===", "!=="),
    ("<", "<=", ">", ">="),
    ("<<", ">>", "<<<", ">>>"),
    ("+", "-"),
    ("*", "/", "%"),
    ("**",),
]

_UNARY_OPERATORS = {"+", "-", "!", "~", "&", "|", "^", "~&", "~|", "~^", "^~"}


class Parser:
    """Parse a token list into a :class:`~repro.verilog.ast_nodes.SourceFile`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0

    # ------------------------------------------------------------------ token helpers
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self.current
        return ParseError(f"{message}, found {token.text!r}", token.line, token.column)

    def _expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self._error(f"expected keyword {word!r}")
        return self._advance()

    def _expect_punct(self, punct: str) -> Token:
        if not self.current.is_punct(punct):
            raise self._error(f"expected {punct!r}")
        return self._advance()

    def _expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            raise self._error(f"expected operator {op!r}")
        return self._advance()

    def _expect_identifier(self) -> str:
        if self.current.kind is not TokenKind.IDENTIFIER:
            raise self._error("expected identifier")
        return self._advance().text

    def _accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_punct(self, punct: str) -> bool:
        if self.current.is_punct(punct):
            self._advance()
            return True
        return False

    def _accept_op(self, op: str) -> bool:
        if self.current.is_op(op):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------ top level
    def parse(self) -> ast.SourceFile:
        """Parse the whole token stream into a source file."""
        source = ast.SourceFile()
        while self.current.kind is not TokenKind.EOF:
            if self.current.is_keyword("module"):
                source.modules.append(self._parse_module())
            else:
                raise self._error("expected 'module' at top level")
        return source

    def _parse_module(self) -> ast.Module:
        self._expect_keyword("module")
        name = self._expect_identifier()
        module = ast.Module(name=name)

        if self.current.is_punct("#"):
            self._parse_module_parameter_port_list(module)

        if self.current.is_punct("("):
            self._parse_port_list(module)

        self._expect_punct(";")

        while not self.current.is_keyword("endmodule"):
            if self.current.kind is TokenKind.EOF:
                raise self._error("unexpected end of file inside module")
            item = self._parse_module_item()
            if item is not None:
                module.items.append(item)
        self._expect_keyword("endmodule")
        self._merge_non_ansi_ports(module)
        return module

    def _parse_module_parameter_port_list(self, module: ast.Module) -> None:
        self._expect_punct("#")
        self._expect_punct("(")
        while True:
            self._accept_keyword("parameter")
            if self.current.is_punct("["):
                self._parse_range()
            pname = self._expect_identifier()
            self._expect_op("=")
            module.parameters[pname] = self._parse_expression()
            if not self._accept_punct(","):
                break
        self._expect_punct(")")

    def _parse_port_list(self, module: ast.Module) -> None:
        self._expect_punct("(")
        if self._accept_punct(")"):
            return
        while True:
            module.ports.append(self._parse_port())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")

    def _parse_port(self) -> ast.Port:
        direction: ast.PortDirection | None = None
        net_type: ast.NetType | None = None
        signed = False
        vector_range: ast.Range | None = None

        if self.current.is_keyword("input"):
            direction = ast.PortDirection.INPUT
            self._advance()
        elif self.current.is_keyword("output"):
            direction = ast.PortDirection.OUTPUT
            self._advance()
        elif self.current.is_keyword("inout"):
            direction = ast.PortDirection.INOUT
            self._advance()

        if self.current.is_keyword("wire"):
            net_type = ast.NetType.WIRE
            self._advance()
        elif self.current.is_keyword("reg"):
            net_type = ast.NetType.REG
            self._advance()

        if self._accept_keyword("signed"):
            signed = True
        if self.current.is_punct("["):
            vector_range = self._parse_range()

        name = self._expect_identifier()
        return ast.Port(
            name=name,
            direction=direction,
            net_type=net_type,
            range=vector_range,
            signed=signed,
        )

    def _merge_non_ansi_ports(self, module: ast.Module) -> None:
        """Fill in directions for non-ANSI ports from body port declarations."""
        declarations: dict[str, ast.PortDeclaration] = {}
        net_decls: dict[str, ast.NetDeclaration] = {}
        for item in module.items:
            if isinstance(item, ast.PortDeclaration):
                for port_name in item.names:
                    declarations[port_name] = item
            elif isinstance(item, ast.NetDeclaration):
                for net_name in item.names:
                    net_decls[net_name] = item
        for port in module.ports:
            if port.direction is None and port.name in declarations:
                decl = declarations[port.name]
                port.direction = decl.direction
                port.range = decl.range if port.range is None else port.range
                port.net_type = decl.net_type if port.net_type is None else port.net_type
                port.signed = port.signed or decl.signed
            if port.net_type is None and port.name in net_decls:
                port.net_type = net_decls[port.name].net_type
                if port.range is None:
                    port.range = net_decls[port.name].range

    # ------------------------------------------------------------------ module items
    def _parse_module_item(self) -> ast.ModuleItem | None:
        token = self.current
        if token.is_punct(";"):
            self._advance()
            return None
        if token.is_keyword("input") or token.is_keyword("output") or token.is_keyword("inout"):
            return self._parse_port_declaration()
        if token.is_keyword("wire") or token.is_keyword("reg") or token.is_keyword("integer"):
            return self._parse_net_declaration()
        if token.is_keyword("parameter") or token.is_keyword("localparam"):
            return self._parse_parameter_declaration()
        if token.is_keyword("assign"):
            return self._parse_continuous_assign()
        if token.is_keyword("always"):
            return self._parse_always_block()
        if token.is_keyword("initial"):
            return self._parse_initial_block()
        if token.is_keyword("genvar"):
            return self._parse_genvar_declaration()
        if token.is_keyword("function"):
            return self._parse_function_declaration()
        if token.kind is TokenKind.IDENTIFIER:
            return self._parse_module_instance()
        raise self._error("unexpected token in module body")

    def _parse_direction(self) -> ast.PortDirection:
        if self._accept_keyword("input"):
            return ast.PortDirection.INPUT
        if self._accept_keyword("output"):
            return ast.PortDirection.OUTPUT
        if self._accept_keyword("inout"):
            return ast.PortDirection.INOUT
        raise self._error("expected port direction")

    def _parse_port_declaration(self) -> ast.PortDeclaration:
        direction = self._parse_direction()
        net_type: ast.NetType | None = None
        if self._accept_keyword("wire"):
            net_type = ast.NetType.WIRE
        elif self._accept_keyword("reg"):
            net_type = ast.NetType.REG
        signed = self._accept_keyword("signed")
        vector_range = self._parse_range() if self.current.is_punct("[") else None
        names = [self._expect_identifier()]
        while self._accept_punct(","):
            names.append(self._expect_identifier())
        self._expect_punct(";")
        return ast.PortDeclaration(
            direction=direction,
            names=names,
            net_type=net_type,
            range=vector_range,
            signed=signed,
        )

    def _parse_net_declaration(self) -> ast.NetDeclaration:
        if self._accept_keyword("wire"):
            net_type = ast.NetType.WIRE
        elif self._accept_keyword("reg"):
            net_type = ast.NetType.REG
        elif self._accept_keyword("integer"):
            net_type = ast.NetType.INTEGER
        else:
            raise self._error("expected net type")
        signed = self._accept_keyword("signed")
        vector_range = self._parse_range() if self.current.is_punct("[") else None

        names: list[str] = []
        initial_values: dict[str, ast.Expression] = {}
        array_range: ast.Range | None = None
        while True:
            name = self._expect_identifier()
            names.append(name)
            if self.current.is_punct("["):
                array_range = self._parse_range()
            if self._accept_op("="):
                initial_values[name] = self._parse_expression()
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return ast.NetDeclaration(
            net_type=net_type,
            names=names,
            range=vector_range,
            signed=signed,
            array_range=array_range,
            initial_values=initial_values,
        )

    def _parse_parameter_declaration(self) -> ast.ParameterDeclaration:
        local = self.current.is_keyword("localparam")
        self._advance()
        signed = self._accept_keyword("signed")
        vector_range = self._parse_range() if self.current.is_punct("[") else None
        names: dict[str, ast.Expression] = {}
        while True:
            name = self._expect_identifier()
            self._expect_op("=")
            names[name] = self._parse_expression()
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return ast.ParameterDeclaration(names=names, local=local, range=vector_range, signed=signed)

    def _parse_continuous_assign(self) -> ast.ContinuousAssign:
        self._expect_keyword("assign")
        target = self._parse_lvalue()
        self._expect_op("=")
        value = self._parse_expression()
        self._expect_punct(";")
        return ast.ContinuousAssign(target=target, value=value)

    def _parse_always_block(self) -> ast.AlwaysBlock:
        self._expect_keyword("always")
        sensitivity: list[ast.SensitivityItem] = []
        if self._accept_punct("@"):
            sensitivity = self._parse_sensitivity_list()
        body = self._parse_statement()
        return ast.AlwaysBlock(sensitivity=sensitivity, body=body)

    def _parse_initial_block(self) -> ast.InitialBlock:
        self._expect_keyword("initial")
        body = self._parse_statement()
        return ast.InitialBlock(body=body)

    def _parse_genvar_declaration(self) -> ast.GenvarDeclaration:
        self._expect_keyword("genvar")
        names = [self._expect_identifier()]
        while self._accept_punct(","):
            names.append(self._expect_identifier())
        self._expect_punct(";")
        return ast.GenvarDeclaration(names=names)

    def _parse_function_declaration(self) -> ast.FunctionDeclaration:
        self._expect_keyword("function")
        self._accept_keyword("signed")
        vector_range = self._parse_range() if self.current.is_punct("[") else None
        name = self._expect_identifier()
        self._expect_punct(";")
        inputs: list[ast.PortDeclaration] = []
        locals_: list[ast.NetDeclaration] = []
        while self.current.is_keyword("input") or self.current.is_keyword("reg") or self.current.is_keyword("integer"):
            if self.current.is_keyword("input"):
                inputs.append(self._parse_port_declaration())
            else:
                locals_.append(self._parse_net_declaration())
        body = self._parse_statement()
        self._expect_keyword("endfunction")
        return ast.FunctionDeclaration(name=name, range=vector_range, inputs=inputs, locals=locals_, body=body)

    def _parse_module_instance(self) -> ast.ModuleInstance:
        module_name = self._expect_identifier()
        parameter_overrides: list[ast.PortConnection] = []
        if self._accept_punct("#"):
            self._expect_punct("(")
            parameter_overrides = self._parse_connection_list()
            self._expect_punct(")")
        instance_name = self._expect_identifier()
        self._expect_punct("(")
        connections = self._parse_connection_list() if not self.current.is_punct(")") else []
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.ModuleInstance(
            module_name=module_name,
            instance_name=instance_name,
            connections=connections,
            parameter_overrides=parameter_overrides,
        )

    def _parse_connection_list(self) -> list[ast.PortConnection]:
        connections: list[ast.PortConnection] = []
        while True:
            if self._accept_punct("."):
                port = self._expect_identifier()
                self._expect_punct("(")
                expression = None if self.current.is_punct(")") else self._parse_expression()
                self._expect_punct(")")
                connections.append(ast.PortConnection(port=port, expression=expression))
            else:
                connections.append(ast.PortConnection(port=None, expression=self._parse_expression()))
            if not self._accept_punct(","):
                break
        return connections

    def _parse_range(self) -> ast.Range:
        """Parse a packed range ``[msb:lsb]``."""
        self._expect_punct("[")
        msb = self._parse_expression()
        self._expect_punct(":")
        lsb = self._parse_expression()
        self._expect_punct("]")
        return ast.Range(msb=msb, lsb=lsb)

    # ------------------------------------------------------------------ statements
    def _parse_sensitivity_list(self) -> list[ast.SensitivityItem]:
        items: list[ast.SensitivityItem] = []
        if self._accept_op("*"):
            return [ast.SensitivityItem(edge=ast.EdgeKind.ANY, signal=None)]
        self._expect_punct("(")
        if self._accept_op("*"):
            self._expect_punct(")")
            return [ast.SensitivityItem(edge=ast.EdgeKind.ANY, signal=None)]
        while True:
            edge = ast.EdgeKind.LEVEL
            if self._accept_keyword("posedge"):
                edge = ast.EdgeKind.POSEDGE
            elif self._accept_keyword("negedge"):
                edge = ast.EdgeKind.NEGEDGE
            signal = self._parse_expression()
            items.append(ast.SensitivityItem(edge=edge, signal=signal))
            if self._accept_keyword("or") or self._accept_punct(","):
                continue
            break
        self._expect_punct(")")
        return items

    def _parse_statement(self) -> ast.Statement | None:
        token = self.current
        if token.is_punct(";"):
            self._advance()
            return ast.NullStatement()
        if token.is_keyword("begin"):
            return self._parse_block()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("case") or token.is_keyword("casez") or token.is_keyword("casex"):
            return self._parse_case()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("repeat"):
            return self._parse_repeat()
        if token.is_keyword("forever"):
            self._advance()
            body = self._parse_statement()
            return ast.WhileLoop(condition=ast.Number(value=1), body=body)
        if token.is_punct("#"):
            return self._parse_delay_statement()
        if token.is_punct("@"):
            return self._parse_event_wait()
        if token.kind is TokenKind.SYSTEM_IDENTIFIER:
            return self._parse_system_task()
        if token.kind is TokenKind.IDENTIFIER or token.is_punct("{"):
            return self._parse_assignment_statement()
        if token.is_keyword("integer") or token.is_keyword("reg"):
            # Local declarations inside named blocks are rare in the subset; treat
            # them as a parse error with a clear message.
            raise self._error("declarations are only allowed at module scope in this subset")
        raise self._error("expected statement")

    def _parse_block(self) -> ast.Block:
        self._expect_keyword("begin")
        name: str | None = None
        if self._accept_punct(":"):
            name = self._expect_identifier()
        statements: list[ast.Statement] = []
        while not self.current.is_keyword("end"):
            if self.current.kind is TokenKind.EOF:
                raise self._error("unexpected end of file inside begin/end block")
            statement = self._parse_statement()
            if statement is not None:
                statements.append(statement)
        self._expect_keyword("end")
        return ast.Block(statements=statements, name=name)

    def _parse_if(self) -> ast.IfStatement:
        self._expect_keyword("if")
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        then_branch = self._parse_statement()
        else_branch: ast.Statement | None = None
        if self._accept_keyword("else"):
            else_branch = self._parse_statement()
        return ast.IfStatement(condition=condition, then_branch=then_branch, else_branch=else_branch)

    def _parse_case(self) -> ast.CaseStatement:
        kind = self._advance().text
        self._expect_punct("(")
        subject = self._parse_expression()
        self._expect_punct(")")
        items: list[ast.CaseItem] = []
        while not self.current.is_keyword("endcase"):
            if self.current.kind is TokenKind.EOF:
                raise self._error("unexpected end of file inside case statement")
            if self._accept_keyword("default"):
                self._accept_punct(":")
                body = self._parse_statement()
                items.append(ast.CaseItem(expressions=[], body=body, is_default=True))
                continue
            expressions = [self._parse_expression()]
            while self._accept_punct(","):
                expressions.append(self._parse_expression())
            self._expect_punct(":")
            body = self._parse_statement()
            items.append(ast.CaseItem(expressions=expressions, body=body))
        self._expect_keyword("endcase")
        return ast.CaseStatement(kind=kind, subject=subject, items=items)

    def _parse_for(self) -> ast.ForLoop:
        self._expect_keyword("for")
        self._expect_punct("(")
        init_target = self._parse_lvalue()
        self._expect_op("=")
        init_value = self._parse_expression()
        self._expect_punct(";")
        condition = self._parse_expression()
        self._expect_punct(";")
        step_target = self._parse_lvalue()
        self._expect_op("=")
        step_value = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.ForLoop(
            init=ast.BlockingAssign(target=init_target, value=init_value),
            condition=condition,
            step=ast.BlockingAssign(target=step_target, value=step_value),
            body=body,
        )

    def _parse_while(self) -> ast.WhileLoop:
        self._expect_keyword("while")
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.WhileLoop(condition=condition, body=body)

    def _parse_repeat(self) -> ast.RepeatLoop:
        self._expect_keyword("repeat")
        self._expect_punct("(")
        count = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.RepeatLoop(count=count, body=body)

    def _parse_delay_statement(self) -> ast.DelayStatement:
        self._expect_punct("#")
        delay = self._parse_primary()
        body: ast.Statement | None = None
        if not self.current.is_punct(";"):
            body = self._parse_statement()
        else:
            self._advance()
        return ast.DelayStatement(delay=delay, body=body)

    def _parse_event_wait(self) -> ast.EventWait:
        self._expect_punct("@")
        events = self._parse_sensitivity_list()
        body: ast.Statement | None = None
        if not self.current.is_punct(";"):
            body = self._parse_statement()
        else:
            self._advance()
        return ast.EventWait(events=events, body=body)

    def _parse_system_task(self) -> ast.SystemTaskCall:
        name = self._advance().text
        args: list[ast.Expression] = []
        if self._accept_punct("("):
            if not self.current.is_punct(")"):
                args.append(self._parse_expression())
                while self._accept_punct(","):
                    args.append(self._parse_expression())
            self._expect_punct(")")
        self._expect_punct(";")
        return ast.SystemTaskCall(name=name, args=args)

    def _parse_assignment_statement(self) -> ast.Statement:
        target = self._parse_lvalue()
        if self._accept_op("<="):
            value = self._parse_expression()
            self._expect_punct(";")
            return ast.NonBlockingAssign(target=target, value=value)
        if self._accept_op("="):
            # Allow an intra-assignment delay (``a = #5 b;``), ignored functionally.
            if self._accept_punct("#"):
                self._parse_primary()
            value = self._parse_expression()
            self._expect_punct(";")
            return ast.BlockingAssign(target=target, value=value)
        raise self._error("expected '=' or '<=' in assignment")

    def _parse_lvalue(self) -> ast.Expression:
        if self.current.is_punct("{"):
            return self._parse_concat()
        name = self._expect_identifier()
        expr: ast.Expression = ast.Identifier(name=name)
        while self.current.is_punct("["):
            expr = self._parse_select(expr)
        return expr

    # ------------------------------------------------------------------ expressions
    def _parse_expression(self) -> ast.Expression:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expression:
        condition = self._parse_binary(0)
        if self._accept_op("?"):
            if_true = self._parse_expression()
            self._expect_punct(":")
            if_false = self._parse_expression()
            return ast.Ternary(condition=condition, if_true=if_true, if_false=if_false)
        return condition

    def _parse_binary(self, level: int) -> ast.Expression:
        if level >= len(_BINARY_PRECEDENCE):
            return self._parse_unary()
        operators = _BINARY_PRECEDENCE[level]
        left = self._parse_binary(level + 1)
        while self.current.kind is TokenKind.OPERATOR and self.current.text in operators:
            op = self._advance().text
            right = self._parse_binary(level + 1)
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expression:
        if self.current.kind is TokenKind.OPERATOR and self.current.text in _UNARY_OPERATORS:
            op = self._advance().text
            operand = self._parse_unary()
            return ast.UnaryOp(op=op, operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            # Sized literal split across tokens: ``4`` then ``'b1010`` is lexed as one
            # token by our lexer, so only a single token needs decoding here.
            return _decode_number(token.text)
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.StringLiteral(value=token.text)
        if token.kind is TokenKind.SYSTEM_IDENTIFIER:
            name = self._advance().text
            args: list[ast.Expression] = []
            if self._accept_punct("("):
                if not self.current.is_punct(")"):
                    args.append(self._parse_expression())
                    while self._accept_punct(","):
                        args.append(self._parse_expression())
                self._expect_punct(")")
            return ast.FunctionCall(name=name, args=args)
        if token.kind is TokenKind.IDENTIFIER:
            name = self._advance().text
            if self._accept_punct("("):
                args: list[ast.Expression] = []
                if not self.current.is_punct(")"):
                    args.append(self._parse_expression())
                    while self._accept_punct(","):
                        args.append(self._parse_expression())
                self._expect_punct(")")
                return ast.FunctionCall(name=name, args=args)
            expr: ast.Expression = ast.Identifier(name=name)
            while self.current.is_punct("["):
                expr = self._parse_select(expr)
            return expr
        if token.is_punct("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        if token.is_punct("{"):
            return self._parse_concat()
        raise self._error("expected expression")

    def _parse_select(self, target: ast.Expression) -> ast.Expression:
        self._expect_punct("[")
        first = self._parse_expression()
        if self._accept_punct(":"):
            second = self._parse_expression()
            self._expect_punct("]")
            return ast.PartSelect(target=target, msb=first, lsb=second, mode=":")
        if self.current.is_op("+:") or self.current.is_op("-:"):
            mode = self._advance().text
            width = self._parse_expression()
            self._expect_punct("]")
            return ast.PartSelect(target=target, msb=first, lsb=width, mode=mode)
        self._expect_punct("]")
        return ast.BitSelect(target=target, index=first)

    def _parse_concat(self) -> ast.Expression:
        self._expect_punct("{")
        first = self._parse_expression()
        if self.current.is_punct("{"):
            # Replication: {count{value}}
            self._expect_punct("{")
            value = self._parse_expression()
            parts = [value]
            while self._accept_punct(","):
                parts.append(self._parse_expression())
            self._expect_punct("}")
            self._expect_punct("}")
            inner: ast.Expression = parts[0] if len(parts) == 1 else ast.Concat(parts=parts)
            return ast.Replication(count=first, value=inner)
        parts = [first]
        while self._accept_punct(","):
            parts.append(self._parse_expression())
        self._expect_punct("}")
        return ast.Concat(parts=parts)


def _decode_number(text: str) -> ast.Number:
    """Decode a Verilog numeric literal into a :class:`~repro.verilog.ast_nodes.Number`."""
    original = text
    text = text.replace("_", "")
    if "'" not in text:
        if "." in text:
            # Real literals are only used for delays; store the integer part.
            return ast.Number(value=int(float(text)), text=original)
        return ast.Number(value=int(text), text=original)
    size_text, rest = text.split("'", 1)
    width = int(size_text) if size_text else None
    signed = False
    if rest and rest[0] in "sS":
        signed = True
        rest = rest[1:]
    base = rest[0].lower()
    digits = rest[1:]
    base_radix = {"b": 2, "o": 8, "d": 10, "h": 16}[base]
    value = 0
    xz_mask = 0
    bits_per_digit = {"b": 1, "o": 3, "d": 0, "h": 4}[base]
    for digit in digits:
        if digit in "xXzZ?":
            value = value * base_radix
            if bits_per_digit:
                xz_mask = (xz_mask << bits_per_digit) | ((1 << bits_per_digit) - 1)
            continue
        value = value * base_radix + int(digit, base_radix)
        if bits_per_digit:
            xz_mask <<= bits_per_digit
    if width is not None:
        value &= (1 << width) - 1
        xz_mask &= (1 << width) - 1
    return ast.Number(value=value, width=width, base=base, signed=signed, xz_mask=xz_mask, text=original)


def parse_source(source: str) -> ast.SourceFile:
    """Parse Verilog source text into a :class:`~repro.verilog.ast_nodes.SourceFile`."""
    return Parser(tokenize(source)).parse()


def parse_module(source: str, name: str | None = None) -> ast.Module:
    """Parse source text and return a single module.

    Args:
        source: Verilog source containing at least one module.
        name: if given, the module with this name is returned; otherwise the first.

    Raises:
        ParseError: if the source has no module, or the named module is missing.
    """
    design = parse_source(source)
    if not design.modules:
        raise ParseError("source contains no module definition")
    if name is None:
        return design.modules[0]
    module = design.find_module(name)
    if module is None:
        raise ParseError(f"module {name!r} not found in source")
    return module
