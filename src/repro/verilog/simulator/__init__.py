"""Event-free functional Verilog simulator used for functional pass@k scoring."""

from .values import LogicVector, concat_all
from .eval import EvalContext, ExpressionEvaluator
from .scheduler import Process, ProcessKind, SignalStore, StatementExecutor
from .simulator import ModuleSimulator, simulate_combinational
from .testbench import (
    CombinationalGolden,
    GoldenModel,
    Mismatch,
    ResetSpec,
    TestbenchResult,
    TestbenchRunner,
    run_functional_check,
)

__all__ = [
    "LogicVector",
    "concat_all",
    "EvalContext",
    "ExpressionEvaluator",
    "Process",
    "ProcessKind",
    "SignalStore",
    "StatementExecutor",
    "ModuleSimulator",
    "simulate_combinational",
    "CombinationalGolden",
    "GoldenModel",
    "Mismatch",
    "ResetSpec",
    "TestbenchResult",
    "TestbenchRunner",
    "run_functional_check",
]
