"""Event-free functional Verilog simulator used for functional pass@k scoring."""

from .values import BatchVector, LogicVector, batch_concat_all, concat_all
from .eval import (
    BatchEvalContext,
    BatchExpressionEvaluator,
    EvalContext,
    ExpressionEvaluator,
)
from .scheduler import (
    BatchSignalStore,
    BatchStatementExecutor,
    Process,
    ProcessKind,
    SignalStore,
    StatementExecutor,
)
from .simulator import (
    ModuleSimulator,
    elaborate_module,
    resolve_parameters,
    simulate_combinational,
)
from .batch import (
    BatchSimulator,
    differential_combinational,
    simulate_combinational_batch,
)
from .testbench import (
    BatchTestbenchRunner,
    CombinationalGolden,
    GoldenModel,
    Mismatch,
    ResetSpec,
    TestbenchResult,
    TestbenchRunner,
    run_functional_check,
)

__all__ = [
    "BatchVector",
    "LogicVector",
    "batch_concat_all",
    "concat_all",
    "BatchEvalContext",
    "BatchExpressionEvaluator",
    "EvalContext",
    "ExpressionEvaluator",
    "BatchSignalStore",
    "BatchStatementExecutor",
    "Process",
    "ProcessKind",
    "SignalStore",
    "StatementExecutor",
    "ModuleSimulator",
    "elaborate_module",
    "resolve_parameters",
    "simulate_combinational",
    "BatchSimulator",
    "differential_combinational",
    "simulate_combinational_batch",
    "BatchTestbenchRunner",
    "CombinationalGolden",
    "GoldenModel",
    "Mismatch",
    "ResetSpec",
    "TestbenchResult",
    "TestbenchRunner",
    "run_functional_check",
]
