"""Batched Verilog simulation: N stimulus lanes per pass.

:class:`BatchSimulator` elaborates a module once (sharing
:func:`~repro.verilog.simulator.simulator.elaborate_module` with the scalar
:class:`~repro.verilog.simulator.simulator.ModuleSimulator`) and then simulates
*N independent stimuli in parallel*.  Every signal is stored column-packed
(:class:`~repro.verilog.simulator.values.BatchVector`): bit ``j`` of column
``b`` is bit ``b`` of the signal on stimulus lane ``j``, so combinational
settling and sequential edges execute with word-wide ``&``/``|``/``^``/``~``
over the columns — the :class:`~repro.logic.bittable.BitTable` trick lifted to
stateful multi-bit RTL.

Two usage patterns:

* **combinational sweep** — one lane per stimulus vector, a single
  :meth:`BatchSimulator.apply_inputs` replaces N scalar passes (this is the hot
  path of functional-equivalence scoring; see ``benchmarks/perf``);
* **parallel sequences** — for clocked designs, lane ``j`` carries the
  ``j``-th *stimulus sequence*; :meth:`BatchSimulator.clock_cycle` advances all
  sequences one cycle, with per-lane edge masks so lanes may even disagree on
  data-input edges.

The scalar :class:`ModuleSimulator` stays the differential oracle: the batch
engine is validated lane-for-lane against it by the property tests in
``tests/verilog/test_batch_simulator.py`` and by the perf harness.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

from ...deadline import check_deadline
from .. import ast_nodes as ast
from ..errors import SimulationError
from .scheduler import BatchSignalStore, BatchStatementExecutor, ProcessKind
from .simulator import MAX_SETTLE_ITERATIONS, elaborate_module
from .values import BatchVector, LogicVector

#: Input value accepted per lane (scalars broadcast across all lanes).
BatchInput = Union[int, LogicVector, BatchVector, Sequence[Union[int, LogicVector]]]


class BatchSimulator:
    """Simulate one Verilog module over ``lanes`` independent stimuli at once."""

    def __init__(
        self,
        module,
        lanes: int,
        parameter_overrides: dict[str, int] | None = None,
        backend: str = "auto",
    ):
        from ..design import CompiledDesign

        if lanes < 1:
            raise SimulationError("BatchSimulator needs at least one stimulus lane")
        if backend not in ("auto", "codegen", "interpret"):
            raise SimulationError(f"unknown BatchSimulator backend {backend!r}")
        self.lanes = lanes
        self.backend = backend
        self.parameter_overrides = dict(parameter_overrides or {})
        design_from_compiled = False
        if isinstance(module, CompiledDesign):
            self.compiled: CompiledDesign | None = module
            self.module = module.module
            if self.parameter_overrides and self.parameter_overrides != module.parameter_overrides:
                self.design = elaborate_module(self.module, self.parameter_overrides)
            else:
                self.parameter_overrides = dict(module.parameter_overrides)
                self.design = module.elaborate()
                design_from_compiled = True
        else:
            self.compiled = None
            self.module = module
            self.design = elaborate_module(module, self.parameter_overrides)
        self.store = BatchSignalStore.from_scalar(self.design.store, lanes)
        self.executor = BatchStatementExecutor(
            self.store, self.design.parameters, self.design.functions
        )
        self._full_mask = (1 << lanes) - 1
        self._codegen = self._build_codegen(design_from_compiled)
        self._run_initial_blocks()
        self.settle()

    def _build_codegen(self, design_from_compiled: bool):
        """Codegen runtime for this design, or ``None`` (interpreter only)."""
        if self.backend == "interpret":
            return None
        from .. import codegen as codegen_mod

        if design_from_compiled and self.compiled is not None:
            label = self.compiled.codegen_label
            artifact = self.compiled.codegen
        else:
            label = self.design.name
            artifact = None
        if artifact is None:
            # Raw-module path (or a CompiledDesign re-elaborated with fresh
            # parameter overrides): generate directly, uncached.
            from ..design import _latch_risk, _undef_sources

            artifact = codegen_mod.generate(
                self.design,
                has_latch_risk=_latch_risk(self.design),
                undef_sources=tuple(sorted(_undef_sources(self.design))),
            )
        if artifact.supported:
            return codegen_mod.CodegenRuntime(artifact, self.lanes, label)
        if self.backend == "codegen":
            raise SimulationError(
                f"backend='codegen' but design {label!r} was rejected by the "
                f"lowering: {artifact.reject_reason}"
            )
        codegen_mod.record_fallback(label, artifact.reject_reason)
        return None

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_source(
        cls,
        source: str,
        lanes: int,
        module_name: str | None = None,
        parameter_overrides: dict[str, int] | None = None,
        database=None,
        backend: str = "auto",
    ) -> "BatchSimulator":
        """Build a batch simulator from source via the (default) design database."""
        from ..design import get_default_database

        db = database if database is not None else get_default_database()
        return cls(db.compile(source, module_name, parameter_overrides), lanes, backend=backend)

    def _run_initial_blocks(self) -> None:
        for process in self.design.processes:
            if process.kind is ProcessKind.INITIAL:
                self.executor.execute(process.body, self._full_mask, allow_nonblocking=False)

    # ------------------------------------------------------------------ value access
    @property
    def signals(self) -> dict[str, BatchVector]:
        """The current batch values of every signal."""
        return self.store.values

    def get(self, name: str) -> BatchVector:
        """Return the current batch value of a signal."""
        return self.store.get(name)

    def get_lane(self, name: str, lane: int) -> LogicVector:
        """Return one lane of a signal as a scalar value."""
        return self.store.get(name).lane(lane)

    def _coerce(self, name: str, value) -> BatchVector:
        width = self.store.widths[name]
        if isinstance(value, BatchVector):
            if value.lanes != self.lanes:
                raise SimulationError(
                    f"input {name!r} carries {value.lanes} lanes, simulator has {self.lanes}"
                )
            return value.resized(width)
        if isinstance(value, LogicVector):
            return BatchVector.broadcast(value.resized(width), self.lanes)
        if isinstance(value, int):
            return BatchVector.broadcast(LogicVector.from_int(value, width), self.lanes)
        values = list(value)
        if len(values) != self.lanes:
            raise SimulationError(
                f"input {name!r} supplies {len(values)} lane values, simulator has {self.lanes}"
            )
        vectors = [
            lane_value.resized(width)
            if isinstance(lane_value, LogicVector)
            else LogicVector.from_int(lane_value, width)
            for lane_value in values
        ]
        return BatchVector.from_vectors(vectors, width)

    def set_signal(self, name: str, value) -> None:
        """Force a signal to a value without edge processing (for test setup)."""
        self.store.set(name, self._coerce(name, value))

    # ------------------------------------------------------------------ execution
    def settle(self) -> None:
        """Re-evaluate combinational processes until no lane changes."""
        if self._codegen is not None and self._codegen.try_settle(self.store, self._full_mask):
            return
        for _ in range(MAX_SETTLE_ITERATIONS):
            check_deadline("BatchSimulator.settle")
            changed = False
            for process in self.design.processes:
                if process.kind is not ProcessKind.COMBINATIONAL:
                    continue
                before = self.store.snapshot()
                self.executor.execute(process.body, self._full_mask, allow_nonblocking=False)
                changed |= any(self.store.values[name] != before[name] for name in before)
            if not changed:
                return
        raise SimulationError(
            f"combinational logic in module {self.design.name!r} did not settle "
            f"after {MAX_SETTLE_ITERATIONS} iterations (combinational loop?)"
        )

    def apply_inputs(self, inputs: Mapping[str, BatchInput]) -> None:
        """Apply per-lane input changes, run triggered edges and settle.

        Accepts scalars (broadcast), per-lane sequences or packed
        :class:`BatchVector` values.  Edge detection is per lane: a sequential
        process runs masked to exactly the lanes whose sensitivity edges fired.
        """
        previous = {name: self.store.get(name) for name in inputs}
        for name, value in inputs.items():
            if name not in self.store.values:
                raise SimulationError(f"unknown input signal {name!r}")
            self.store.set(name, self._coerce(name, value))
        edge_masks = self._detect_edges(previous)
        self.settle()
        if edge_masks:
            self._run_sequential(edge_masks)
            self.settle()

    def _detect_edges(self, previous: dict[str, BatchVector]) -> dict[tuple[ast.EdgeKind, str], int]:
        """Per-lane edge masks for every changed input (bit 0 drives edges)."""
        edges: dict[tuple[ast.EdgeKind, str], int] = {}
        for name, old in previous.items():
            new = self.store.get(name)
            old_value, old_xz = old.value_cols[0], old.xz_cols[0]
            new_value, new_xz = new.value_cols[0], new.xz_cols[0]
            new_one = new_value & ~new_xz
            new_zero = ~new_value & ~new_xz & self._full_mask
            old_defined_one = old_value & ~old_xz
            old_defined_zero = ~old_value & ~old_xz & self._full_mask
            posedge = new_one & ~old_defined_one
            negedge = new_zero & ~old_defined_zero
            if posedge:
                edges[(ast.EdgeKind.POSEDGE, name)] = posedge
            if negedge:
                edges[(ast.EdgeKind.NEGEDGE, name)] = negedge
        return edges

    def _run_sequential(self, edge_masks: dict[tuple[ast.EdgeKind, str], int]) -> None:
        processes = [
            process
            for process in self.design.processes
            if process.kind is ProcessKind.SEQUENTIAL
        ]
        masks: list[int] = []
        for process in processes:
            mask = 0
            for edge, signal in process.edge_signals():
                mask |= edge_masks.get((edge, signal), 0)
            masks.append(mask)
        if self._codegen is not None and self._codegen.try_sequential(
            self.store, masks, self._full_mask
        ):
            return
        for process, mask in zip(processes, masks):
            if mask:
                self.executor.execute(process.body, mask, allow_nonblocking=True)
        self.executor.commit_nonblocking()

    def clock_cycle(
        self,
        clock: str = "clk",
        inputs: Mapping[str, BatchInput] | None = None,
    ) -> None:
        """Drive one full clock cycle on every lane: inputs, clock high, clock low."""
        if inputs:
            self.apply_inputs(inputs)
        self.apply_inputs({clock: 1})
        self.apply_inputs({clock: 0})

    def pulse(self, signal: str, active_low: bool = False) -> None:
        """Pulse a signal to its active level and back on every lane."""
        active, inactive = (0, 1) if active_low else (1, 0)
        self.apply_inputs({signal: active})
        self.apply_inputs({signal: inactive})

    # ------------------------------------------------------------------ introspection
    def output_values(self) -> dict[str, BatchVector]:
        """The current batch value of every output port."""
        return {port.name: self.get(port.name) for port in self.design.output_ports()}

    def lane_outputs(self, lane: int) -> dict[str, LogicVector]:
        """All output-port values of one lane (scalar view)."""
        return {port.name: self.get_lane(port.name, lane) for port in self.design.output_ports()}

    def input_names(self) -> list[str]:
        """Names of all input ports."""
        return [port.name for port in self.design.input_ports()]

    def output_names(self) -> list[str]:
        """Names of all output ports."""
        return [port.name for port in self.design.output_ports()]

    def has_sequential_processes(self) -> bool:
        """Whether the design contains edge-triggered processes."""
        if self.compiled is not None:
            return self.compiled.has_sequential_processes
        return any(process.kind is ProcessKind.SEQUENTIAL for process in self.design.processes)

    def has_latch_risk(self) -> bool:
        """Whether any combinational process may *hold* state (inferred latch).

        A level-sensitive ``always`` that conditionally skips assigning one of
        its targets keeps the previous value — history the scalar testbench
        carries across serially-applied vectors but independent batch lanes do
        not have.  Such designs must stay on the scalar path.
        """
        if self.compiled is not None:
            return self.compiled.has_latch_risk
        for process in self.design.processes:
            if process.kind is not ProcessKind.COMBINATIONAL or process.label != "always":
                continue
            maybe, definite = _assignment_sets(process.body)
            if maybe - definite:
                return True
        return False

    @property
    def display_log(self) -> list[str]:
        """Messages produced by ``$display``-style system tasks."""
        return self.executor.display_log


def _assignment_sets(statement: ast.Statement | None) -> tuple[set[str], set[str]]:
    """``(maybe-assigned, definitely-assigned)`` signal names for a statement.

    Conservative latch analysis: partial writes (bit/part selects) and loop
    bodies never count as *definite*; an ``if`` without ``else`` or a ``case``
    without ``default`` makes nothing definite.
    """
    if statement is None or isinstance(statement, ast.NullStatement):
        return set(), set()
    if isinstance(statement, ast.Block):
        maybe: set[str] = set()
        definite: set[str] = set()
        for inner in statement.statements:
            inner_maybe, inner_definite = _assignment_sets(inner)
            maybe |= inner_maybe
            definite |= inner_definite
        return maybe, definite
    if isinstance(statement, (ast.BlockingAssign, ast.NonBlockingAssign)):
        target = statement.target
        if isinstance(target, ast.Identifier):
            return {target.name}, {target.name}
        if isinstance(target, ast.Concat):
            maybe = set()
            definite = set()
            for part in target.parts:
                part_maybe, part_definite = _assignment_sets(
                    ast.BlockingAssign(target=part, value=statement.value)
                )
                maybe |= part_maybe
                definite |= part_definite
            return maybe, definite
        if isinstance(target, (ast.BitSelect, ast.PartSelect)):
            base = target.target
            while isinstance(base, (ast.BitSelect, ast.PartSelect)):
                base = base.target
            name = base.name if isinstance(base, ast.Identifier) else None
            return ({name} if name else set()), set()
        return set(), set()
    if isinstance(statement, ast.IfStatement):
        then_maybe, then_definite = _assignment_sets(statement.then_branch)
        else_maybe, else_definite = _assignment_sets(statement.else_branch)
        definite = then_definite & else_definite if statement.else_branch is not None else set()
        return then_maybe | else_maybe, definite
    if isinstance(statement, ast.CaseStatement):
        maybe = set()
        definite: set[str] | None = None
        has_default = False
        for item in statement.items:
            item_maybe, item_definite = _assignment_sets(item.body)
            maybe |= item_maybe
            definite = item_definite if definite is None else definite & item_definite
            has_default |= item.is_default
        if definite is None or not has_default:
            definite = set()
        return maybe, definite
    if isinstance(statement, (ast.ForLoop, ast.WhileLoop, ast.RepeatLoop)):
        body_maybe, _ = _assignment_sets(statement.body)
        extra: set[str] = set()
        if isinstance(statement, ast.ForLoop):
            init_maybe, _ = _assignment_sets(statement.init)
            step_maybe, _ = _assignment_sets(statement.step)
            extra = init_maybe | step_maybe
        return body_maybe | extra, set()
    if isinstance(statement, (ast.DelayStatement, ast.EventWait)):
        return _assignment_sets(statement.body)
    return set(), set()


def simulate_combinational_batch(
    source: str,
    input_vectors: Sequence[Mapping[str, int]],
    module_name: str | None = None,
) -> list[dict[str, LogicVector]]:
    """Batched drop-in for :func:`simulate_combinational`: one lane per vector.

    All vectors must drive the same input names (independent lanes have no
    "previous vector" to inherit missing signals from).
    """
    if not input_vectors:
        return []
    names = set(input_vectors[0])
    if any(set(vector) != names for vector in input_vectors):
        raise SimulationError("batched simulation requires a consistent input-name set")
    simulator = BatchSimulator.from_source(source, lanes=len(input_vectors), module_name=module_name)
    inputs = {name: [vector[name] for vector in input_vectors] for name in names}
    simulator.apply_inputs(inputs)
    return [simulator.lane_outputs(lane) for lane in range(simulator.lanes)]


def differential_combinational(
    source: str,
    input_vectors: Sequence[Mapping[str, int]],
    module_name: str | None = None,
) -> list[dict[str, LogicVector]]:
    """Run the batch engine against the scalar oracle and assert bit-exactness.

    Returns the batched outputs; raises :class:`SimulationError` on divergence.
    Used by the differential tests and the perf regression harness.
    """
    from .simulator import simulate_combinational

    batched = simulate_combinational_batch(source, input_vectors, module_name)
    scalar = simulate_combinational(source, [dict(v) for v in input_vectors], module_name)
    for index, (fast, slow) in enumerate(zip(batched, scalar)):
        if fast != slow:
            raise SimulationError(
                f"batch simulator diverged from the scalar oracle on vector {index}: "
                f"{ {k: str(v) for k, v in fast.items()} } != { {k: str(v) for k, v in slow.items()} }"
            )
    return batched
