"""Expression evaluation for the Verilog simulator.

The evaluator computes :class:`~repro.verilog.simulator.values.LogicVector` results
for AST expressions against an *environment*: a mapping from signal names to their
current values, plus parameter constants and user-defined functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .. import ast_nodes as ast
from ..errors import SimulationError
from .values import LogicVector, concat_all


@dataclass
class EvalContext:
    """Evaluation environment for expressions.

    Attributes:
        signals: current signal values by name.
        parameters: constant parameter values by name.
        functions: user-defined function ASTs by name.
        loop_variables: integer loop variables (for-loop induction variables).
    """

    signals: dict[str, LogicVector] = field(default_factory=dict)
    parameters: dict[str, int] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDeclaration] = field(default_factory=dict)
    loop_variables: dict[str, int] = field(default_factory=dict)
    function_evaluator: Callable[[str, list[LogicVector]], LogicVector] | None = None

    def lookup(self, name: str) -> LogicVector:
        """Resolve an identifier to its current value."""
        if name in self.signals:
            return self.signals[name]
        if name in self.loop_variables:
            return LogicVector.from_int(self.loop_variables[name], 32)
        if name in self.parameters:
            return LogicVector.from_int(self.parameters[name], 32)
        raise SimulationError(f"reference to unknown signal {name!r}")


class ExpressionEvaluator:
    """Evaluate AST expressions to four-state values."""

    def __init__(self, context: EvalContext):
        self.context = context

    # ------------------------------------------------------------------ public API
    def evaluate(self, expression: ast.Expression) -> LogicVector:
        """Evaluate ``expression`` and return its value."""
        if isinstance(expression, ast.Number):
            width = expression.width if expression.width is not None else 32
            return LogicVector(width=width, value=expression.value, xz_mask=expression.xz_mask)
        if isinstance(expression, ast.Identifier):
            return self.context.lookup(expression.name)
        if isinstance(expression, ast.StringLiteral):
            # Strings only appear as $display arguments in the supported subset.
            return LogicVector.from_int(0, 1)
        if isinstance(expression, ast.UnaryOp):
            return self._evaluate_unary(expression)
        if isinstance(expression, ast.BinaryOp):
            return self._evaluate_binary(expression)
        if isinstance(expression, ast.Ternary):
            return self._evaluate_ternary(expression)
        if isinstance(expression, ast.Concat):
            return concat_all([self.evaluate(part) for part in expression.parts])
        if isinstance(expression, ast.Replication):
            count_value = self.evaluate(expression.count)
            count = count_value.to_int_or(0)
            if count <= 0:
                raise SimulationError("replication count must be positive")
            base = self.evaluate(expression.value)
            return concat_all([base] * count)
        if isinstance(expression, ast.BitSelect):
            target = self.evaluate(expression.target)
            index_value = self.evaluate(expression.index)
            if index_value.has_unknown:
                return LogicVector.unknown(1)
            return target.slice(index_value.to_int(), index_value.to_int())
        if isinstance(expression, ast.PartSelect):
            return self._evaluate_part_select(expression)
        if isinstance(expression, ast.FunctionCall):
            return self._evaluate_call(expression)
        raise SimulationError(f"cannot evaluate expression of type {type(expression).__name__}")

    def evaluate_constant(self, expression: ast.Expression) -> int:
        """Evaluate a constant expression (parameters, ranges) to a Python int."""
        value = self.evaluate(expression)
        if value.has_unknown:
            raise SimulationError("constant expression evaluated to x/z")
        return value.to_int()

    # ------------------------------------------------------------------ operators
    def _evaluate_unary(self, expression: ast.UnaryOp) -> LogicVector:
        operand = self.evaluate(expression.operand)
        op = expression.op
        if op == "+":
            return operand
        if op == "-":
            if operand.has_unknown:
                return LogicVector.unknown(operand.width)
            return LogicVector.from_int(-operand.to_int(), operand.width)
        if op == "!":
            truth = operand.is_true()
            if truth is None:
                return LogicVector.unknown(1)
            return LogicVector.from_int(0 if truth else 1, 1)
        if op == "~":
            return LogicVector(
                width=operand.width,
                value=(~operand.value) & ((1 << operand.width) - 1) | operand.xz_mask & operand.value,
                xz_mask=operand.xz_mask,
            )
        if op in ("&", "~&", "|", "~|", "^", "~^", "^~"):
            return self._evaluate_reduction(op, operand)
        raise SimulationError(f"unsupported unary operator {op!r}")

    def _evaluate_reduction(self, op: str, operand: LogicVector) -> LogicVector:
        bits = [operand.bit(i) for i in range(operand.width)]
        if op in ("&", "~&"):
            if "0" in bits:
                result: str = "0"
            elif all(bit == "1" for bit in bits):
                result = "1"
            else:
                result = "x"
            if op == "~&" and result in "01":
                result = "1" if result == "0" else "0"
        elif op in ("|", "~|"):
            if "1" in bits:
                result = "1"
            elif all(bit == "0" for bit in bits):
                result = "0"
            else:
                result = "x"
            if op == "~|" and result in "01":
                result = "1" if result == "0" else "0"
        else:  # xor family
            if any(bit in "xz" for bit in bits):
                result = "x"
            else:
                parity = sum(1 for bit in bits if bit == "1") % 2
                result = "1" if parity else "0"
            if op in ("~^", "^~") and result in "01":
                result = "1" if result == "0" else "0"
        return LogicVector.from_string(result)

    def _evaluate_binary(self, expression: ast.BinaryOp) -> LogicVector:
        op = expression.op
        left = self.evaluate(expression.left)
        right = self.evaluate(expression.right)
        width = max(left.width, right.width)

        if op in ("&&", "||"):
            return self._evaluate_logical(op, left, right)
        if op in ("===", "!=="):
            same = (
                left.resized(width).value == right.resized(width).value
                and left.resized(width).xz_mask == right.resized(width).xz_mask
            )
            result = same if op == "===" else not same
            return LogicVector.from_int(1 if result else 0, 1)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if left.has_unknown or right.has_unknown:
                return LogicVector.unknown(1)
            lhs, rhs = left.to_int(), right.to_int()
            outcome = {
                "==": lhs == rhs,
                "!=": lhs != rhs,
                "<": lhs < rhs,
                "<=": lhs <= rhs,
                ">": lhs > rhs,
                ">=": lhs >= rhs,
            }[op]
            return LogicVector.from_int(1 if outcome else 0, 1)
        if op in ("&", "|", "^", "~^", "^~"):
            return self._evaluate_bitwise(op, left.resized(width), right.resized(width))
        if op in ("<<", ">>", "<<<", ">>>"):
            return self._evaluate_shift(op, left, right)
        if op in ("+", "-", "*", "/", "%", "**"):
            return self._evaluate_arithmetic(op, left, right, width)
        raise SimulationError(f"unsupported binary operator {op!r}")

    def _evaluate_logical(self, op: str, left: LogicVector, right: LogicVector) -> LogicVector:
        lhs, rhs = left.is_true(), right.is_true()
        if op == "&&":
            if lhs is False or rhs is False:
                return LogicVector.from_int(0, 1)
            if lhs is True and rhs is True:
                return LogicVector.from_int(1, 1)
            return LogicVector.unknown(1)
        if lhs is True or rhs is True:
            return LogicVector.from_int(1, 1)
        if lhs is False and rhs is False:
            return LogicVector.from_int(0, 1)
        return LogicVector.unknown(1)

    def _evaluate_bitwise(self, op: str, left: LogicVector, right: LogicVector) -> LogicVector:
        width = left.width
        value = 0
        xz_mask = 0
        for index in range(width):
            a = left.bit(index)
            b = right.bit(index)
            bit = _bitwise_table(op, a, b)
            if bit == "1":
                value |= 1 << index
            elif bit in "xz":
                xz_mask |= 1 << index
        return LogicVector(width=width, value=value, xz_mask=xz_mask)

    def _evaluate_shift(self, op: str, left: LogicVector, right: LogicVector) -> LogicVector:
        if right.has_unknown:
            return LogicVector.unknown(left.width)
        amount = right.to_int()
        if left.has_unknown:
            # Shift x bits along with the value plane.
            value = left.value
            xz = left.xz_mask
            if op in ("<<", "<<<"):
                return LogicVector(width=left.width, value=value << amount, xz_mask=xz << amount)
            return LogicVector(width=left.width, value=value >> amount, xz_mask=xz >> amount)
        value = left.to_int()
        if op in ("<<", "<<<"):
            return LogicVector.from_int(value << amount, left.width)
        if op == ">>":
            return LogicVector.from_int(value >> amount, left.width)
        # Arithmetic right shift preserves the sign bit.
        signed = left.to_signed_int()
        return LogicVector.from_int(signed >> amount, left.width)

    def _evaluate_arithmetic(
        self, op: str, left: LogicVector, right: LogicVector, width: int
    ) -> LogicVector:
        if left.has_unknown or right.has_unknown:
            return LogicVector.unknown(width if op not in ("**",) else max(width, 32))
        lhs, rhs = left.to_int(), right.to_int()
        # Addition/subtraction/multiplication keep enough headroom that carries are
        # preserved; assignment truncates to the target width (so idioms such as
        # ``assign {cout, sum} = a + b;`` observe the carry bit).
        if op == "+":
            return LogicVector.from_int(lhs + rhs, width + 1)
        if op == "-":
            return LogicVector.from_int(lhs - rhs, width + 1)
        if op == "*":
            return LogicVector.from_int(lhs * rhs, max(2 * width, 1))
        if op == "/":
            if rhs == 0:
                return LogicVector.unknown(width)
            return LogicVector.from_int(lhs // rhs, width)
        if op == "%":
            if rhs == 0:
                return LogicVector.unknown(width)
            return LogicVector.from_int(lhs % rhs, width)
        if op == "**":
            return LogicVector.from_int(lhs**rhs, max(width, 32))
        raise SimulationError(f"unsupported arithmetic operator {op!r}")

    def _evaluate_ternary(self, expression: ast.Ternary) -> LogicVector:
        condition = self.evaluate(expression.condition).is_true()
        if condition is True:
            return self.evaluate(expression.if_true)
        if condition is False:
            return self.evaluate(expression.if_false)
        true_value = self.evaluate(expression.if_true)
        false_value = self.evaluate(expression.if_false)
        width = max(true_value.width, false_value.width)
        true_value = true_value.resized(width)
        false_value = false_value.resized(width)
        value = 0
        xz_mask = 0
        for index in range(width):
            a, b = true_value.bit(index), false_value.bit(index)
            if a == b and a in "01":
                if a == "1":
                    value |= 1 << index
            else:
                xz_mask |= 1 << index
        return LogicVector(width=width, value=value, xz_mask=xz_mask)

    def _evaluate_part_select(self, expression: ast.PartSelect) -> LogicVector:
        target = self.evaluate(expression.target)
        if expression.mode == ":":
            msb = self.evaluate(expression.msb)
            lsb = self.evaluate(expression.lsb)
            if msb.has_unknown or lsb.has_unknown:
                return LogicVector.unknown(1)
            return target.slice(msb.to_int(), lsb.to_int())
        base = self.evaluate(expression.msb)
        width_value = self.evaluate(expression.lsb)
        if base.has_unknown or width_value.has_unknown:
            return LogicVector.unknown(1)
        width = width_value.to_int()
        start = base.to_int()
        if expression.mode == "+:":
            return target.slice(start + width - 1, start)
        return target.slice(start, start - width + 1)

    def _evaluate_call(self, expression: ast.FunctionCall) -> LogicVector:
        name = expression.name
        args = [self.evaluate(argument) for argument in expression.args]
        if name in ("$signed", "$unsigned"):
            return args[0] if args else LogicVector.unknown(1)
        if name == "$clog2":
            if not args or args[0].has_unknown:
                return LogicVector.unknown(32)
            value = args[0].to_int()
            return LogicVector.from_int(max(0, (value - 1).bit_length()), 32)
        if name.startswith("$"):
            # Unknown system functions return x rather than failing the whole run.
            return LogicVector.unknown(32)
        if self.context.function_evaluator is not None:
            return self.context.function_evaluator(name, args)
        raise SimulationError(f"call to unknown function {name!r}")


_BITWISE_AND = {
    ("0", "0"): "0",
    ("0", "1"): "0",
    ("1", "0"): "0",
    ("1", "1"): "1",
}


def _bitwise_table(op: str, a: str, b: str) -> str:
    """Four-state truth tables for the bitwise operators."""
    a = "x" if a == "z" else a
    b = "x" if b == "z" else b
    if op == "&":
        if a == "0" or b == "0":
            return "0"
        if a == "1" and b == "1":
            return "1"
        return "x"
    if op == "|":
        if a == "1" or b == "1":
            return "1"
        if a == "0" and b == "0":
            return "0"
        return "x"
    if op == "^":
        if a in "01" and b in "01":
            return "1" if a != b else "0"
        return "x"
    # xnor
    if a in "01" and b in "01":
        return "1" if a == b else "0"
    return "x"
