"""Expression evaluation for the Verilog simulator.

The evaluator computes :class:`~repro.verilog.simulator.values.LogicVector` results
for AST expressions against an *environment*: a mapping from signal names to their
current values, plus parameter constants and user-defined functions.

:class:`BatchExpressionEvaluator` is the column-aware counterpart used by the
batched simulator: the same AST walk, but every operator works on
:class:`~repro.verilog.simulator.values.BatchVector` columns so all stimulus
lanes are evaluated with word-wide integer operations.  Constructs that cannot
be expressed as column math (division, user functions, lane-divergent part
selects, ...) fall back to the scalar evaluator lane by lane, keeping the batch
path bit-exact with :class:`ExpressionEvaluator` by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .. import ast_nodes as ast
from ..errors import SimulationError
from .values import BatchVector, LogicVector, batch_concat_all, concat_all


@dataclass
class EvalContext:
    """Evaluation environment for expressions.

    Attributes:
        signals: current signal values by name.
        parameters: constant parameter values by name.
        functions: user-defined function ASTs by name.
        loop_variables: integer loop variables (for-loop induction variables).
    """

    signals: dict[str, LogicVector] = field(default_factory=dict)
    parameters: dict[str, int] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDeclaration] = field(default_factory=dict)
    loop_variables: dict[str, int] = field(default_factory=dict)
    function_evaluator: Callable[[str, list[LogicVector]], LogicVector] | None = None

    def lookup(self, name: str) -> LogicVector:
        """Resolve an identifier to its current value."""
        if name in self.signals:
            return self.signals[name]
        if name in self.loop_variables:
            return LogicVector.from_int(self.loop_variables[name], 32)
        if name in self.parameters:
            return LogicVector.from_int(self.parameters[name], 32)
        raise SimulationError(f"reference to unknown signal {name!r}")


class ExpressionEvaluator:
    """Evaluate AST expressions to four-state values."""

    def __init__(self, context: EvalContext):
        self.context = context

    # ------------------------------------------------------------------ public API
    def evaluate(self, expression: ast.Expression) -> LogicVector:
        """Evaluate ``expression`` and return its value."""
        if isinstance(expression, ast.Number):
            width = expression.width if expression.width is not None else 32
            return LogicVector(width=width, value=expression.value, xz_mask=expression.xz_mask)
        if isinstance(expression, ast.Identifier):
            return self.context.lookup(expression.name)
        if isinstance(expression, ast.StringLiteral):
            # Strings only appear as $display arguments in the supported subset.
            return LogicVector.from_int(0, 1)
        if isinstance(expression, ast.UnaryOp):
            return self._evaluate_unary(expression)
        if isinstance(expression, ast.BinaryOp):
            return self._evaluate_binary(expression)
        if isinstance(expression, ast.Ternary):
            return self._evaluate_ternary(expression)
        if isinstance(expression, ast.Concat):
            return concat_all([self.evaluate(part) for part in expression.parts])
        if isinstance(expression, ast.Replication):
            count_value = self.evaluate(expression.count)
            count = count_value.to_int_or(0)
            if count <= 0:
                raise SimulationError("replication count must be positive")
            base = self.evaluate(expression.value)
            return concat_all([base] * count)
        if isinstance(expression, ast.BitSelect):
            target = self.evaluate(expression.target)
            index_value = self.evaluate(expression.index)
            if index_value.has_unknown:
                return LogicVector.unknown(1)
            return target.slice(index_value.to_int(), index_value.to_int())
        if isinstance(expression, ast.PartSelect):
            return self._evaluate_part_select(expression)
        if isinstance(expression, ast.FunctionCall):
            return self._evaluate_call(expression)
        raise SimulationError(f"cannot evaluate expression of type {type(expression).__name__}")

    def evaluate_constant(self, expression: ast.Expression) -> int:
        """Evaluate a constant expression (parameters, ranges) to a Python int."""
        value = self.evaluate(expression)
        if value.has_unknown:
            raise SimulationError("constant expression evaluated to x/z")
        return value.to_int()

    # ------------------------------------------------------------------ operators
    def _evaluate_unary(self, expression: ast.UnaryOp) -> LogicVector:
        operand = self.evaluate(expression.operand)
        op = expression.op
        if op == "+":
            return operand
        if op == "-":
            if operand.has_unknown:
                return LogicVector.unknown(operand.width)
            return LogicVector.from_int(-operand.to_int(), operand.width)
        if op == "!":
            truth = operand.is_true()
            if truth is None:
                return LogicVector.unknown(1)
            return LogicVector.from_int(0 if truth else 1, 1)
        if op == "~":
            return LogicVector(
                width=operand.width,
                value=(~operand.value) & ((1 << operand.width) - 1) | operand.xz_mask & operand.value,
                xz_mask=operand.xz_mask,
            )
        if op in ("&", "~&", "|", "~|", "^", "~^", "^~"):
            return self._evaluate_reduction(op, operand)
        raise SimulationError(f"unsupported unary operator {op!r}")

    def _evaluate_reduction(self, op: str, operand: LogicVector) -> LogicVector:
        bits = [operand.bit(i) for i in range(operand.width)]
        if op in ("&", "~&"):
            if "0" in bits:
                result: str = "0"
            elif all(bit == "1" for bit in bits):
                result = "1"
            else:
                result = "x"
            if op == "~&" and result in "01":
                result = "1" if result == "0" else "0"
        elif op in ("|", "~|"):
            if "1" in bits:
                result = "1"
            elif all(bit == "0" for bit in bits):
                result = "0"
            else:
                result = "x"
            if op == "~|" and result in "01":
                result = "1" if result == "0" else "0"
        else:  # xor family
            if any(bit in "xz" for bit in bits):
                result = "x"
            else:
                parity = sum(1 for bit in bits if bit == "1") % 2
                result = "1" if parity else "0"
            if op in ("~^", "^~") and result in "01":
                result = "1" if result == "0" else "0"
        return LogicVector.from_string(result)

    def _evaluate_binary(self, expression: ast.BinaryOp) -> LogicVector:
        op = expression.op
        left = self.evaluate(expression.left)
        right = self.evaluate(expression.right)
        width = max(left.width, right.width)

        if op in ("&&", "||"):
            return self._evaluate_logical(op, left, right)
        if op in ("===", "!=="):
            same = (
                left.resized(width).value == right.resized(width).value
                and left.resized(width).xz_mask == right.resized(width).xz_mask
            )
            result = same if op == "===" else not same
            return LogicVector.from_int(1 if result else 0, 1)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if left.has_unknown or right.has_unknown:
                return LogicVector.unknown(1)
            lhs, rhs = left.to_int(), right.to_int()
            outcome = {
                "==": lhs == rhs,
                "!=": lhs != rhs,
                "<": lhs < rhs,
                "<=": lhs <= rhs,
                ">": lhs > rhs,
                ">=": lhs >= rhs,
            }[op]
            return LogicVector.from_int(1 if outcome else 0, 1)
        if op in ("&", "|", "^", "~^", "^~"):
            return self._evaluate_bitwise(op, left.resized(width), right.resized(width))
        if op in ("<<", ">>", "<<<", ">>>"):
            return self._evaluate_shift(op, left, right)
        if op in ("+", "-", "*", "/", "%", "**"):
            return self._evaluate_arithmetic(op, left, right, width)
        raise SimulationError(f"unsupported binary operator {op!r}")

    def _evaluate_logical(self, op: str, left: LogicVector, right: LogicVector) -> LogicVector:
        lhs, rhs = left.is_true(), right.is_true()
        if op == "&&":
            if lhs is False or rhs is False:
                return LogicVector.from_int(0, 1)
            if lhs is True and rhs is True:
                return LogicVector.from_int(1, 1)
            return LogicVector.unknown(1)
        if lhs is True or rhs is True:
            return LogicVector.from_int(1, 1)
        if lhs is False and rhs is False:
            return LogicVector.from_int(0, 1)
        return LogicVector.unknown(1)

    def _evaluate_bitwise(self, op: str, left: LogicVector, right: LogicVector) -> LogicVector:
        width = left.width
        value = 0
        xz_mask = 0
        for index in range(width):
            a = left.bit(index)
            b = right.bit(index)
            bit = _bitwise_table(op, a, b)
            if bit == "1":
                value |= 1 << index
            elif bit in "xz":
                xz_mask |= 1 << index
        return LogicVector(width=width, value=value, xz_mask=xz_mask)

    def _evaluate_shift(self, op: str, left: LogicVector, right: LogicVector) -> LogicVector:
        if right.has_unknown:
            return LogicVector.unknown(left.width)
        amount = right.to_int()
        if left.has_unknown:
            # Shift x bits along with the value plane.
            value = left.value
            xz = left.xz_mask
            if op in ("<<", "<<<"):
                return LogicVector(width=left.width, value=value << amount, xz_mask=xz << amount)
            return LogicVector(width=left.width, value=value >> amount, xz_mask=xz >> amount)
        value = left.to_int()
        if op in ("<<", "<<<"):
            return LogicVector.from_int(value << amount, left.width)
        if op == ">>":
            return LogicVector.from_int(value >> amount, left.width)
        # Arithmetic right shift preserves the sign bit.
        signed = left.to_signed_int()
        return LogicVector.from_int(signed >> amount, left.width)

    def _evaluate_arithmetic(
        self, op: str, left: LogicVector, right: LogicVector, width: int
    ) -> LogicVector:
        if left.has_unknown or right.has_unknown:
            return LogicVector.unknown(width if op not in ("**",) else max(width, 32))
        lhs, rhs = left.to_int(), right.to_int()
        # Addition/subtraction/multiplication keep enough headroom that carries are
        # preserved; assignment truncates to the target width (so idioms such as
        # ``assign {cout, sum} = a + b;`` observe the carry bit).
        if op == "+":
            return LogicVector.from_int(lhs + rhs, width + 1)
        if op == "-":
            return LogicVector.from_int(lhs - rhs, width + 1)
        if op == "*":
            return LogicVector.from_int(lhs * rhs, max(2 * width, 1))
        if op == "/":
            if rhs == 0:
                return LogicVector.unknown(width)
            return LogicVector.from_int(lhs // rhs, width)
        if op == "%":
            if rhs == 0:
                return LogicVector.unknown(width)
            return LogicVector.from_int(lhs % rhs, width)
        if op == "**":
            return LogicVector.from_int(lhs**rhs, max(width, 32))
        raise SimulationError(f"unsupported arithmetic operator {op!r}")

    def _evaluate_ternary(self, expression: ast.Ternary) -> LogicVector:
        condition = self.evaluate(expression.condition).is_true()
        if condition is True:
            return self.evaluate(expression.if_true)
        if condition is False:
            return self.evaluate(expression.if_false)
        true_value = self.evaluate(expression.if_true)
        false_value = self.evaluate(expression.if_false)
        width = max(true_value.width, false_value.width)
        true_value = true_value.resized(width)
        false_value = false_value.resized(width)
        value = 0
        xz_mask = 0
        for index in range(width):
            a, b = true_value.bit(index), false_value.bit(index)
            if a == b and a in "01":
                if a == "1":
                    value |= 1 << index
            else:
                xz_mask |= 1 << index
        return LogicVector(width=width, value=value, xz_mask=xz_mask)

    def _evaluate_part_select(self, expression: ast.PartSelect) -> LogicVector:
        target = self.evaluate(expression.target)
        if expression.mode == ":":
            msb = self.evaluate(expression.msb)
            lsb = self.evaluate(expression.lsb)
            if msb.has_unknown or lsb.has_unknown:
                return LogicVector.unknown(1)
            return target.slice(msb.to_int(), lsb.to_int())
        base = self.evaluate(expression.msb)
        width_value = self.evaluate(expression.lsb)
        if base.has_unknown or width_value.has_unknown:
            return LogicVector.unknown(1)
        width = width_value.to_int()
        start = base.to_int()
        if expression.mode == "+:":
            return target.slice(start + width - 1, start)
        return target.slice(start, start - width + 1)

    def _evaluate_call(self, expression: ast.FunctionCall) -> LogicVector:
        name = expression.name
        args = [self.evaluate(argument) for argument in expression.args]
        if name in ("$signed", "$unsigned"):
            return args[0] if args else LogicVector.unknown(1)
        if name == "$clog2":
            if not args or args[0].has_unknown:
                return LogicVector.unknown(32)
            value = args[0].to_int()
            return LogicVector.from_int(max(0, (value - 1).bit_length()), 32)
        if name.startswith("$"):
            # Unknown system functions return x rather than failing the whole run.
            return LogicVector.unknown(32)
        if self.context.function_evaluator is not None:
            return self.context.function_evaluator(name, args)
        raise SimulationError(f"call to unknown function {name!r}")


_BITWISE_AND = {
    ("0", "0"): "0",
    ("0", "1"): "0",
    ("1", "0"): "0",
    ("1", "1"): "1",
}


def _bitwise_table(op: str, a: str, b: str) -> str:
    """Four-state truth tables for the bitwise operators."""
    a = "x" if a == "z" else a
    b = "x" if b == "z" else b
    if op == "&":
        if a == "0" or b == "0":
            return "0"
        if a == "1" and b == "1":
            return "1"
        return "x"
    if op == "|":
        if a == "1" or b == "1":
            return "1"
        if a == "0" and b == "0":
            return "0"
        return "x"
    if op == "^":
        if a in "01" and b in "01":
            return "1" if a != b else "0"
        return "x"
    # xnor
    if a in "01" and b in "01":
        return "1" if a == b else "0"
    return "x"


# --------------------------------------------------------------------------- batch evaluation
@dataclass
class BatchEvalContext:
    """Evaluation environment for the column-packed batch evaluator.

    Attributes:
        signals: current batch signal values by name (shared, live mapping).
        parameters: constant parameter values by name.
        functions: user-defined function ASTs by name.
        lanes: number of stimulus lanes in the batch.
        loop_variables: integer loop variables (uniform across lanes).
        lane_evaluator: factory returning a *scalar* evaluator for one lane,
            used by the per-lane fallback path (supplied by the batch executor
            so user-function calls resolve with full statement semantics).
    """

    signals: dict[str, BatchVector] = field(default_factory=dict)
    parameters: dict[str, int] = field(default_factory=dict)
    functions: dict[str, "ast.FunctionDeclaration"] = field(default_factory=dict)
    lanes: int = 1
    loop_variables: dict[str, int] = field(default_factory=dict)
    lane_evaluator: Callable[[int], ExpressionEvaluator] | None = None

    def lookup(self, name: str) -> BatchVector:
        """Resolve an identifier to its current batch value."""
        if name in self.signals:
            return self.signals[name]
        if name in self.loop_variables:
            return BatchVector.broadcast(LogicVector.from_int(self.loop_variables[name], 32), self.lanes)
        if name in self.parameters:
            return BatchVector.broadcast(LogicVector.from_int(self.parameters[name], 32), self.lanes)
        raise SimulationError(f"reference to unknown signal {name!r}")

    def scalar_evaluator(self, lane: int) -> ExpressionEvaluator:
        """A scalar evaluator seeing lane ``lane`` of every signal."""
        if self.lane_evaluator is not None:
            return self.lane_evaluator(lane)
        signals = {name: value.lane(lane) for name, value in self.signals.items()}
        return ExpressionEvaluator(
            EvalContext(
                signals=signals,
                parameters=self.parameters,
                functions=self.functions,
                loop_variables=dict(self.loop_variables),
            )
        )


class BatchExpressionEvaluator:
    """Evaluate AST expressions over all stimulus lanes at once.

    Mirrors :class:`ExpressionEvaluator` operator by operator; each four-state
    rule is re-expressed as word-wide boolean algebra over lane columns.  Lanes
    whose operands contain ``x``/``z`` follow the scalar evaluator's pessimistic
    rules exactly (whole-vector unknown checks stay whole-vector, per lane).
    """

    #: Widest data-dependent shift-amount operand still lowered to a column mux;
    #: anything wider falls back to per-lane scalar evaluation.
    MAX_MUX_SHIFT_WIDTH = 8

    def __init__(self, context: BatchEvalContext):
        self.context = context

    # ------------------------------------------------------------------ public API
    def evaluate(self, expression: ast.Expression) -> BatchVector:
        """Evaluate ``expression`` for every lane and return the packed result."""
        lanes = self.context.lanes
        if isinstance(expression, ast.Number):
            width = expression.width if expression.width is not None else 32
            return BatchVector.broadcast(
                LogicVector(width=width, value=expression.value, xz_mask=expression.xz_mask), lanes
            )
        if isinstance(expression, ast.Identifier):
            return self.context.lookup(expression.name)
        if isinstance(expression, ast.StringLiteral):
            return BatchVector.broadcast(LogicVector.from_int(0, 1), lanes)
        if isinstance(expression, ast.UnaryOp):
            return self._evaluate_unary(expression)
        if isinstance(expression, ast.BinaryOp):
            return self._evaluate_binary(expression)
        if isinstance(expression, ast.Ternary):
            return self._evaluate_ternary(expression)
        if isinstance(expression, ast.Concat):
            return batch_concat_all([self.evaluate(part) for part in expression.parts])
        if isinstance(expression, ast.Replication):
            return self._evaluate_replication(expression)
        if isinstance(expression, ast.BitSelect):
            return self._evaluate_bit_select(expression)
        if isinstance(expression, ast.PartSelect):
            return self._evaluate_part_select(expression)
        if isinstance(expression, ast.FunctionCall):
            return self._evaluate_call(expression)
        raise SimulationError(f"cannot evaluate expression of type {type(expression).__name__}")

    def evaluate_uniform_constant(self, expression: ast.Expression) -> int:
        """Evaluate an expression expected to be lane-uniform and defined."""
        value = self.evaluate(expression)
        uniform = value.uniform_value()
        if uniform is None or uniform.has_unknown:
            raise SimulationError("expected a lane-uniform constant expression")
        return uniform.to_int()

    # ------------------------------------------------------------------ fallback
    def _fallback(self, expression: ast.Expression) -> BatchVector:
        """Evaluate lane by lane with the scalar evaluator and repack.

        Lanes whose scalar results differ in width are zero-extended to the
        widest lane (the only constructs that can diverge are ternaries with
        lane-split conditions over different branch widths and part selects
        with unknown bounds — both outside the realistic RTL subset).
        """
        results = [
            self.context.scalar_evaluator(lane).evaluate(expression)
            for lane in range(self.context.lanes)
        ]
        width = max(result.width for result in results)
        return BatchVector.from_vectors([result.resized(width) for result in results], width)

    # ------------------------------------------------------------------ truth masks
    def _truth_masks(self, value: BatchVector) -> tuple[int, int, int]:
        """Per-lane ``is_true`` as ``(true, false, unknown)`` lane masks."""
        full = value.lane_mask
        true_mask = 0
        anyxz = 0
        for bit in range(value.width):
            true_mask |= value.value_cols[bit] & ~value.xz_cols[bit]
            anyxz |= value.xz_cols[bit]
        true_mask &= full
        unknown_mask = anyxz & ~true_mask & full
        false_mask = full & ~true_mask & ~unknown_mask
        return true_mask, false_mask, unknown_mask

    def _flag(self, one_mask: int, x_mask: int) -> BatchVector:
        """Build a 1-bit batch from per-lane one/unknown masks."""
        full = (1 << self.context.lanes) - 1
        return BatchVector(
            width=1,
            lanes=self.context.lanes,
            value_cols=(one_mask & ~x_mask & full,),
            xz_cols=(x_mask & full,),
        )

    # ------------------------------------------------------------------ operators
    def _evaluate_unary(self, expression: ast.UnaryOp) -> BatchVector:
        operand = self.evaluate(expression.operand)
        op = expression.op
        full = operand.lane_mask
        if op == "+":
            return operand
        if op == "-":
            return self._negate(operand)
        if op == "!":
            true_mask, false_mask, unknown_mask = self._truth_masks(operand)
            return self._flag(false_mask, unknown_mask)
        if op == "~":
            # Mirrors the scalar rule bit for bit (x/z bits keep their payload).
            value_cols = tuple(
                ((~operand.value_cols[bit]) & full & ~operand.xz_cols[bit])
                | (operand.xz_cols[bit] & operand.value_cols[bit])
                for bit in range(operand.width)
            )
            return BatchVector(
                width=operand.width, lanes=operand.lanes, value_cols=value_cols, xz_cols=operand.xz_cols
            )
        if op in ("&", "~&", "|", "~|", "^", "~^", "^~"):
            return self._evaluate_reduction(op, operand)
        raise SimulationError(f"unsupported unary operator {op!r}")

    def _negate(self, operand: BatchVector) -> BatchVector:
        """Two's-complement negation at the operand width; x/z lanes go all-x."""
        full = operand.lane_mask
        unknown = operand.unknown_lanes() & full
        carry = full
        value_cols = []
        for bit in range(operand.width):
            inverted = ~operand.value_cols[bit] & full
            value_cols.append((inverted ^ carry) & ~unknown)
            carry &= inverted
        xz_cols = tuple(unknown for _ in range(operand.width))
        return BatchVector(width=operand.width, lanes=operand.lanes, value_cols=tuple(value_cols), xz_cols=xz_cols)

    def _evaluate_reduction(self, op: str, operand: BatchVector) -> BatchVector:
        full = operand.lane_mask
        defined_one = [operand.value_cols[bit] & ~operand.xz_cols[bit] for bit in range(operand.width)]
        defined_zero = [
            ~operand.value_cols[bit] & ~operand.xz_cols[bit] & full for bit in range(operand.width)
        ]
        if op in ("&", "~&"):
            any_zero = 0
            all_ones = full
            for bit in range(operand.width):
                any_zero |= defined_zero[bit]
                all_ones &= defined_one[bit]
            unknown = full & ~(any_zero | all_ones)
            one_mask = any_zero if op == "~&" else all_ones
            return self._flag(one_mask, unknown)
        if op in ("|", "~|"):
            any_one = 0
            all_zeros = full
            for bit in range(operand.width):
                any_one |= defined_one[bit]
                all_zeros &= defined_zero[bit]
            unknown = full & ~(any_one | all_zeros)
            one_mask = all_zeros if op == "~|" else any_one
            return self._flag(one_mask, unknown)
        # xor family
        anyxz = operand.unknown_lanes() & full
        parity = 0
        for bit in range(operand.width):
            parity ^= defined_one[bit]
        if op in ("~^", "^~"):
            parity = ~parity & full
        return self._flag(parity & ~anyxz, anyxz)

    def _evaluate_binary(self, expression: ast.BinaryOp) -> BatchVector:
        op = expression.op
        if op in ("*", "/", "%", "**"):
            return self._fallback(expression)
        left = self.evaluate(expression.left)
        right = self.evaluate(expression.right)
        width = max(left.width, right.width)
        full = left.lane_mask

        if op in ("&&", "||"):
            return self._evaluate_logical(op, left, right)
        if op in ("===", "!=="):
            l = left.resized(width)
            r = right.resized(width)
            same = full
            for bit in range(width):
                same &= ~(l.value_cols[bit] ^ r.value_cols[bit]) & ~(l.xz_cols[bit] ^ r.xz_cols[bit])
            same &= full
            return self._flag(same if op == "===" else full & ~same, 0)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self._evaluate_relational(op, left, right)
        if op in ("&", "|", "^", "~^", "^~"):
            return self._evaluate_bitwise(op, left.resized(width), right.resized(width))
        if op in ("<<", ">>", "<<<", ">>>"):
            return self._evaluate_shift(op, expression, left, right)
        if op in ("+", "-"):
            return self._evaluate_addsub(op, left, right, width)
        raise SimulationError(f"unsupported binary operator {op!r}")

    def _evaluate_logical(self, op: str, left: BatchVector, right: BatchVector) -> BatchVector:
        lt, lf, lx = self._truth_masks(left)
        rt, rf, rx = self._truth_masks(right)
        full = left.lane_mask
        if op == "&&":
            zero = lf | rf
            one = lt & rt
            return self._flag(one & ~zero, full & ~(zero | one))
        one = lt | rt
        zero = lf & rf
        return self._flag(one, full & ~(one | zero))

    def _evaluate_relational(self, op: str, left: BatchVector, right: BatchVector) -> BatchVector:
        full = left.lane_mask
        unknown = (left.unknown_lanes() | right.unknown_lanes()) & full
        width = max(left.width, right.width)
        l = left.resized(width)
        r = right.resized(width)
        eq = full
        lt = 0
        for bit in range(width - 1, -1, -1):
            a = l.value_cols[bit]
            b = r.value_cols[bit]
            lt |= eq & ~a & b
            eq &= ~(a ^ b)
        eq &= full
        lt &= full
        outcome = {
            "==": eq,
            "!=": full & ~eq,
            "<": lt,
            "<=": lt | eq,
            ">": full & ~(lt | eq),
            ">=": full & ~lt,
        }[op]
        return self._flag(outcome & ~unknown, unknown)

    def _evaluate_bitwise(self, op: str, left: BatchVector, right: BatchVector) -> BatchVector:
        full = left.lane_mask
        value_cols = []
        xz_cols = []
        for bit in range(left.width):
            v1, x1 = left.value_cols[bit], left.xz_cols[bit]
            v2, x2 = right.value_cols[bit], right.xz_cols[bit]
            if op == "&":
                zero = (~v1 & ~x1) | (~v2 & ~x2)
                one = (v1 & ~x1) & (v2 & ~x2)
            elif op == "|":
                one = (v1 & ~x1) | (v2 & ~x2)
                zero = (~v1 & ~x1) & (~v2 & ~x2)
            else:
                anyx = x1 | x2
                parity = (v1 ^ v2) if op == "^" else ~(v1 ^ v2)
                value_cols.append(parity & ~anyx & full)
                xz_cols.append(anyx & full)
                continue
            value_cols.append(one & full)
            xz_cols.append(full & ~(zero | one))
        return BatchVector(width=left.width, lanes=left.lanes, value_cols=tuple(value_cols), xz_cols=tuple(xz_cols))

    def _evaluate_addsub(self, op: str, left: BatchVector, right: BatchVector, width: int) -> BatchVector:
        full = left.lane_mask
        unknown = (left.unknown_lanes() | right.unknown_lanes()) & full
        result_width = width + 1
        l = left.resized(result_width)
        r = right.resized(result_width)
        carry = 0 if op == "+" else full
        value_cols = []
        for bit in range(result_width):
            a = l.value_cols[bit]
            b = r.value_cols[bit] if op == "+" else (~r.value_cols[bit] & full)
            total = a ^ b ^ carry
            carry = (a & b) | (carry & (a ^ b))
            value_cols.append(total & ~unknown)
        # The scalar rule returns unknown(width) — *without* the carry column —
        # for x/z operands; zero-extension then makes the carry bit defined 0.
        xz_cols = tuple(unknown if bit < width else 0 for bit in range(result_width))
        return BatchVector(width=result_width, lanes=left.lanes, value_cols=tuple(value_cols), xz_cols=xz_cols)

    def _evaluate_shift(
        self, op: str, expression: ast.BinaryOp, left: BatchVector, right: BatchVector
    ) -> BatchVector:
        full = left.lane_mask
        uniform_amount = right.uniform_value()
        if uniform_amount is not None and not uniform_amount.has_unknown:
            return self._shift_by_constant(op, left, uniform_amount.to_int())
        if right.unknown_lanes() == full:
            return BatchVector.unknown(left.width, left.lanes)
        if right.width > self.MAX_MUX_SHIFT_WIDTH:
            return self._fallback(expression)
        # Column mux over the possible amounts: every distinct defined amount
        # contributes its shifted image on the lanes that selected it; lanes with
        # an x/z amount go all-x (the scalar rule).
        unknown = right.unknown_lanes() & full
        result = BatchVector.unknown(left.width, left.lanes)
        remaining = full & ~unknown
        for amount in range(1 << right.width):
            if not remaining:
                break
            amount_value = BatchVector.broadcast(LogicVector.from_int(amount, right.width), left.lanes)
            eq_mask = self._truth_masks(self._evaluate_relational("==", right, amount_value))[0] & remaining
            if not eq_mask:
                continue
            shifted = self._shift_by_constant(op, left, amount)
            result = shifted.select_lanes(eq_mask, result)
            remaining &= ~eq_mask
        return result

    def _shift_by_constant(self, op: str, left: BatchVector, amount: int) -> BatchVector:
        """Shift every lane by the same amount via column moves."""
        width = left.width
        full = left.lane_mask
        if op in ("<<", "<<<"):
            value_cols = tuple(
                left.value_cols[bit - amount] if bit >= amount else 0 for bit in range(width)
            )
            xz_cols = tuple(left.xz_cols[bit - amount] if bit >= amount else 0 for bit in range(width))
            return BatchVector(width=width, lanes=left.lanes, value_cols=value_cols, xz_cols=xz_cols)
        plane_value = tuple(
            left.value_cols[bit + amount] if bit + amount < width else 0 for bit in range(width)
        )
        plane_xz = tuple(left.xz_cols[bit + amount] if bit + amount < width else 0 for bit in range(width))
        if op == ">>":
            return BatchVector(width=width, lanes=left.lanes, value_cols=plane_value, xz_cols=plane_xz)
        # ">>>": defined lanes sign-fill from the MSB; x/z lanes keep the plane
        # shift exactly as the scalar evaluator does.
        unknown = left.unknown_lanes() & full
        sign = left.value_cols[width - 1] & ~unknown
        value_cols = []
        xz_cols = []
        for bit in range(width):
            if bit + amount < width:
                filled = (left.value_cols[bit + amount] & ~unknown) | (plane_value[bit] & unknown)
                xz = (left.xz_cols[bit + amount] & ~unknown) | (plane_xz[bit] & unknown)
            else:
                filled = sign | (plane_value[bit] & unknown)
                xz = plane_xz[bit] & unknown
            value_cols.append(filled)
            xz_cols.append(xz)
        return BatchVector(width=width, lanes=left.lanes, value_cols=tuple(value_cols), xz_cols=tuple(xz_cols))

    def _evaluate_ternary(self, expression: ast.Ternary) -> BatchVector:
        condition = self.evaluate(expression.condition)
        true_mask, false_mask, unknown_mask = self._truth_masks(condition)
        full = condition.lane_mask
        if true_mask == full:
            return self.evaluate(expression.if_true)
        if false_mask == full:
            return self.evaluate(expression.if_false)
        true_value = self.evaluate(expression.if_true)
        false_value = self.evaluate(expression.if_false)
        width = max(true_value.width, false_value.width)
        t = true_value.resized(width)
        f = false_value.resized(width)
        value_cols = []
        xz_cols = []
        for bit in range(width):
            tv, tx = t.value_cols[bit], t.xz_cols[bit]
            fv, fx = f.value_cols[bit], f.xz_cols[bit]
            # Merge rule on unknown-condition lanes: equal defined bits survive.
            same_defined = ~(tv ^ fv) & ~tx & ~fx & full
            merged_value = tv & same_defined
            merged_xz = full & ~same_defined
            value_cols.append((tv & true_mask) | (fv & false_mask) | (merged_value & unknown_mask))
            xz_cols.append((tx & true_mask) | (fx & false_mask) | (merged_xz & unknown_mask))
        return BatchVector(width=width, lanes=condition.lanes, value_cols=tuple(value_cols), xz_cols=tuple(xz_cols))

    def _evaluate_replication(self, expression: ast.Replication) -> BatchVector:
        count_value = self.evaluate(expression.count)
        uniform = count_value.uniform_value()
        if uniform is None:
            return self._fallback(expression)
        count = uniform.to_int_or(0)
        if count <= 0:
            raise SimulationError("replication count must be positive")
        base = self.evaluate(expression.value)
        return batch_concat_all([base] * count)

    def _evaluate_bit_select(self, expression: ast.BitSelect) -> BatchVector:
        target = self.evaluate(expression.target)
        index = self.evaluate(expression.index)
        full = target.lane_mask
        uniform = index.uniform_value()
        if uniform is not None:
            if uniform.has_unknown:
                return BatchVector.unknown(1, target.lanes)
            position = uniform.to_int()
            return target.slice(position, position)
        # Column mux over in-range indices; unknown-index lanes and lanes whose
        # index falls outside the target read as x (the scalar slice rule).
        # Positions beyond what the index operand can encode are unreachable —
        # bounding the loop also keeps from_int(position) from wrapping and
        # aliasing high target bits onto low index values.
        unknown = index.unknown_lanes() & full
        value_col = 0
        matched = 0
        xz_col = 0
        for position in range(min(target.width, 1 << index.width)):
            position_value = BatchVector.broadcast(LogicVector.from_int(position, index.width), target.lanes)
            eq_mask = self._truth_masks(self._evaluate_relational("==", index, position_value))[0]
            eq_mask &= ~unknown
            if not eq_mask:
                continue
            matched |= eq_mask
            value_col |= target.value_cols[position] & eq_mask
            xz_col |= target.xz_cols[position] & eq_mask
        out_of_range = full & ~matched & ~unknown
        return BatchVector(
            width=1,
            lanes=target.lanes,
            value_cols=(value_col & ~unknown & ~out_of_range,),
            xz_cols=((xz_col | unknown | out_of_range) & full,),
        )

    def _evaluate_part_select(self, expression: ast.PartSelect) -> BatchVector:
        msb_value = self.evaluate(expression.msb)
        lsb_value = self.evaluate(expression.lsb)
        msb_uniform = msb_value.uniform_value()
        lsb_uniform = lsb_value.uniform_value()
        if (
            msb_uniform is None
            or lsb_uniform is None
            or msb_uniform.has_unknown
            or lsb_uniform.has_unknown
        ):
            return self._fallback(expression)
        target = self.evaluate(expression.target)
        if expression.mode == ":":
            return target.slice(msb_uniform.to_int(), lsb_uniform.to_int())
        base = msb_uniform.to_int()
        width = lsb_uniform.to_int()
        if expression.mode == "+:":
            return target.slice(base + width - 1, base)
        return target.slice(base, base - width + 1)

    def _evaluate_call(self, expression: ast.FunctionCall) -> BatchVector:
        name = expression.name
        lanes = self.context.lanes
        if name in ("$signed", "$unsigned"):
            args = [self.evaluate(argument) for argument in expression.args]
            return args[0] if args else BatchVector.unknown(1, lanes)
        if name == "$clog2":
            if not expression.args:
                return BatchVector.unknown(32, lanes)
            argument = self.evaluate(expression.args[0])
            uniform = argument.uniform_value()
            if uniform is None:
                return self._fallback(expression)
            if uniform.has_unknown:
                return BatchVector.unknown(32, lanes)
            value = uniform.to_int()
            return BatchVector.broadcast(LogicVector.from_int(max(0, (value - 1).bit_length()), 32), lanes)
        if name.startswith("$"):
            return BatchVector.unknown(32, lanes)
        # User-defined functions execute full statement bodies: lane fallback.
        return self._fallback(expression)
