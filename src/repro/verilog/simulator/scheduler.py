"""Process model and statement execution for the Verilog simulator.

The simulator models a module as a set of *processes*:

* combinational processes — continuous assignments and ``always @(*)`` /
  level-sensitive ``always`` blocks, re-evaluated until the design settles;
* sequential processes — ``always`` blocks with edge-triggered sensitivity
  (``posedge``/``negedge``), executed when one of their edges fires, with
  non-blocking assignments committed after all triggered processes ran;
* initial processes — ``initial`` blocks executed once at time zero.

:class:`StatementExecutor` interprets procedural statements against a signal
store, queueing non-blocking assignments for later commit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .. import ast_nodes as ast
from ..errors import SimulationError
from .eval import (
    BatchEvalContext,
    BatchExpressionEvaluator,
    EvalContext,
    ExpressionEvaluator,
)
from .values import BatchVector, LogicVector

#: Upper bound on loop iterations inside a single process activation.  Real RTL in
#: the supported subset never needs more; the cap converts accidental infinite
#: loops in generated code into a simulation error (a functional failure).
MAX_LOOP_ITERATIONS = 4096


class ProcessKind(enum.Enum):
    """Classification of a process for scheduling purposes."""

    COMBINATIONAL = "combinational"
    SEQUENTIAL = "sequential"
    INITIAL = "initial"


@dataclass
class Process:
    """A schedulable process extracted from a module item."""

    kind: ProcessKind
    body: ast.Statement | None
    sensitivity: list[ast.SensitivityItem] = field(default_factory=list)
    label: str = ""

    def edge_signals(self) -> list[tuple[ast.EdgeKind, str]]:
        """Return ``(edge, signal_name)`` pairs for edge-triggered entries."""
        edges: list[tuple[ast.EdgeKind, str]] = []
        for item in self.sensitivity:
            if item.edge in (ast.EdgeKind.POSEDGE, ast.EdgeKind.NEGEDGE) and isinstance(
                item.signal, ast.Identifier
            ):
                edges.append((item.edge, item.signal.name))
        return edges


@dataclass
class SignalStore:
    """Mutable value store for all signals of an elaborated module."""

    widths: dict[str, int] = field(default_factory=dict)
    values: dict[str, LogicVector] = field(default_factory=dict)

    def declare(self, name: str, width: int, initial: LogicVector | None = None) -> None:
        """Declare a signal with the given width, defaulting to all-x."""
        self.widths[name] = width
        self.values[name] = initial.resized(width) if initial is not None else LogicVector.unknown(width)

    def get(self, name: str) -> LogicVector:
        if name not in self.values:
            raise SimulationError(f"read of undeclared signal {name!r}")
        return self.values[name]

    def set(self, name: str, value: LogicVector) -> bool:
        """Set a signal value (resized to its width); return ``True`` if it changed."""
        if name not in self.values:
            raise SimulationError(f"write to undeclared signal {name!r}")
        resized = value.resized(self.widths[name])
        changed = resized != self.values[name]
        self.values[name] = resized
        return changed

    def snapshot(self) -> dict[str, LogicVector]:
        """Return a shallow copy of the current values."""
        return dict(self.values)


class StatementExecutor:
    """Interpret procedural statements against a signal store."""

    def __init__(
        self,
        store: SignalStore,
        parameters: dict[str, int],
        functions: dict[str, ast.FunctionDeclaration],
    ):
        self.store = store
        self.parameters = parameters
        self.functions = functions
        self.nonblocking_updates: list[tuple[ast.Expression, LogicVector]] = []
        self.display_log: list[str] = []

    # ------------------------------------------------------------------ evaluation plumbing
    def _make_evaluator(self, local_signals: dict[str, LogicVector] | None = None) -> ExpressionEvaluator:
        signals = dict(self.store.values)
        if local_signals:
            signals.update(local_signals)
        context = EvalContext(
            signals=signals,
            parameters=self.parameters,
            functions=self.functions,
            function_evaluator=self._call_function,
        )
        return ExpressionEvaluator(context)

    def _call_function(self, name: str, args: list[LogicVector]) -> LogicVector:
        function = self.functions.get(name)
        if function is None:
            raise SimulationError(f"call to unknown function {name!r}")
        width = 1
        if function.range is not None:
            evaluator = self._make_evaluator()
            msb = evaluator.evaluate_constant(function.range.msb)
            lsb = evaluator.evaluate_constant(function.range.lsb)
            width = abs(msb - lsb) + 1
        local_store = SignalStore()
        local_store.declare(function.name, width)
        argument_index = 0
        for declaration in function.inputs:
            for input_name in declaration.names:
                input_width = 1
                if declaration.range is not None:
                    evaluator = self._make_evaluator()
                    msb = evaluator.evaluate_constant(declaration.range.msb)
                    lsb = evaluator.evaluate_constant(declaration.range.lsb)
                    input_width = abs(msb - lsb) + 1
                value = args[argument_index] if argument_index < len(args) else LogicVector.unknown(input_width)
                local_store.declare(input_name, input_width, value)
                argument_index += 1
        for declaration in function.locals:
            for local_name in declaration.names:
                local_width = 1
                if declaration.range is not None:
                    evaluator = self._make_evaluator()
                    msb = evaluator.evaluate_constant(declaration.range.msb)
                    lsb = evaluator.evaluate_constant(declaration.range.lsb)
                    local_width = abs(msb - lsb) + 1
                if declaration.net_type is ast.NetType.INTEGER:
                    local_width = 32
                local_store.declare(local_name, local_width)
        nested = StatementExecutor(local_store, self.parameters, self.functions)
        # Bring the outer signals into scope for reads inside the function body.
        for name, value in self.store.values.items():
            if name not in local_store.values:
                local_store.widths[name] = value.width
                local_store.values[name] = value
        nested.execute(function.body, allow_nonblocking=False)
        return local_store.get(function.name)

    # ------------------------------------------------------------------ statement execution
    def execute(self, statement: ast.Statement | None, allow_nonblocking: bool = True) -> None:
        """Execute a single statement (recursively)."""
        if statement is None or isinstance(statement, ast.NullStatement):
            return
        if isinstance(statement, ast.Block):
            for inner in statement.statements:
                self.execute(inner, allow_nonblocking)
            return
        if isinstance(statement, ast.BlockingAssign):
            value = self._make_evaluator().evaluate(statement.value)
            self._assign(statement.target, value)
            return
        if isinstance(statement, ast.NonBlockingAssign):
            value = self._make_evaluator().evaluate(statement.value)
            if allow_nonblocking:
                self.nonblocking_updates.append((statement.target, value))
            else:
                self._assign(statement.target, value)
            return
        if isinstance(statement, ast.IfStatement):
            condition = self._make_evaluator().evaluate(statement.condition).is_true()
            if condition is True:
                self.execute(statement.then_branch, allow_nonblocking)
            elif condition is False:
                self.execute(statement.else_branch, allow_nonblocking)
            else:
                # Unknown condition: neither branch executes (conservative, keeps x).
                pass
            return
        if isinstance(statement, ast.CaseStatement):
            self._execute_case(statement, allow_nonblocking)
            return
        if isinstance(statement, ast.ForLoop):
            self._execute_for(statement, allow_nonblocking)
            return
        if isinstance(statement, ast.WhileLoop):
            iterations = 0
            while True:
                condition = self._make_evaluator().evaluate(statement.condition).is_true()
                if condition is not True:
                    break
                self.execute(statement.body, allow_nonblocking)
                iterations += 1
                if iterations > MAX_LOOP_ITERATIONS:
                    raise SimulationError("while loop exceeded the iteration limit")
            return
        if isinstance(statement, ast.RepeatLoop):
            count_value = self._make_evaluator().evaluate(statement.count)
            count = count_value.to_int_or(0)
            if count > MAX_LOOP_ITERATIONS:
                raise SimulationError("repeat loop exceeded the iteration limit")
            for _ in range(count):
                self.execute(statement.body, allow_nonblocking)
            return
        if isinstance(statement, ast.DelayStatement):
            # Delays are ignored in the zero-delay functional model; the delayed
            # statement itself still executes.
            self.execute(statement.body, allow_nonblocking)
            return
        if isinstance(statement, ast.EventWait):
            # Event controls inside procedural code are not supported by the
            # functional model (they only appear in testbench-style code).
            self.execute(statement.body, allow_nonblocking)
            return
        if isinstance(statement, ast.SystemTaskCall):
            self._execute_system_task(statement)
            return
        raise SimulationError(f"unsupported statement {type(statement).__name__}")

    def commit_nonblocking(self) -> bool:
        """Apply queued non-blocking assignments; return whether anything changed."""
        changed = False
        for target, value in self.nonblocking_updates:
            changed |= self._assign(target, value)
        self.nonblocking_updates.clear()
        return changed

    # ------------------------------------------------------------------ helpers
    def _execute_case(self, statement: ast.CaseStatement, allow_nonblocking: bool) -> None:
        evaluator = self._make_evaluator()
        subject = evaluator.evaluate(statement.subject)
        default_item: ast.CaseItem | None = None
        for item in statement.items:
            if item.is_default:
                default_item = item
                continue
            for expression in item.expressions:
                candidate = evaluator.evaluate(expression)
                if self._case_matches(statement.kind, subject, candidate):
                    self.execute(item.body, allow_nonblocking)
                    return
        if default_item is not None:
            self.execute(default_item.body, allow_nonblocking)

    def _case_matches(self, kind: str, subject: LogicVector, candidate: LogicVector) -> bool:
        width = max(subject.width, candidate.width)
        subject = subject.resized(width)
        candidate = candidate.resized(width)
        for index in range(width):
            subject_bit = subject.bit(index)
            candidate_bit = candidate.bit(index)
            if kind == "casez":
                if candidate_bit == "z" or subject_bit == "z":
                    continue
            elif kind == "casex":
                if candidate_bit in "xz" or subject_bit in "xz":
                    continue
            if subject_bit != candidate_bit:
                return False
        return True

    def _execute_for(self, statement: ast.ForLoop, allow_nonblocking: bool) -> None:
        self.execute(statement.init, allow_nonblocking)
        iterations = 0
        while True:
            condition = self._make_evaluator().evaluate(statement.condition).is_true()
            if condition is not True:
                break
            self.execute(statement.body, allow_nonblocking)
            self.execute(statement.step, allow_nonblocking)
            iterations += 1
            if iterations > MAX_LOOP_ITERATIONS:
                raise SimulationError("for loop exceeded the iteration limit")

    def _execute_system_task(self, statement: ast.SystemTaskCall) -> None:
        if statement.name in ("$display", "$write", "$monitor", "$strobe"):
            rendered: list[str] = []
            evaluator = self._make_evaluator()
            for argument in statement.args:
                if isinstance(argument, ast.StringLiteral):
                    rendered.append(argument.value)
                else:
                    try:
                        rendered.append(str(evaluator.evaluate(argument)))
                    except SimulationError:
                        rendered.append("<error>")
            self.display_log.append(" ".join(rendered))
        # $finish/$stop and unknown tasks are no-ops in the functional model.

    def _assign(self, target: ast.Expression, value: LogicVector) -> bool:
        if isinstance(target, ast.Identifier):
            return self.store.set(target.name, value)
        if isinstance(target, ast.BitSelect):
            name = _target_name(target)
            index_value = self._make_evaluator().evaluate(target.index)
            if index_value.has_unknown:
                return False
            index = index_value.to_int()
            current = self.store.get(name)
            return self.store.set(name, current.replaced(index, index, value))
        if isinstance(target, ast.PartSelect):
            name = _target_name(target)
            evaluator = self._make_evaluator()
            current = self.store.get(name)
            if target.mode == ":":
                msb = evaluator.evaluate_constant(target.msb)
                lsb = evaluator.evaluate_constant(target.lsb)
            else:
                base = evaluator.evaluate_constant(target.msb)
                width = evaluator.evaluate_constant(target.lsb)
                if target.mode == "+:":
                    msb, lsb = base + width - 1, base
                else:
                    msb, lsb = base, base - width + 1
            return self.store.set(name, current.replaced(msb, lsb, value))
        if isinstance(target, ast.Concat):
            # Assign MSB-first across the concatenation parts.
            changed = False
            widths = []
            for part in target.parts:
                widths.append(self._target_width(part))
            total = sum(widths)
            value = value.resized(total)
            offset = total
            for part, width in zip(target.parts, widths):
                offset -= width
                changed |= self._assign(part, value.slice(offset + width - 1, offset))
            return changed
        raise SimulationError(f"unsupported assignment target {type(target).__name__}")

    def _target_width(self, target: ast.Expression) -> int:
        if isinstance(target, ast.Identifier):
            return self.store.widths.get(target.name, 1)
        if isinstance(target, ast.BitSelect):
            return 1
        if isinstance(target, ast.PartSelect):
            evaluator = self._make_evaluator()
            if target.mode == ":":
                msb = evaluator.evaluate_constant(target.msb)
                lsb = evaluator.evaluate_constant(target.lsb)
                return abs(msb - lsb) + 1
            return evaluator.evaluate_constant(target.lsb)
        if isinstance(target, ast.Concat):
            return sum(self._target_width(part) for part in target.parts)
        raise SimulationError(f"unsupported assignment target {type(target).__name__}")


def _target_name(expression: ast.Expression) -> str:
    if isinstance(expression, ast.Identifier):
        return expression.name
    if isinstance(expression, (ast.BitSelect, ast.PartSelect)):
        return _target_name(expression.target)
    raise SimulationError("assignment target must be a simple signal reference")


# --------------------------------------------------------------------------- batch execution
@dataclass
class BatchSignalStore:
    """Column-packed value store: every signal holds one value per stimulus lane."""

    lanes: int
    widths: dict[str, int] = field(default_factory=dict)
    values: dict[str, BatchVector] = field(default_factory=dict)

    @classmethod
    def from_scalar(cls, store: SignalStore, lanes: int) -> "BatchSignalStore":
        """Broadcast an elaborated scalar store across ``lanes`` stimuli."""
        batch = cls(lanes=lanes)
        for name, width in store.widths.items():
            batch.widths[name] = width
            batch.values[name] = BatchVector.broadcast(store.values[name], lanes)
        return batch

    def get(self, name: str) -> BatchVector:
        if name not in self.values:
            raise SimulationError(f"read of undeclared signal {name!r}")
        return self.values[name]

    def set(self, name: str, value: BatchVector, mask: int | None = None) -> bool:
        """Write ``value`` on the lanes in ``mask``; return whether anything changed."""
        if name not in self.values:
            raise SimulationError(f"write to undeclared signal {name!r}")
        resized = value.resized(self.widths[name])
        current = self.values[name]
        if mask is not None and mask != current.lane_mask:
            resized = resized.select_lanes(mask, current)
        changed = resized != current
        self.values[name] = resized
        return changed

    def set_lane(self, name: str, lane: int, value: LogicVector) -> None:
        """Write a single lane of a signal (slow path for lane fallbacks)."""
        width = self.widths[name]
        replacement = BatchVector.broadcast(value.resized(width), self.lanes)
        self.set(name, replacement, mask=1 << lane)

    def snapshot(self) -> dict[str, BatchVector]:
        """A shallow copy of the current values (values are immutable)."""
        return dict(self.values)


class BatchStatementExecutor:
    """Interpret procedural statements over all stimulus lanes at once.

    Control flow becomes *masked execution*: an ``if`` evaluates its condition
    to per-lane truth masks and runs both branches, each restricted to the lanes
    that took it; assignments merge their result into the store only on the
    active lanes.  This reproduces the scalar executor's behaviour lane by lane
    (including the rule that unknown conditions execute neither branch).
    """

    def __init__(
        self,
        store: BatchSignalStore,
        parameters: dict[str, int],
        functions: dict[str, ast.FunctionDeclaration],
    ):
        self.store = store
        self.parameters = parameters
        self.functions = functions
        self.nonblocking_updates: list[tuple[ast.Expression, BatchVector, int]] = []
        self.display_log: list[str] = []

    @property
    def full_mask(self) -> int:
        return (1 << self.store.lanes) - 1

    # ------------------------------------------------------------------ evaluation plumbing
    def _make_evaluator(self) -> BatchExpressionEvaluator:
        context = BatchEvalContext(
            signals=self.store.values,
            parameters=self.parameters,
            functions=self.functions,
            lanes=self.store.lanes,
            lane_evaluator=self._lane_evaluator,
        )
        return BatchExpressionEvaluator(context)

    def _lane_evaluator(self, lane: int) -> ExpressionEvaluator:
        """A scalar evaluator (with full function-call support) for one lane."""
        scalar_store = SignalStore()
        for name, width in self.store.widths.items():
            scalar_store.widths[name] = width
            scalar_store.values[name] = self.store.values[name].lane(lane)
        scalar_executor = StatementExecutor(scalar_store, self.parameters, self.functions)
        return scalar_executor._make_evaluator()

    # ------------------------------------------------------------------ statement execution
    def execute(
        self,
        statement: ast.Statement | None,
        active: int,
        allow_nonblocking: bool = True,
    ) -> None:
        """Execute ``statement`` on the lanes selected by the ``active`` mask."""
        if not active or statement is None or isinstance(statement, ast.NullStatement):
            return
        if isinstance(statement, ast.Block):
            for inner in statement.statements:
                self.execute(inner, active, allow_nonblocking)
            return
        if isinstance(statement, ast.BlockingAssign):
            value = self._make_evaluator().evaluate(statement.value)
            self._assign(statement.target, value, active)
            return
        if isinstance(statement, ast.NonBlockingAssign):
            value = self._make_evaluator().evaluate(statement.value)
            if allow_nonblocking:
                self.nonblocking_updates.append((statement.target, value, active))
            else:
                self._assign(statement.target, value, active)
            return
        if isinstance(statement, ast.IfStatement):
            evaluator = self._make_evaluator()
            condition = evaluator.evaluate(statement.condition)
            true_mask, false_mask, _ = evaluator._truth_masks(condition)
            # Unknown-condition lanes execute neither branch (the scalar rule).
            self.execute(statement.then_branch, active & true_mask, allow_nonblocking)
            self.execute(statement.else_branch, active & false_mask, allow_nonblocking)
            return
        if isinstance(statement, ast.CaseStatement):
            self._execute_case(statement, active, allow_nonblocking)
            return
        if isinstance(statement, ast.ForLoop):
            self._execute_for(statement, active, allow_nonblocking)
            return
        if isinstance(statement, ast.WhileLoop):
            remaining = active
            iterations = 0
            while True:
                evaluator = self._make_evaluator()
                true_mask, _, _ = evaluator._truth_masks(evaluator.evaluate(statement.condition))
                remaining &= true_mask
                if not remaining:
                    break
                self.execute(statement.body, remaining, allow_nonblocking)
                iterations += 1
                if iterations > MAX_LOOP_ITERATIONS:
                    raise SimulationError("while loop exceeded the iteration limit")
            return
        if isinstance(statement, ast.RepeatLoop):
            self._execute_repeat(statement, active, allow_nonblocking)
            return
        if isinstance(statement, ast.DelayStatement):
            self.execute(statement.body, active, allow_nonblocking)
            return
        if isinstance(statement, ast.EventWait):
            self.execute(statement.body, active, allow_nonblocking)
            return
        if isinstance(statement, ast.SystemTaskCall):
            self._execute_system_task(statement, active)
            return
        raise SimulationError(f"unsupported statement {type(statement).__name__}")

    def commit_nonblocking(self) -> bool:
        """Apply queued non-blocking assignments; return whether anything changed."""
        changed = False
        for target, value, mask in self.nonblocking_updates:
            changed |= self._assign(target, value, mask)
        self.nonblocking_updates.clear()
        return changed

    # ------------------------------------------------------------------ helpers
    def _execute_case(self, statement: ast.CaseStatement, active: int, allow_nonblocking: bool) -> None:
        evaluator = self._make_evaluator()
        subject = evaluator.evaluate(statement.subject)
        remaining = active
        default_item: ast.CaseItem | None = None
        for item in statement.items:
            if item.is_default:
                default_item = item
                continue
            for expression in item.expressions:
                if not remaining:
                    break
                candidate = evaluator.evaluate(expression)
                match_mask = self._case_match_mask(statement.kind, subject, candidate) & remaining
                if match_mask:
                    self.execute(item.body, match_mask, allow_nonblocking)
                    remaining &= ~match_mask
        if default_item is not None and remaining:
            self.execute(default_item.body, remaining, allow_nonblocking)

    def _case_match_mask(self, kind: str, subject: BatchVector, candidate: BatchVector) -> int:
        """Lanes on which ``candidate`` matches ``subject`` under the case kind."""
        width = max(subject.width, candidate.width)
        s = subject.resized(width)
        c = candidate.resized(width)
        full = subject.lane_mask
        match = full
        for bit in range(width):
            sv, sx = s.value_cols[bit], s.xz_cols[bit]
            cv, cx = c.value_cols[bit], c.xz_cols[bit]
            equal = ~(sv ^ cv) & ~(sx ^ cx)
            if kind == "casez":
                skip = (cx & cv) | (sx & sv)  # either side is z
            elif kind == "casex":
                skip = cx | sx
            else:
                skip = 0
            match &= equal | skip
        return match & full

    def _execute_for(self, statement: ast.ForLoop, active: int, allow_nonblocking: bool) -> None:
        self.execute(statement.init, active, allow_nonblocking)
        remaining = active
        iterations = 0
        while True:
            evaluator = self._make_evaluator()
            true_mask, _, _ = evaluator._truth_masks(evaluator.evaluate(statement.condition))
            remaining &= true_mask
            if not remaining:
                break
            self.execute(statement.body, remaining, allow_nonblocking)
            self.execute(statement.step, remaining, allow_nonblocking)
            iterations += 1
            if iterations > MAX_LOOP_ITERATIONS:
                raise SimulationError("for loop exceeded the iteration limit")

    def _execute_repeat(self, statement: ast.RepeatLoop, active: int, allow_nonblocking: bool) -> None:
        count_value = self._make_evaluator().evaluate(statement.count)
        counts = [vector.to_int_or(0) for vector in count_value.to_vectors()]
        if max(counts, default=0) > MAX_LOOP_ITERATIONS:
            raise SimulationError("repeat loop exceeded the iteration limit")
        for iteration in range(max(counts, default=0)):
            mask = 0
            for lane, count in enumerate(counts):
                if iteration < count:
                    mask |= 1 << lane
            mask &= active
            if not mask:
                continue
            self.execute(statement.body, mask, allow_nonblocking)

    def _execute_system_task(self, statement: ast.SystemTaskCall, active: int) -> None:
        if statement.name in ("$display", "$write", "$monitor", "$strobe"):
            rendered: list[str] = []
            evaluator = self._make_evaluator()
            for argument in statement.args:
                if isinstance(argument, ast.StringLiteral):
                    rendered.append(argument.value)
                else:
                    try:
                        value = evaluator.evaluate(argument)
                        text = str(value.lane(0)) if self.store.lanes == 1 else str(value)
                        rendered.append(text)
                    except SimulationError:
                        rendered.append("<error>")
            self.display_log.append(" ".join(rendered))

    def _assign(self, target: ast.Expression, value: BatchVector, mask: int) -> bool:
        if not mask:
            return False
        if isinstance(target, ast.Identifier):
            return self.store.set(target.name, value, mask)
        if isinstance(target, ast.BitSelect):
            return self._assign_bit_select(target, value, mask)
        if isinstance(target, ast.PartSelect):
            return self._assign_part_select(target, value, mask)
        if isinstance(target, ast.Concat):
            changed = False
            widths = [self._target_width(part) for part in target.parts]
            total = sum(widths)
            value = value.resized(total)
            offset = total
            for part, width in zip(target.parts, widths):
                offset -= width
                changed |= self._assign(part, value.slice(offset + width - 1, offset), mask)
            return changed
        raise SimulationError(f"unsupported assignment target {type(target).__name__}")

    def _assign_bit_select(self, target: ast.BitSelect, value: BatchVector, mask: int) -> bool:
        name = _target_name(target)
        evaluator = self._make_evaluator()
        index = evaluator.evaluate(target.index)
        current = self.store.get(name)
        uniform = index.uniform_value()
        if uniform is not None:
            if uniform.has_unknown:
                return False  # unknown index: no write, matching the scalar rule
            position = uniform.to_int()
            return self.store.set(name, current.replaced(position, position, value, mask), mask)
        # Per-possible-position masked writes; lanes with unknown indices skip.
        # The loop is bounded by what the index operand can encode so that
        # from_int(position) never wraps onto a lower index value.
        changed = False
        unknown = index.unknown_lanes()
        merged = current
        for position in range(min(current.width, 1 << index.width)):
            position_value = BatchVector.broadcast(
                LogicVector.from_int(position, index.width), self.store.lanes
            )
            eq_mask = evaluator._truth_masks(evaluator._evaluate_relational("==", index, position_value))[0]
            eq_mask &= mask & ~unknown
            if not eq_mask:
                continue
            merged = merged.replaced(position, position, value, eq_mask)
        if merged != current:
            changed = self.store.set(name, merged, mask)
        return changed

    def _assign_part_select(self, target: ast.PartSelect, value: BatchVector, mask: int) -> bool:
        name = _target_name(target)
        evaluator = self._make_evaluator()
        msb_value = evaluator.evaluate(target.msb)
        lsb_value = evaluator.evaluate(target.lsb)
        msb_uniform = msb_value.uniform_value()
        lsb_uniform = lsb_value.uniform_value()
        current = self.store.get(name)
        if (
            msb_uniform is not None
            and lsb_uniform is not None
            and not msb_uniform.has_unknown
            and not lsb_uniform.has_unknown
        ):
            first = msb_uniform.to_int()
            second = lsb_uniform.to_int()
            if target.mode == ":":
                msb, lsb = first, second
            elif target.mode == "+:":
                msb, lsb = first + second - 1, first
            else:
                msb, lsb = first, first - second + 1
            return self.store.set(name, current.replaced(msb, lsb, value, mask), mask)
        # Lane-divergent bounds: fall back to per-lane scalar bound evaluation.
        changed = False
        for lane in range(self.store.lanes):
            if not (mask >> lane) & 1:
                continue
            scalar = self._lane_evaluator(lane)
            try:
                first = scalar.evaluate_constant(target.msb)
                second = scalar.evaluate_constant(target.lsb)
            except (SimulationError, ValueError):
                continue
            if target.mode == ":":
                msb, lsb = first, second
            elif target.mode == "+:":
                msb, lsb = first + second - 1, first
            else:
                msb, lsb = first, first - second + 1
            current = self.store.get(name)
            changed |= self.store.set(name, current.replaced(msb, lsb, value, 1 << lane), 1 << lane)
        return changed

    def _target_width(self, target: ast.Expression) -> int:
        if isinstance(target, ast.Identifier):
            return self.store.widths.get(target.name, 1)
        if isinstance(target, ast.BitSelect):
            return 1
        if isinstance(target, ast.PartSelect):
            evaluator = self._make_evaluator()
            if target.mode == ":":
                msb = evaluator.evaluate_uniform_constant(target.msb)
                lsb = evaluator.evaluate_uniform_constant(target.lsb)
                return abs(msb - lsb) + 1
            return evaluator.evaluate_uniform_constant(target.lsb)
        if isinstance(target, ast.Concat):
            return sum(self._target_width(part) for part in target.parts)
        raise SimulationError(f"unsupported assignment target {type(target).__name__}")
