"""Process model and statement execution for the Verilog simulator.

The simulator models a module as a set of *processes*:

* combinational processes — continuous assignments and ``always @(*)`` /
  level-sensitive ``always`` blocks, re-evaluated until the design settles;
* sequential processes — ``always`` blocks with edge-triggered sensitivity
  (``posedge``/``negedge``), executed when one of their edges fires, with
  non-blocking assignments committed after all triggered processes ran;
* initial processes — ``initial`` blocks executed once at time zero.

:class:`StatementExecutor` interprets procedural statements against a signal
store, queueing non-blocking assignments for later commit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .. import ast_nodes as ast
from ..errors import SimulationError
from .eval import EvalContext, ExpressionEvaluator
from .values import LogicVector

#: Upper bound on loop iterations inside a single process activation.  Real RTL in
#: the supported subset never needs more; the cap converts accidental infinite
#: loops in generated code into a simulation error (a functional failure).
MAX_LOOP_ITERATIONS = 4096


class ProcessKind(enum.Enum):
    """Classification of a process for scheduling purposes."""

    COMBINATIONAL = "combinational"
    SEQUENTIAL = "sequential"
    INITIAL = "initial"


@dataclass
class Process:
    """A schedulable process extracted from a module item."""

    kind: ProcessKind
    body: ast.Statement | None
    sensitivity: list[ast.SensitivityItem] = field(default_factory=list)
    label: str = ""

    def edge_signals(self) -> list[tuple[ast.EdgeKind, str]]:
        """Return ``(edge, signal_name)`` pairs for edge-triggered entries."""
        edges: list[tuple[ast.EdgeKind, str]] = []
        for item in self.sensitivity:
            if item.edge in (ast.EdgeKind.POSEDGE, ast.EdgeKind.NEGEDGE) and isinstance(
                item.signal, ast.Identifier
            ):
                edges.append((item.edge, item.signal.name))
        return edges


@dataclass
class SignalStore:
    """Mutable value store for all signals of an elaborated module."""

    widths: dict[str, int] = field(default_factory=dict)
    values: dict[str, LogicVector] = field(default_factory=dict)

    def declare(self, name: str, width: int, initial: LogicVector | None = None) -> None:
        """Declare a signal with the given width, defaulting to all-x."""
        self.widths[name] = width
        self.values[name] = initial.resized(width) if initial is not None else LogicVector.unknown(width)

    def get(self, name: str) -> LogicVector:
        if name not in self.values:
            raise SimulationError(f"read of undeclared signal {name!r}")
        return self.values[name]

    def set(self, name: str, value: LogicVector) -> bool:
        """Set a signal value (resized to its width); return ``True`` if it changed."""
        if name not in self.values:
            raise SimulationError(f"write to undeclared signal {name!r}")
        resized = value.resized(self.widths[name])
        changed = resized != self.values[name]
        self.values[name] = resized
        return changed

    def snapshot(self) -> dict[str, LogicVector]:
        """Return a shallow copy of the current values."""
        return dict(self.values)


class StatementExecutor:
    """Interpret procedural statements against a signal store."""

    def __init__(
        self,
        store: SignalStore,
        parameters: dict[str, int],
        functions: dict[str, ast.FunctionDeclaration],
    ):
        self.store = store
        self.parameters = parameters
        self.functions = functions
        self.nonblocking_updates: list[tuple[ast.Expression, LogicVector]] = []
        self.display_log: list[str] = []

    # ------------------------------------------------------------------ evaluation plumbing
    def _make_evaluator(self, local_signals: dict[str, LogicVector] | None = None) -> ExpressionEvaluator:
        signals = dict(self.store.values)
        if local_signals:
            signals.update(local_signals)
        context = EvalContext(
            signals=signals,
            parameters=self.parameters,
            functions=self.functions,
            function_evaluator=self._call_function,
        )
        return ExpressionEvaluator(context)

    def _call_function(self, name: str, args: list[LogicVector]) -> LogicVector:
        function = self.functions.get(name)
        if function is None:
            raise SimulationError(f"call to unknown function {name!r}")
        width = 1
        if function.range is not None:
            evaluator = self._make_evaluator()
            msb = evaluator.evaluate_constant(function.range.msb)
            lsb = evaluator.evaluate_constant(function.range.lsb)
            width = abs(msb - lsb) + 1
        local_store = SignalStore()
        local_store.declare(function.name, width)
        argument_index = 0
        for declaration in function.inputs:
            for input_name in declaration.names:
                input_width = 1
                if declaration.range is not None:
                    evaluator = self._make_evaluator()
                    msb = evaluator.evaluate_constant(declaration.range.msb)
                    lsb = evaluator.evaluate_constant(declaration.range.lsb)
                    input_width = abs(msb - lsb) + 1
                value = args[argument_index] if argument_index < len(args) else LogicVector.unknown(input_width)
                local_store.declare(input_name, input_width, value)
                argument_index += 1
        for declaration in function.locals:
            for local_name in declaration.names:
                local_width = 1
                if declaration.range is not None:
                    evaluator = self._make_evaluator()
                    msb = evaluator.evaluate_constant(declaration.range.msb)
                    lsb = evaluator.evaluate_constant(declaration.range.lsb)
                    local_width = abs(msb - lsb) + 1
                if declaration.net_type is ast.NetType.INTEGER:
                    local_width = 32
                local_store.declare(local_name, local_width)
        nested = StatementExecutor(local_store, self.parameters, self.functions)
        # Bring the outer signals into scope for reads inside the function body.
        for name, value in self.store.values.items():
            if name not in local_store.values:
                local_store.widths[name] = value.width
                local_store.values[name] = value
        nested.execute(function.body, allow_nonblocking=False)
        return local_store.get(function.name)

    # ------------------------------------------------------------------ statement execution
    def execute(self, statement: ast.Statement | None, allow_nonblocking: bool = True) -> None:
        """Execute a single statement (recursively)."""
        if statement is None or isinstance(statement, ast.NullStatement):
            return
        if isinstance(statement, ast.Block):
            for inner in statement.statements:
                self.execute(inner, allow_nonblocking)
            return
        if isinstance(statement, ast.BlockingAssign):
            value = self._make_evaluator().evaluate(statement.value)
            self._assign(statement.target, value)
            return
        if isinstance(statement, ast.NonBlockingAssign):
            value = self._make_evaluator().evaluate(statement.value)
            if allow_nonblocking:
                self.nonblocking_updates.append((statement.target, value))
            else:
                self._assign(statement.target, value)
            return
        if isinstance(statement, ast.IfStatement):
            condition = self._make_evaluator().evaluate(statement.condition).is_true()
            if condition is True:
                self.execute(statement.then_branch, allow_nonblocking)
            elif condition is False:
                self.execute(statement.else_branch, allow_nonblocking)
            else:
                # Unknown condition: neither branch executes (conservative, keeps x).
                pass
            return
        if isinstance(statement, ast.CaseStatement):
            self._execute_case(statement, allow_nonblocking)
            return
        if isinstance(statement, ast.ForLoop):
            self._execute_for(statement, allow_nonblocking)
            return
        if isinstance(statement, ast.WhileLoop):
            iterations = 0
            while True:
                condition = self._make_evaluator().evaluate(statement.condition).is_true()
                if condition is not True:
                    break
                self.execute(statement.body, allow_nonblocking)
                iterations += 1
                if iterations > MAX_LOOP_ITERATIONS:
                    raise SimulationError("while loop exceeded the iteration limit")
            return
        if isinstance(statement, ast.RepeatLoop):
            count_value = self._make_evaluator().evaluate(statement.count)
            count = count_value.to_int_or(0)
            if count > MAX_LOOP_ITERATIONS:
                raise SimulationError("repeat loop exceeded the iteration limit")
            for _ in range(count):
                self.execute(statement.body, allow_nonblocking)
            return
        if isinstance(statement, ast.DelayStatement):
            # Delays are ignored in the zero-delay functional model; the delayed
            # statement itself still executes.
            self.execute(statement.body, allow_nonblocking)
            return
        if isinstance(statement, ast.EventWait):
            # Event controls inside procedural code are not supported by the
            # functional model (they only appear in testbench-style code).
            self.execute(statement.body, allow_nonblocking)
            return
        if isinstance(statement, ast.SystemTaskCall):
            self._execute_system_task(statement)
            return
        raise SimulationError(f"unsupported statement {type(statement).__name__}")

    def commit_nonblocking(self) -> bool:
        """Apply queued non-blocking assignments; return whether anything changed."""
        changed = False
        for target, value in self.nonblocking_updates:
            changed |= self._assign(target, value)
        self.nonblocking_updates.clear()
        return changed

    # ------------------------------------------------------------------ helpers
    def _execute_case(self, statement: ast.CaseStatement, allow_nonblocking: bool) -> None:
        evaluator = self._make_evaluator()
        subject = evaluator.evaluate(statement.subject)
        default_item: ast.CaseItem | None = None
        for item in statement.items:
            if item.is_default:
                default_item = item
                continue
            for expression in item.expressions:
                candidate = evaluator.evaluate(expression)
                if self._case_matches(statement.kind, subject, candidate):
                    self.execute(item.body, allow_nonblocking)
                    return
        if default_item is not None:
            self.execute(default_item.body, allow_nonblocking)

    def _case_matches(self, kind: str, subject: LogicVector, candidate: LogicVector) -> bool:
        width = max(subject.width, candidate.width)
        subject = subject.resized(width)
        candidate = candidate.resized(width)
        for index in range(width):
            subject_bit = subject.bit(index)
            candidate_bit = candidate.bit(index)
            if kind == "casez":
                if candidate_bit == "z" or subject_bit == "z":
                    continue
            elif kind == "casex":
                if candidate_bit in "xz" or subject_bit in "xz":
                    continue
            if subject_bit != candidate_bit:
                return False
        return True

    def _execute_for(self, statement: ast.ForLoop, allow_nonblocking: bool) -> None:
        self.execute(statement.init, allow_nonblocking)
        iterations = 0
        while True:
            condition = self._make_evaluator().evaluate(statement.condition).is_true()
            if condition is not True:
                break
            self.execute(statement.body, allow_nonblocking)
            self.execute(statement.step, allow_nonblocking)
            iterations += 1
            if iterations > MAX_LOOP_ITERATIONS:
                raise SimulationError("for loop exceeded the iteration limit")

    def _execute_system_task(self, statement: ast.SystemTaskCall) -> None:
        if statement.name in ("$display", "$write", "$monitor", "$strobe"):
            rendered: list[str] = []
            evaluator = self._make_evaluator()
            for argument in statement.args:
                if isinstance(argument, ast.StringLiteral):
                    rendered.append(argument.value)
                else:
                    try:
                        rendered.append(str(evaluator.evaluate(argument)))
                    except SimulationError:
                        rendered.append("<error>")
            self.display_log.append(" ".join(rendered))
        # $finish/$stop and unknown tasks are no-ops in the functional model.

    def _assign(self, target: ast.Expression, value: LogicVector) -> bool:
        if isinstance(target, ast.Identifier):
            return self.store.set(target.name, value)
        if isinstance(target, ast.BitSelect):
            name = _target_name(target)
            index_value = self._make_evaluator().evaluate(target.index)
            if index_value.has_unknown:
                return False
            index = index_value.to_int()
            current = self.store.get(name)
            return self.store.set(name, current.replaced(index, index, value))
        if isinstance(target, ast.PartSelect):
            name = _target_name(target)
            evaluator = self._make_evaluator()
            current = self.store.get(name)
            if target.mode == ":":
                msb = evaluator.evaluate_constant(target.msb)
                lsb = evaluator.evaluate_constant(target.lsb)
            else:
                base = evaluator.evaluate_constant(target.msb)
                width = evaluator.evaluate_constant(target.lsb)
                if target.mode == "+:":
                    msb, lsb = base + width - 1, base
                else:
                    msb, lsb = base, base - width + 1
            return self.store.set(name, current.replaced(msb, lsb, value))
        if isinstance(target, ast.Concat):
            # Assign MSB-first across the concatenation parts.
            changed = False
            widths = []
            for part in target.parts:
                widths.append(self._target_width(part))
            total = sum(widths)
            value = value.resized(total)
            offset = total
            for part, width in zip(target.parts, widths):
                offset -= width
                changed |= self._assign(part, value.slice(offset + width - 1, offset))
            return changed
        raise SimulationError(f"unsupported assignment target {type(target).__name__}")

    def _target_width(self, target: ast.Expression) -> int:
        if isinstance(target, ast.Identifier):
            return self.store.widths.get(target.name, 1)
        if isinstance(target, ast.BitSelect):
            return 1
        if isinstance(target, ast.PartSelect):
            evaluator = self._make_evaluator()
            if target.mode == ":":
                msb = evaluator.evaluate_constant(target.msb)
                lsb = evaluator.evaluate_constant(target.lsb)
                return abs(msb - lsb) + 1
            return evaluator.evaluate_constant(target.lsb)
        if isinstance(target, ast.Concat):
            return sum(self._target_width(part) for part in target.parts)
        raise SimulationError(f"unsupported assignment target {type(target).__name__}")


def _target_name(expression: ast.Expression) -> str:
    if isinstance(expression, ast.Identifier):
        return expression.name
    if isinstance(expression, (ast.BitSelect, ast.PartSelect)):
        return _target_name(expression.target)
    raise SimulationError("assignment target must be a simple signal reference")
