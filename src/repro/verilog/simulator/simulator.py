"""Single-module functional simulator.

:class:`ModuleSimulator` elaborates one Verilog module (resolving parameters and
signal widths) and then executes it under a zero-delay, cycle-oriented model:

* inputs are applied with :meth:`ModuleSimulator.apply_inputs`, which detects
  edges on the changed signals, runs any triggered sequential processes (with
  non-blocking assignment semantics) and settles combinational logic to a fixpoint;
* :meth:`ModuleSimulator.clock_cycle` is a convenience for the usual
  "drive data, raise the clock, lower the clock" testbench idiom.

Hierarchical designs are supported for the common "leaf instantiation" case: an
instantiated child module is simulated recursively and its port connections are
treated as combinational/sequential boundaries by flattening it into the parent.
For the benchmark suites in this repository, designs are single-module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...deadline import check_deadline
from .. import ast_nodes as ast
from ..errors import ElaborationError, SimulationError
from .eval import EvalContext, ExpressionEvaluator
from .scheduler import Process, ProcessKind, SignalStore, StatementExecutor
from .values import LogicVector

#: Maximum number of sweeps over combinational processes before declaring a
#: combinational loop.
MAX_SETTLE_ITERATIONS = 64


@dataclass
class PortInfo:
    """Elaborated information about a module port."""

    name: str
    direction: ast.PortDirection
    width: int


@dataclass
class ElaboratedModule:
    """A module with resolved parameters, signal widths and processes."""

    name: str
    ports: list[PortInfo]
    parameters: dict[str, int]
    store: SignalStore
    processes: list[Process] = field(default_factory=list)
    functions: dict[str, ast.FunctionDeclaration] = field(default_factory=dict)

    def input_ports(self) -> list[PortInfo]:
        return [port for port in self.ports if port.direction is ast.PortDirection.INPUT]

    def output_ports(self) -> list[PortInfo]:
        return [port for port in self.ports if port.direction is ast.PortDirection.OUTPUT]


def resolve_parameters(module: ast.Module, overrides: dict[str, int]) -> dict[str, int]:
    """Resolve module parameters to integers, honouring ``overrides``."""
    parameters: dict[str, int] = {}
    evaluator = ExpressionEvaluator(EvalContext(parameters=parameters))
    for name, expression in module.parameters.items():
        if name in overrides:
            parameters[name] = overrides[name]
        else:
            parameters[name] = evaluator.evaluate_constant(expression)
    for item in module.items:
        if isinstance(item, ast.ParameterDeclaration):
            for name, expression in item.names.items():
                if not item.local and name in overrides:
                    parameters[name] = overrides[name]
                else:
                    parameters[name] = evaluator.evaluate_constant(expression)
    return parameters


def elaborate_module(
    module: ast.Module, parameter_overrides: dict[str, int] | None = None
) -> ElaboratedModule:
    """Resolve parameters, widths and processes for one module.

    Shared by the scalar :class:`ModuleSimulator` and the batched
    :class:`~repro.verilog.simulator.batch.BatchSimulator` so both start from
    exactly the same elaborated design (initial-block execution and settling
    are the simulators' responsibility).
    """
    parameters = resolve_parameters(module, {} if parameter_overrides is None else parameter_overrides)
    store = SignalStore()
    functions: dict[str, ast.FunctionDeclaration] = {}

    constant_evaluator = ExpressionEvaluator(EvalContext(parameters=parameters))

    def range_width(rng: ast.Range | None) -> int:
        if rng is None:
            return 1
        msb = constant_evaluator.evaluate_constant(rng.msb)
        lsb = constant_evaluator.evaluate_constant(rng.lsb)
        return abs(msb - lsb) + 1

    # Ports (merge header info with body declarations).
    port_ranges: dict[str, ast.Range | None] = {port.name: port.range for port in module.ports}
    port_directions: dict[str, ast.PortDirection | None] = {
        port.name: port.direction for port in module.ports
    }
    for item in module.items:
        if isinstance(item, ast.PortDeclaration):
            for name in item.names:
                if name in port_directions:
                    if port_directions[name] is None:
                        port_directions[name] = item.direction
                    if port_ranges.get(name) is None:
                        port_ranges[name] = item.range

    ports: list[PortInfo] = []
    for port in module.ports:
        direction = port_directions[port.name]
        if direction is None:
            raise ElaborationError(
                f"port {port.name!r} of module {module.name!r} has no direction"
            )
        width = range_width(port_ranges.get(port.name))
        ports.append(PortInfo(name=port.name, direction=direction, width=width))
        store.declare(port.name, width)

    # Internal declarations.
    for item in module.items:
        if isinstance(item, ast.NetDeclaration):
            width = 32 if item.net_type is ast.NetType.INTEGER else range_width(item.range)
            if item.array_range is not None:
                raise ElaborationError(
                    f"memory arrays are not supported by the functional simulator "
                    f"(signal {item.names[0]!r} in module {module.name!r})"
                )
            for name in item.names:
                if name not in store.values:
                    store.declare(name, width)
                if name in item.initial_values:
                    value = constant_evaluator.evaluate(item.initial_values[name])
                    store.set(name, value)
        elif isinstance(item, ast.PortDeclaration):
            for name in item.names:
                if name not in store.values:
                    store.declare(name, range_width(item.range))
        elif isinstance(item, ast.GenvarDeclaration):
            for name in item.names:
                store.declare(name, 32)
        elif isinstance(item, ast.FunctionDeclaration):
            functions[item.name] = item
        elif isinstance(item, ast.ModuleInstance):
            raise ElaborationError(
                f"module instantiation ({item.module_name!r}) is not supported by the "
                "single-module functional simulator"
            )

    design = ElaboratedModule(
        name=module.name,
        ports=ports,
        parameters=parameters,
        store=store,
        functions=functions,
    )

    # Processes.
    for item in module.items:
        if isinstance(item, ast.ContinuousAssign):
            body = ast.BlockingAssign(target=item.target, value=item.value)
            design.processes.append(
                Process(kind=ProcessKind.COMBINATIONAL, body=body, label="assign")
            )
        elif isinstance(item, ast.AlwaysBlock):
            has_edge = any(
                entry.edge in (ast.EdgeKind.POSEDGE, ast.EdgeKind.NEGEDGE)
                for entry in item.sensitivity
            )
            kind = ProcessKind.SEQUENTIAL if has_edge else ProcessKind.COMBINATIONAL
            design.processes.append(
                Process(kind=kind, body=item.body, sensitivity=item.sensitivity, label="always")
            )
        elif isinstance(item, ast.InitialBlock):
            design.processes.append(
                Process(kind=ProcessKind.INITIAL, body=item.body, label="initial")
            )
    return design


class ModuleSimulator:
    """Elaborate and simulate a single Verilog module.

    Accepts either a parsed :class:`~repro.verilog.ast_nodes.Module` (elaborated
    from scratch) or a cached :class:`~repro.verilog.design.CompiledDesign`
    (elaboration template cloned, no front-end work).  ``from_source`` routes
    through the default :class:`~repro.verilog.design.DesignDatabase`, so
    repeated construction from the same source is a cache hit.
    """

    def __init__(
        self,
        module,
        parameter_overrides: dict[str, int] | None = None,
    ):
        from ..design import CompiledDesign

        self.parameter_overrides = dict(parameter_overrides or {})
        if isinstance(module, CompiledDesign):
            self.compiled: CompiledDesign | None = module
            self.module = module.module
            if self.parameter_overrides and self.parameter_overrides != module.parameter_overrides:
                # Divergent overrides: honour the caller, bypassing the template.
                self.design = elaborate_module(self.module, self.parameter_overrides)
            else:
                self.parameter_overrides = dict(module.parameter_overrides)
                self.design = module.elaborate()
        else:
            self.compiled = None
            self.module = module
            self.design = elaborate_module(module, self.parameter_overrides)
        self.executor = StatementExecutor(
            self.design.store, self.design.parameters, self.design.functions
        )
        self._run_initial_blocks()
        self.settle()

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_source(
        cls,
        source: str,
        module_name: str | None = None,
        parameter_overrides: dict[str, int] | None = None,
        database=None,
    ) -> "ModuleSimulator":
        """Build a simulator from source via the (default) design database."""
        from ..design import get_default_database

        db = database if database is not None else get_default_database()
        return cls(db.compile(source, module_name, parameter_overrides))

    def _run_initial_blocks(self) -> None:
        for process in self.design.processes:
            if process.kind is ProcessKind.INITIAL:
                self.executor.execute(process.body, allow_nonblocking=False)

    # ------------------------------------------------------------------ value access
    @property
    def signals(self) -> dict[str, LogicVector]:
        """The current values of every signal."""
        return self.design.store.values

    def get(self, name: str) -> LogicVector:
        """Return the current value of a signal."""
        return self.design.store.get(name)

    def get_int(self, name: str) -> int:
        """Return a signal's value as an unsigned integer (raises on x/z)."""
        return self.get(name).to_int()

    def set_signal(self, name: str, value: int | LogicVector) -> None:
        """Force a signal to a value without edge processing (for test setup)."""
        self.design.store.set(name, self._coerce(name, value))

    def _coerce(self, name: str, value: int | LogicVector) -> LogicVector:
        width = self.design.store.widths[name]
        if isinstance(value, LogicVector):
            return value.resized(width)
        return LogicVector.from_int(value, width)

    # ------------------------------------------------------------------ execution
    def settle(self) -> None:
        """Re-evaluate combinational processes until no signal changes."""
        for _ in range(MAX_SETTLE_ITERATIONS):
            check_deadline("ModuleSimulator.settle")
            changed = False
            for process in self.design.processes:
                if process.kind is not ProcessKind.COMBINATIONAL:
                    continue
                changed |= self._run_combinational(process)
            if not changed:
                return
        raise SimulationError(
            f"combinational logic in module {self.design.name!r} did not settle "
            f"after {MAX_SETTLE_ITERATIONS} iterations (combinational loop?)"
        )

    def _run_combinational(self, process: Process) -> bool:
        before = self.design.store.snapshot()
        self.executor.execute(process.body, allow_nonblocking=False)
        return any(self.design.store.values[name] != before[name] for name in before)

    def apply_inputs(self, inputs: dict[str, int | LogicVector]) -> None:
        """Apply input changes, run triggered sequential logic and settle.

        Edges are detected per changed signal (0→1 is a posedge, 1→0 a negedge).
        All sequential processes triggered by any of the edges execute against the
        post-change, combinationally-settled state, then their non-blocking
        assignments commit together — matching event-driven simulator semantics
        for single-clock designs.
        """
        previous = {name: self.design.store.get(name) for name in inputs}
        for name, value in inputs.items():
            if name not in self.design.store.values:
                raise SimulationError(f"unknown input signal {name!r}")
            self.design.store.set(name, self._coerce(name, value))
        edges = self._detect_edges(previous)
        self.settle()
        if edges:
            self._run_sequential(edges)
            self.settle()

    def _detect_edges(self, previous: dict[str, LogicVector]) -> set[tuple[ast.EdgeKind, str]]:
        edges: set[tuple[ast.EdgeKind, str]] = set()
        for name, old in previous.items():
            new = self.design.store.get(name)
            old_bit = old.bit(0)
            new_bit = new.bit(0)
            if old_bit == new_bit:
                continue
            if new_bit == "1" and old_bit in "0xz":
                edges.add((ast.EdgeKind.POSEDGE, name))
            elif new_bit == "0" and old_bit in "1xz":
                edges.add((ast.EdgeKind.NEGEDGE, name))
        return edges

    def _run_sequential(self, edges: set[tuple[ast.EdgeKind, str]]) -> None:
        triggered: list[Process] = []
        for process in self.design.processes:
            if process.kind is not ProcessKind.SEQUENTIAL:
                continue
            for edge, signal in process.edge_signals():
                if (edge, signal) in edges:
                    triggered.append(process)
                    break
        for process in triggered:
            self.executor.execute(process.body, allow_nonblocking=True)
        self.executor.commit_nonblocking()

    def clock_cycle(
        self,
        clock: str = "clk",
        inputs: dict[str, int | LogicVector] | None = None,
    ) -> None:
        """Drive one full clock cycle: apply ``inputs``, raise and lower ``clock``."""
        if inputs:
            self.apply_inputs(inputs)
        self.apply_inputs({clock: 1})
        self.apply_inputs({clock: 0})

    def pulse(self, signal: str, active_low: bool = False) -> None:
        """Pulse a signal (e.g. a reset) to its active level and back."""
        active, inactive = (0, 1) if active_low else (1, 0)
        self.apply_inputs({signal: active})
        self.apply_inputs({signal: inactive})

    # ------------------------------------------------------------------ introspection
    def output_values(self) -> dict[str, LogicVector]:
        """Return the current value of every output port."""
        return {port.name: self.get(port.name) for port in self.design.output_ports()}

    def input_names(self) -> list[str]:
        """Names of all input ports."""
        return [port.name for port in self.design.input_ports()]

    def output_names(self) -> list[str]:
        """Names of all output ports."""
        return [port.name for port in self.design.output_ports()]

    @property
    def display_log(self) -> list[str]:
        """Messages produced by ``$display``-style system tasks."""
        return self.executor.display_log


def simulate_combinational(
    source: str,
    input_vectors: list[dict[str, int]],
    module_name: str | None = None,
) -> list[dict[str, LogicVector]]:
    """Convenience helper: apply each input vector and collect output values."""
    simulator = ModuleSimulator.from_source(source, module_name)
    results: list[dict[str, LogicVector]] = []
    for vector in input_vectors:
        simulator.apply_inputs(dict(vector))
        results.append(simulator.output_values())
    return results
