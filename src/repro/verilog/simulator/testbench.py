"""Testbench runner: check a DUT against a Python golden model.

Functional correctness in the benchmark suites is decided the same way the paper
does it with a commercial simulator and reference testbenches: the generated
module (DUT) is simulated against a stimulus sequence and its outputs are compared
cycle-by-cycle with a golden reference model implemented in Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Protocol

from ..errors import VerilogError
from .simulator import ModuleSimulator
from .values import LogicVector


class GoldenModel(Protocol):
    """Reference model interface used by the testbench runner.

    Combinational models only need :meth:`eval`; sequential models also need
    :meth:`reset` and :meth:`step` and must set ``is_sequential`` to ``True``.
    """

    is_sequential: bool

    def reset(self) -> None:  # pragma: no cover - protocol
        """Reset internal state (sequential models)."""

    def eval(self, inputs: Mapping[str, int]) -> dict[str, int]:  # pragma: no cover - protocol
        """Return expected outputs for a combinational input vector."""

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:  # pragma: no cover - protocol
        """Advance one clock cycle and return expected post-edge outputs."""


@dataclass
class CombinationalGolden:
    """Wrap a plain function as a combinational golden model."""

    function: Callable[[Mapping[str, int]], dict[str, int]]
    is_sequential: bool = False

    def reset(self) -> None:
        """Combinational models have no state."""

    def eval(self, inputs: Mapping[str, int]) -> dict[str, int]:
        return self.function(inputs)

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        return self.function(inputs)


@dataclass
class ResetSpec:
    """How to reset the DUT before applying stimulus."""

    signal: str = "rst"
    active_low: bool = False
    synchronous: bool = True
    cycles: int = 2


@dataclass
class Mismatch:
    """A single output mismatch observed during a testbench run."""

    step_index: int
    output: str
    expected: int
    actual: str
    inputs: dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"step {self.step_index}: output {self.output!r} expected {self.expected} "
            f"got {self.actual} (inputs {self.inputs})"
        )


@dataclass
class TestbenchResult:
    """Outcome of running a DUT against a golden model."""

    passed: bool
    total_checks: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)
    error: str | None = None
    #: SAT-search accounting when the verdict came from a formal proof
    #: (conflicts, decisions, propagations, learned clauses, fraig merges,
    #: proof method); ``None`` for simulation verdicts.
    proof_stats: dict | None = None

    @property
    def failure_summary(self) -> str:
        """Human-readable description of why the run failed (empty when passed)."""
        if self.passed:
            return ""
        if self.error is not None:
            return f"simulation error: {self.error}"
        shown = ", ".join(str(mismatch) for mismatch in self.mismatches[:3])
        more = len(self.mismatches) - 3
        return shown + (f" (+{more} more)" if more > 0 else "")


class TestbenchRunner:
    """Drive a DUT with stimulus and compare outputs against a golden model.

    The DUT source is compiled exactly once per run through the (default)
    :class:`~repro.verilog.design.DesignDatabase`, so scoring many candidates
    — or the same candidate many times — re-uses the cached front end.
    """

    #: Not a pytest test class, despite the name.
    __test__ = False

    def __init__(
        self,
        clock: str = "clk",
        reset: ResetSpec | None = None,
        max_mismatches: int = 32,
        database=None,
    ):
        self.clock = clock
        self.reset = reset
        self.max_mismatches = max_mismatches
        self.database = database

    def _compile(self, dut_source: str, module_name: str | None):
        """Compile the DUT via the database; a failure becomes a failed result."""
        from ..design import get_default_database

        db = self.database if self.database is not None else get_default_database()
        try:
            return db.compile(dut_source, module_name)
        except VerilogError as exc:
            return TestbenchResult(passed=False, error=str(exc))

    def run(
        self,
        dut_source: str,
        golden: GoldenModel,
        stimulus: list[dict[str, int]],
        module_name: str | None = None,
        check_outputs: list[str] | None = None,
    ) -> TestbenchResult:
        """Run the testbench and return the result.

        Args:
            dut_source: Verilog source of the design under test.
            golden: reference model producing expected outputs.
            stimulus: one input dict per step (combinational) or per cycle (sequential).
            module_name: module to simulate (defaults to the first in the source).
            check_outputs: subset of outputs to compare; defaults to every key the
                golden model produces.
        """
        compiled = self._compile(dut_source, module_name)
        if isinstance(compiled, TestbenchResult):
            return compiled
        return self._run_scalar(compiled, golden, stimulus, check_outputs)

    def _run_scalar(
        self,
        compiled,
        golden: GoldenModel,
        stimulus: list[dict[str, int]],
        check_outputs: list[str] | None,
    ) -> TestbenchResult:
        """Cycle-serial scoring of a compiled DUT against the golden model."""
        try:
            simulator = ModuleSimulator(compiled)
        except VerilogError as exc:
            return TestbenchResult(passed=False, error=str(exc))

        mismatches: list[Mismatch] = []
        total_checks = 0
        golden.reset()

        try:
            if golden.is_sequential:
                self._apply_reset(simulator, golden)
            for index, raw_inputs in enumerate(stimulus):
                inputs = dict(raw_inputs)
                if golden.is_sequential:
                    expected = golden.step(inputs)
                    self._drive_cycle(simulator, inputs)
                else:
                    expected = golden.eval(inputs)
                    simulator.apply_inputs(dict(inputs))
                outputs_to_check = check_outputs if check_outputs is not None else sorted(expected)
                for output in outputs_to_check:
                    total_checks += 1
                    expected_value = expected[output]
                    actual = self._read_output(simulator, output)
                    if not self._matches(actual, expected_value):
                        mismatches.append(
                            Mismatch(
                                step_index=index,
                                output=output,
                                expected=expected_value,
                                actual=actual.to_verilog_literal() if actual is not None else "<missing>",
                                inputs=inputs,
                            )
                        )
                        if len(mismatches) >= self.max_mismatches:
                            raise _EarlyStop()
        except _EarlyStop:
            pass
        except VerilogError as exc:
            return TestbenchResult(
                passed=False, total_checks=total_checks, mismatches=mismatches, error=str(exc)
            )

        return TestbenchResult(
            passed=not mismatches and total_checks > 0,
            total_checks=total_checks,
            mismatches=mismatches,
        )

    # ------------------------------------------------------------------ helpers
    def _apply_reset(self, simulator: ModuleSimulator, golden: GoldenModel) -> None:
        if self.reset is None:
            return
        if self.reset.signal not in simulator.signals:
            return
        active = 0 if self.reset.active_low else 1
        inactive = 1 - active
        simulator.apply_inputs({self.reset.signal: active})
        if self.reset.synchronous or True:
            # Hold reset active across a few clock edges so both synchronous and
            # asynchronous implementations observe it.
            for _ in range(self.reset.cycles):
                simulator.apply_inputs({self.clock: 1})
                simulator.apply_inputs({self.clock: 0})
        simulator.apply_inputs({self.reset.signal: inactive})
        golden.reset()

    def _drive_cycle(self, simulator: ModuleSimulator, inputs: dict[str, int]) -> None:
        data_inputs = {name: value for name, value in inputs.items() if name != self.clock}
        if data_inputs:
            simulator.apply_inputs(data_inputs)
        simulator.apply_inputs({self.clock: 1})
        simulator.apply_inputs({self.clock: 0})

    def _read_output(self, simulator: ModuleSimulator, name: str) -> LogicVector | None:
        if name not in simulator.signals:
            return None
        return simulator.get(name)

    def _matches(self, actual: LogicVector | None, expected: int) -> bool:
        if actual is None:
            return False
        if actual.has_unknown:
            return False
        mask = (1 << actual.width) - 1
        return actual.to_int() == (expected & mask)


class BatchTestbenchRunner(TestbenchRunner):
    """Testbench runner that checks combinational DUTs in one batched pass.

    For a purely combinational design and golden model, all stimulus vectors
    become lanes of one :class:`~repro.verilog.simulator.batch.BatchSimulator`
    pass — removing the per-vector Python dispatch that dominates functional
    pass@k scoring.  Sequential designs (or stimulus sequences with inconsistent
    key sets, whose vectors inherit values from prior steps) keep the scalar
    cycle-serial path, which also remains the differential oracle: with
    ``differential=True`` every batched run is re-checked against
    :class:`TestbenchRunner` and a divergence raises ``AssertionError``.
    """

    def __init__(
        self,
        clock: str = "clk",
        reset: ResetSpec | None = None,
        max_mismatches: int = 32,
        differential: bool = False,
        database=None,
        backend: str = "auto",
    ):
        super().__init__(clock=clock, reset=reset, max_mismatches=max_mismatches, database=database)
        self.differential = differential
        #: Forwarded to :class:`BatchSimulator`: ``auto`` rides generated code
        #: when the design supports it, ``interpret`` pins the AST walker.
        self.backend = backend

    def run(
        self,
        dut_source: str,
        golden: GoldenModel,
        stimulus: list[dict[str, int]],
        module_name: str | None = None,
        check_outputs: list[str] | None = None,
    ) -> TestbenchResult:
        compiled = self._compile(dut_source, module_name)
        if isinstance(compiled, TestbenchResult):
            return compiled
        if (
            not self._batchable(golden, stimulus)
            # Edge-triggered registers and inferred latches carry history across
            # serially-applied vectors (e.g. a wrongly clocked answer to a
            # combinational task); independent lanes cannot reproduce that.
            or compiled.has_sequential_processes
            or compiled.has_latch_risk
        ):
            return self._run_scalar(compiled, golden, stimulus, check_outputs)
        result = self._run_batched(compiled, golden, stimulus, check_outputs)
        if self.differential:
            golden.reset()
            scalar = self._run_scalar(compiled, golden, stimulus, check_outputs)
            if scalar.passed != result.passed:
                raise AssertionError(
                    f"batched testbench diverged from the scalar oracle: "
                    f"batch passed={result.passed}, scalar passed={scalar.passed}"
                )
        return result

    # ------------------------------------------------------------------ helpers
    def _batchable(self, golden: GoldenModel, stimulus: list[dict[str, int]]) -> bool:
        if golden.is_sequential or not stimulus:
            return False
        names = set(stimulus[0])
        return all(set(vector) == names for vector in stimulus)

    def _run_batched(
        self,
        compiled,
        golden: GoldenModel,
        stimulus: list[dict[str, int]],
        check_outputs: list[str] | None,
    ) -> TestbenchResult:
        from .batch import BatchSimulator

        try:
            simulator = BatchSimulator(compiled, lanes=len(stimulus), backend=self.backend)
        except VerilogError as exc:
            return TestbenchResult(passed=False, error=str(exc))

        golden.reset()
        mismatches: list[Mismatch] = []
        total_checks = 0
        try:
            expected_per_lane = [golden.eval(dict(vector)) for vector in stimulus]
            inputs = {
                name: [vector[name] for vector in stimulus] for name in stimulus[0]
            }
            simulator.apply_inputs(inputs)
            for index, vector in enumerate(stimulus):
                expected = expected_per_lane[index]
                outputs_to_check = check_outputs if check_outputs is not None else sorted(expected)
                for output in outputs_to_check:
                    total_checks += 1
                    expected_value = expected[output]
                    if output in simulator.signals:
                        actual = simulator.get_lane(output, index)
                    else:
                        actual = None
                    if not self._matches(actual, expected_value):
                        mismatches.append(
                            Mismatch(
                                step_index=index,
                                output=output,
                                expected=expected_value,
                                actual=actual.to_verilog_literal() if actual is not None else "<missing>",
                                inputs=dict(vector),
                            )
                        )
                        if len(mismatches) >= self.max_mismatches:
                            raise _EarlyStop()
        except _EarlyStop:
            pass
        except VerilogError as exc:
            return TestbenchResult(
                passed=False, total_checks=total_checks, mismatches=mismatches, error=str(exc)
            )
        return TestbenchResult(
            passed=not mismatches and total_checks > 0,
            total_checks=total_checks,
            mismatches=mismatches,
        )


class _EarlyStop(Exception):
    """Internal signal used to stop checking after too many mismatches."""


def run_functional_check(
    dut_source: str,
    golden: GoldenModel,
    stimulus: list[dict[str, int]],
    clock: str = "clk",
    reset: ResetSpec | None = None,
    module_name: str | None = None,
    check_outputs: list[str] | None = None,
) -> TestbenchResult:
    """One-call functional check of a DUT against a golden model."""
    runner = TestbenchRunner(clock=clock, reset=reset)
    return runner.run(
        dut_source,
        golden,
        stimulus,
        module_name=module_name,
        check_outputs=check_outputs,
    )
