"""Four-state logic values for the Verilog simulator.

A :class:`LogicVector` models a fixed-width bit vector where every bit is one of
``0``, ``1``, ``x`` (unknown) or ``z`` (high impedance).  Internally two integers
are kept: ``value`` holds the 0/1 payload and ``xz_mask`` marks bits that are
``x``/``z`` (for such bits the corresponding ``value`` bit distinguishes ``x``
(0) from ``z`` (1)).  This mirrors the common two-plane encoding used by real
event-driven simulators.

:class:`BatchVector` is the column-packed batch counterpart used by the batched
simulator (:mod:`repro.verilog.simulator.batch`): one signal value per *lane*
(stimulus), stored transposed so that bit ``j`` of column ``b`` is bit ``b`` of
the signal on lane ``j``.  Word-wide integer operations over columns then
evaluate all lanes at once — the :class:`~repro.logic.bittable.BitTable` trick
lifted to stateful multi-bit RTL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass(frozen=True)
class LogicVector:
    """An immutable four-state bit vector.

    Attributes:
        width: number of bits (>= 1).
        value: bit payload for defined bits; for ``x``/``z`` bits it encodes x (0) or z (1).
        xz_mask: bits set where the vector holds ``x`` or ``z``.
    """

    width: int
    value: int
    xz_mask: int = 0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("LogicVector width must be >= 1")
        object.__setattr__(self, "value", self.value & _mask(self.width))
        object.__setattr__(self, "xz_mask", self.xz_mask & _mask(self.width))

    # ------------------------------------------------------------------ constructors
    @classmethod
    def from_int(cls, value: int, width: int) -> LogicVector:
        """Build a fully-defined vector from a Python integer (two's complement wrap)."""
        return cls(width=width, value=value & _mask(width), xz_mask=0)

    @classmethod
    def unknown(cls, width: int) -> LogicVector:
        """Build an all-``x`` vector."""
        return cls(width=width, value=0, xz_mask=_mask(width))

    @classmethod
    def high_impedance(cls, width: int) -> LogicVector:
        """Build an all-``z`` vector."""
        return cls(width=width, value=_mask(width), xz_mask=_mask(width))

    @classmethod
    def from_string(cls, text: str) -> LogicVector:
        """Build a vector from a binary string such as ``"10x0"`` or ``"4'b10x0"``.

        The string may contain ``0``, ``1``, ``x``, ``z`` and ``_`` characters; a
        Verilog-style ``<width>'b`` prefix is accepted and ignored (width is taken
        from the digits).
        """
        if "'" in text:
            __, __, text = text.partition("'")
            if text[:1].lower() == "b":
                text = text[1:]
        text = text.replace("_", "").strip()
        if not text:
            raise ValueError("empty logic vector string")
        value = 0
        xz_mask = 0
        for char in text:
            value <<= 1
            xz_mask <<= 1
            if char == "1":
                value |= 1
            elif char == "0":
                pass
            elif char in "xX":
                xz_mask |= 1
            elif char in "zZ?":
                xz_mask |= 1
                value |= 1
            else:
                raise ValueError(f"invalid logic character {char!r}")
        return cls(width=len(text), value=value, xz_mask=xz_mask)

    # ------------------------------------------------------------------ queries
    @property
    def is_fully_defined(self) -> bool:
        """``True`` when no bit is ``x`` or ``z``."""
        return self.xz_mask == 0

    @property
    def has_unknown(self) -> bool:
        """``True`` when at least one bit is ``x`` or ``z``."""
        return self.xz_mask != 0

    def to_int(self) -> int:
        """Return the unsigned integer value.

        Raises:
            ValueError: if the vector contains ``x``/``z`` bits.
        """
        if self.xz_mask:
            raise ValueError(f"cannot convert {self.to_verilog_literal()} with x/z bits to int")
        return self.value

    def to_int_or(self, default: int = 0) -> int:
        """Return the integer value treating every ``x``/``z`` bit as 0."""
        if self.xz_mask:
            return self.value & ~self.xz_mask & _mask(self.width)
        return self.value

    def to_signed_int(self) -> int:
        """Interpret the defined bits as a two's-complement signed integer."""
        raw = self.to_int()
        if raw & (1 << (self.width - 1)):
            return raw - (1 << self.width)
        return raw

    def bit(self, index: int) -> str:
        """Return the character ``'0'``, ``'1'``, ``'x'`` or ``'z'`` for bit ``index``."""
        if index < 0 or index >= self.width:
            return "x"
        value_bit = (self.value >> index) & 1
        if (self.xz_mask >> index) & 1:
            return "z" if value_bit else "x"
        return "1" if value_bit else "0"

    def to_binary_string(self) -> str:
        """Return the MSB-first binary string, e.g. ``"10x0"``."""
        return "".join(self.bit(i) for i in reversed(range(self.width)))

    def to_verilog_literal(self) -> str:
        """Return a Verilog-style sized binary literal, e.g. ``"4'b10x0"``."""
        return f"{self.width}'b{self.to_binary_string()}"

    def is_true(self) -> bool | None:
        """Logical truth value: ``True``, ``False`` or ``None`` for unknown.

        A vector is true when at least one defined bit is 1, false when all bits
        are defined 0, and unknown otherwise.
        """
        defined_ones = self.value & ~self.xz_mask & _mask(self.width)
        if defined_ones:
            return True
        if self.xz_mask:
            return None
        return False

    # ------------------------------------------------------------------ manipulation
    def resized(self, width: int) -> LogicVector:
        """Return this vector zero-extended or truncated to ``width`` bits."""
        if width == self.width:
            return self
        return LogicVector(width=width, value=self.value, xz_mask=self.xz_mask)

    def sign_extended(self, width: int) -> LogicVector:
        """Return this vector sign-extended (by its MSB) to ``width`` bits."""
        if width <= self.width:
            return self.resized(width)
        msb_value = (self.value >> (self.width - 1)) & 1
        msb_xz = (self.xz_mask >> (self.width - 1)) & 1
        extension = _mask(width) ^ _mask(self.width)
        value = self.value | (extension if msb_value else 0)
        xz_mask = self.xz_mask | (extension if msb_xz else 0)
        return LogicVector(width=width, value=value, xz_mask=xz_mask)

    def slice(self, msb: int, lsb: int) -> LogicVector:
        """Return bits ``[msb:lsb]`` as a new vector (out-of-range bits become x)."""
        if msb < lsb:
            msb, lsb = lsb, msb
        width = msb - lsb + 1
        value = 0
        xz_mask = 0
        for offset in range(width):
            index = lsb + offset
            if 0 <= index < self.width:
                value |= ((self.value >> index) & 1) << offset
                xz_mask |= ((self.xz_mask >> index) & 1) << offset
            else:
                xz_mask |= 1 << offset
        return LogicVector(width=width, value=value, xz_mask=xz_mask)

    def replaced(self, msb: int, lsb: int, replacement: LogicVector) -> LogicVector:
        """Return a copy with bits ``[msb:lsb]`` replaced by ``replacement``."""
        if msb < lsb:
            msb, lsb = lsb, msb
        width = msb - lsb + 1
        replacement = replacement.resized(width)
        value = self.value
        xz_mask = self.xz_mask
        for offset in range(width):
            index = lsb + offset
            if index < 0 or index >= self.width:
                continue
            bit_value = (replacement.value >> offset) & 1
            bit_xz = (replacement.xz_mask >> offset) & 1
            value = (value & ~(1 << index)) | (bit_value << index)
            xz_mask = (xz_mask & ~(1 << index)) | (bit_xz << index)
        return LogicVector(width=self.width, value=value, xz_mask=xz_mask)

    def concat(self, other: LogicVector) -> LogicVector:
        """Return ``{self, other}`` (self occupies the most-significant bits)."""
        return LogicVector(
            width=self.width + other.width,
            value=(self.value << other.width) | other.value,
            xz_mask=(self.xz_mask << other.width) | other.xz_mask,
        )

    def __str__(self) -> str:
        return self.to_verilog_literal()


def concat_all(parts: list[LogicVector]) -> LogicVector:
    """Concatenate parts MSB-first (``parts[0]`` ends up most significant)."""
    if not parts:
        raise ValueError("cannot concatenate an empty list")
    result = parts[0]
    for part in parts[1:]:
        result = result.concat(part)
    return result


# --------------------------------------------------------------------------- batch values
@dataclass(frozen=True)
class BatchVector:
    """A four-state bit vector replicated over ``lanes`` independent stimuli.

    Storage is *transposed* relative to a list of :class:`LogicVector`: column
    ``b`` packs bit ``b`` of every lane into one integer (bit ``j`` of
    ``value_cols[b]`` is the 0/1 payload of lane ``j``; ``xz_cols[b]`` marks the
    lanes whose bit ``b`` is ``x``/``z``, with the value bit distinguishing x(0)
    from z(1) exactly as in :class:`LogicVector`).
    """

    width: int
    lanes: int
    value_cols: tuple[int, ...]
    xz_cols: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("BatchVector width must be >= 1")
        if self.lanes < 1:
            raise ValueError("BatchVector must have at least one lane")
        if len(self.value_cols) != self.width or len(self.xz_cols) != self.width:
            raise ValueError("column count must equal the vector width")

    # ------------------------------------------------------------------ constructors
    @classmethod
    def from_vectors(cls, vectors: Sequence[LogicVector], width: int | None = None) -> "BatchVector":
        """Pack one :class:`LogicVector` per lane into columns."""
        if not vectors:
            raise ValueError("cannot build a BatchVector from zero lanes")
        if width is None:
            width = max(vector.width for vector in vectors)
        resized = [vector.resized(width) for vector in vectors]
        value_cols = []
        xz_cols = []
        for bit in range(width):
            value = 0
            xz = 0
            for lane, vector in enumerate(resized):
                value |= ((vector.value >> bit) & 1) << lane
                xz |= ((vector.xz_mask >> bit) & 1) << lane
            value_cols.append(value)
            xz_cols.append(xz)
        return cls(width=width, lanes=len(vectors), value_cols=tuple(value_cols), xz_cols=tuple(xz_cols))

    @classmethod
    def from_ints(cls, values: Iterable[int], width: int) -> "BatchVector":
        """Pack one fully-defined integer per lane (two's complement wrap)."""
        return cls.from_vectors([LogicVector.from_int(value, width) for value in values], width)

    @classmethod
    def broadcast(cls, vector: LogicVector, lanes: int) -> "BatchVector":
        """Replicate one scalar value across every lane."""
        if lanes < 1:
            raise ValueError("BatchVector must have at least one lane")
        lane_mask = _mask(lanes)
        value_cols = tuple(lane_mask if (vector.value >> bit) & 1 else 0 for bit in range(vector.width))
        xz_cols = tuple(lane_mask if (vector.xz_mask >> bit) & 1 else 0 for bit in range(vector.width))
        return cls(width=vector.width, lanes=lanes, value_cols=value_cols, xz_cols=xz_cols)

    @classmethod
    def unknown(cls, width: int, lanes: int) -> "BatchVector":
        """An all-``x`` batch (every bit of every lane unknown)."""
        return cls.broadcast(LogicVector.unknown(width), lanes)

    # ------------------------------------------------------------------ queries
    @property
    def lane_mask(self) -> int:
        """Mask with one bit set per lane."""
        return _mask(self.lanes)

    def lane(self, index: int) -> LogicVector:
        """Extract lane ``index`` back into a scalar :class:`LogicVector`."""
        if not 0 <= index < self.lanes:
            raise IndexError(f"lane {index} out of range for {self.lanes} lanes")
        value = 0
        xz = 0
        for bit in range(self.width):
            value |= ((self.value_cols[bit] >> index) & 1) << bit
            xz |= ((self.xz_cols[bit] >> index) & 1) << bit
        return LogicVector(width=self.width, value=value, xz_mask=xz)

    def to_vectors(self) -> list[LogicVector]:
        """Unpack every lane (inverse of :meth:`from_vectors`)."""
        return [self.lane(index) for index in range(self.lanes)]

    def unknown_lanes(self) -> int:
        """Mask of lanes holding at least one ``x``/``z`` bit."""
        mask = 0
        for column in self.xz_cols:
            mask |= column
        return mask

    def uniform_value(self) -> LogicVector | None:
        """The shared scalar value if every lane is identical, else ``None``."""
        full = self.lane_mask
        value = 0
        xz = 0
        for bit in range(self.width):
            v, x = self.value_cols[bit], self.xz_cols[bit]
            if v not in (0, full) or x not in (0, full):
                return None
            value |= (1 if v else 0) << bit
            xz |= (1 if x else 0) << bit
        return LogicVector(width=self.width, value=value, xz_mask=xz)

    # ------------------------------------------------------------------ manipulation
    def resized(self, width: int) -> "BatchVector":
        """Zero-extend or truncate every lane to ``width`` bits."""
        if width == self.width:
            return self
        if width < self.width:
            return BatchVector(
                width=width,
                lanes=self.lanes,
                value_cols=self.value_cols[:width],
                xz_cols=self.xz_cols[:width],
            )
        pad = (0,) * (width - self.width)
        return BatchVector(
            width=width,
            lanes=self.lanes,
            value_cols=self.value_cols + pad,
            xz_cols=self.xz_cols + pad,
        )

    def select_lanes(self, mask: int, other: "BatchVector") -> "BatchVector":
        """Per-lane merge: this value on lanes in ``mask``, ``other`` elsewhere.

        Both operands must share width and lane count (resize first).
        """
        if other.width != self.width or other.lanes != self.lanes:
            raise ValueError("select_lanes requires matching width and lane count")
        keep = ~mask
        value_cols = tuple(
            (self.value_cols[bit] & mask) | (other.value_cols[bit] & keep) for bit in range(self.width)
        )
        xz_cols = tuple(
            (self.xz_cols[bit] & mask) | (other.xz_cols[bit] & keep) for bit in range(self.width)
        )
        return BatchVector(width=self.width, lanes=self.lanes, value_cols=value_cols, xz_cols=xz_cols)

    def slice(self, msb: int, lsb: int) -> "BatchVector":
        """Bits ``[msb:lsb]`` of every lane (out-of-range bits become x)."""
        if msb < lsb:
            msb, lsb = lsb, msb
        full = self.lane_mask
        value_cols = []
        xz_cols = []
        for index in range(lsb, msb + 1):
            if 0 <= index < self.width:
                value_cols.append(self.value_cols[index])
                xz_cols.append(self.xz_cols[index])
            else:
                value_cols.append(0)
                xz_cols.append(full)
        return BatchVector(
            width=msb - lsb + 1, lanes=self.lanes, value_cols=tuple(value_cols), xz_cols=tuple(xz_cols)
        )

    def replaced(self, msb: int, lsb: int, replacement: "BatchVector", mask: int | None = None) -> "BatchVector":
        """Copy with bits ``[msb:lsb]`` replaced by ``replacement`` on ``mask`` lanes."""
        if msb < lsb:
            msb, lsb = lsb, msb
        if mask is None:
            mask = self.lane_mask
        replacement = replacement.resized(msb - lsb + 1)
        value_cols = list(self.value_cols)
        xz_cols = list(self.xz_cols)
        for offset in range(replacement.width):
            index = lsb + offset
            if index < 0 or index >= self.width:
                continue
            keep = ~mask
            value_cols[index] = (value_cols[index] & keep) | (replacement.value_cols[offset] & mask)
            xz_cols[index] = (xz_cols[index] & keep) | (replacement.xz_cols[offset] & mask)
        return BatchVector(width=self.width, lanes=self.lanes, value_cols=tuple(value_cols), xz_cols=tuple(xz_cols))

    def concat(self, other: "BatchVector") -> "BatchVector":
        """Per-lane ``{self, other}`` (self occupies the most-significant bits)."""
        if other.lanes != self.lanes:
            raise ValueError("concat requires matching lane counts")
        return BatchVector(
            width=self.width + other.width,
            lanes=self.lanes,
            value_cols=other.value_cols + self.value_cols,
            xz_cols=other.xz_cols + self.xz_cols,
        )

    def __str__(self) -> str:
        shown = ", ".join(str(self.lane(index)) for index in range(min(self.lanes, 4)))
        more = f", ... {self.lanes - 4} more" if self.lanes > 4 else ""
        return f"BatchVector[{shown}{more}]"


def batch_concat_all(parts: Sequence[BatchVector]) -> BatchVector:
    """Concatenate batch parts MSB-first (``parts[0]`` most significant)."""
    if not parts:
        raise ValueError("cannot concatenate an empty list")
    result = parts[0]
    for part in parts[1:]:
        result = result.concat(part)
    return result
