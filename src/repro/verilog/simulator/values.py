"""Four-state logic values for the Verilog simulator.

A :class:`LogicVector` models a fixed-width bit vector where every bit is one of
``0``, ``1``, ``x`` (unknown) or ``z`` (high impedance).  Internally two integers
are kept: ``value`` holds the 0/1 payload and ``xz_mask`` marks bits that are
``x``/``z`` (for such bits the corresponding ``value`` bit distinguishes ``x``
(0) from ``z`` (1)).  This mirrors the common two-plane encoding used by real
event-driven simulators.
"""

from __future__ import annotations

from dataclasses import dataclass


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass(frozen=True)
class LogicVector:
    """An immutable four-state bit vector.

    Attributes:
        width: number of bits (>= 1).
        value: bit payload for defined bits; for ``x``/``z`` bits it encodes x (0) or z (1).
        xz_mask: bits set where the vector holds ``x`` or ``z``.
    """

    width: int
    value: int
    xz_mask: int = 0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("LogicVector width must be >= 1")
        object.__setattr__(self, "value", self.value & _mask(self.width))
        object.__setattr__(self, "xz_mask", self.xz_mask & _mask(self.width))

    # ------------------------------------------------------------------ constructors
    @classmethod
    def from_int(cls, value: int, width: int) -> LogicVector:
        """Build a fully-defined vector from a Python integer (two's complement wrap)."""
        return cls(width=width, value=value & _mask(width), xz_mask=0)

    @classmethod
    def unknown(cls, width: int) -> LogicVector:
        """Build an all-``x`` vector."""
        return cls(width=width, value=0, xz_mask=_mask(width))

    @classmethod
    def high_impedance(cls, width: int) -> LogicVector:
        """Build an all-``z`` vector."""
        return cls(width=width, value=_mask(width), xz_mask=_mask(width))

    @classmethod
    def from_string(cls, text: str) -> LogicVector:
        """Build a vector from a binary string such as ``"10x0"`` or ``"4'b10x0"``.

        The string may contain ``0``, ``1``, ``x``, ``z`` and ``_`` characters; a
        Verilog-style ``<width>'b`` prefix is accepted and ignored (width is taken
        from the digits).
        """
        if "'" in text:
            __, __, text = text.partition("'")
            if text[:1].lower() == "b":
                text = text[1:]
        text = text.replace("_", "").strip()
        if not text:
            raise ValueError("empty logic vector string")
        value = 0
        xz_mask = 0
        for char in text:
            value <<= 1
            xz_mask <<= 1
            if char == "1":
                value |= 1
            elif char == "0":
                pass
            elif char in "xX":
                xz_mask |= 1
            elif char in "zZ?":
                xz_mask |= 1
                value |= 1
            else:
                raise ValueError(f"invalid logic character {char!r}")
        return cls(width=len(text), value=value, xz_mask=xz_mask)

    # ------------------------------------------------------------------ queries
    @property
    def is_fully_defined(self) -> bool:
        """``True`` when no bit is ``x`` or ``z``."""
        return self.xz_mask == 0

    @property
    def has_unknown(self) -> bool:
        """``True`` when at least one bit is ``x`` or ``z``."""
        return self.xz_mask != 0

    def to_int(self) -> int:
        """Return the unsigned integer value.

        Raises:
            ValueError: if the vector contains ``x``/``z`` bits.
        """
        if self.xz_mask:
            raise ValueError(f"cannot convert {self.to_verilog_literal()} with x/z bits to int")
        return self.value

    def to_int_or(self, default: int = 0) -> int:
        """Return the integer value treating every ``x``/``z`` bit as 0."""
        if self.xz_mask:
            return self.value & ~self.xz_mask & _mask(self.width)
        return self.value

    def to_signed_int(self) -> int:
        """Interpret the defined bits as a two's-complement signed integer."""
        raw = self.to_int()
        if raw & (1 << (self.width - 1)):
            return raw - (1 << self.width)
        return raw

    def bit(self, index: int) -> str:
        """Return the character ``'0'``, ``'1'``, ``'x'`` or ``'z'`` for bit ``index``."""
        if index < 0 or index >= self.width:
            return "x"
        value_bit = (self.value >> index) & 1
        if (self.xz_mask >> index) & 1:
            return "z" if value_bit else "x"
        return "1" if value_bit else "0"

    def to_binary_string(self) -> str:
        """Return the MSB-first binary string, e.g. ``"10x0"``."""
        return "".join(self.bit(i) for i in reversed(range(self.width)))

    def to_verilog_literal(self) -> str:
        """Return a Verilog-style sized binary literal, e.g. ``"4'b10x0"``."""
        return f"{self.width}'b{self.to_binary_string()}"

    def is_true(self) -> bool | None:
        """Logical truth value: ``True``, ``False`` or ``None`` for unknown.

        A vector is true when at least one defined bit is 1, false when all bits
        are defined 0, and unknown otherwise.
        """
        defined_ones = self.value & ~self.xz_mask & _mask(self.width)
        if defined_ones:
            return True
        if self.xz_mask:
            return None
        return False

    # ------------------------------------------------------------------ manipulation
    def resized(self, width: int) -> LogicVector:
        """Return this vector zero-extended or truncated to ``width`` bits."""
        if width == self.width:
            return self
        return LogicVector(width=width, value=self.value, xz_mask=self.xz_mask)

    def sign_extended(self, width: int) -> LogicVector:
        """Return this vector sign-extended (by its MSB) to ``width`` bits."""
        if width <= self.width:
            return self.resized(width)
        msb_value = (self.value >> (self.width - 1)) & 1
        msb_xz = (self.xz_mask >> (self.width - 1)) & 1
        extension = _mask(width) ^ _mask(self.width)
        value = self.value | (extension if msb_value else 0)
        xz_mask = self.xz_mask | (extension if msb_xz else 0)
        return LogicVector(width=width, value=value, xz_mask=xz_mask)

    def slice(self, msb: int, lsb: int) -> LogicVector:
        """Return bits ``[msb:lsb]`` as a new vector (out-of-range bits become x)."""
        if msb < lsb:
            msb, lsb = lsb, msb
        width = msb - lsb + 1
        value = 0
        xz_mask = 0
        for offset in range(width):
            index = lsb + offset
            if 0 <= index < self.width:
                value |= ((self.value >> index) & 1) << offset
                xz_mask |= ((self.xz_mask >> index) & 1) << offset
            else:
                xz_mask |= 1 << offset
        return LogicVector(width=width, value=value, xz_mask=xz_mask)

    def replaced(self, msb: int, lsb: int, replacement: LogicVector) -> LogicVector:
        """Return a copy with bits ``[msb:lsb]`` replaced by ``replacement``."""
        if msb < lsb:
            msb, lsb = lsb, msb
        width = msb - lsb + 1
        replacement = replacement.resized(width)
        value = self.value
        xz_mask = self.xz_mask
        for offset in range(width):
            index = lsb + offset
            if index < 0 or index >= self.width:
                continue
            bit_value = (replacement.value >> offset) & 1
            bit_xz = (replacement.xz_mask >> offset) & 1
            value = (value & ~(1 << index)) | (bit_value << index)
            xz_mask = (xz_mask & ~(1 << index)) | (bit_xz << index)
        return LogicVector(width=self.width, value=value, xz_mask=xz_mask)

    def concat(self, other: LogicVector) -> LogicVector:
        """Return ``{self, other}`` (self occupies the most-significant bits)."""
        return LogicVector(
            width=self.width + other.width,
            value=(self.value << other.width) | other.value,
            xz_mask=(self.xz_mask << other.width) | other.xz_mask,
        )

    def __str__(self) -> str:
        return self.to_verilog_literal()


def concat_all(parts: list[LogicVector]) -> LogicVector:
    """Concatenate parts MSB-first (``parts[0]`` ends up most significant)."""
    if not parts:
        raise ValueError("cannot concatenate an empty list")
    result = parts[0]
    for part in parts[1:]:
        result = result.concat(part)
    return result
