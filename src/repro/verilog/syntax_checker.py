"""Syntax and semantic checking for Verilog source.

This module plays the role of the "industry-standard Verilog compiler" the paper
uses in two places:

* step 8 of the K-dataset flow — filtering out instruction-code pairs whose code
  does not compile; and
* the *syntax pass@k* metric reported for RTLLM v1.1.

The checker runs the lexer and parser and then performs a set of semantic checks
(undeclared identifiers, port-direction violations, procedural assignment to nets,
continuous assignment to variables, duplicate declarations, missing module ports).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as ast
from .errors import VerilogError


@dataclass
class Diagnostic:
    """A single compiler message."""

    severity: str  # "error" or "warning"
    message: str
    line: int | None = None

    def __str__(self) -> str:
        location = f" (line {self.line})" if self.line is not None else ""
        return f"{self.severity}: {self.message}{location}"


@dataclass
class CompileResult:
    """Outcome of checking a piece of Verilog source."""

    ok: bool
    errors: list[Diagnostic] = field(default_factory=list)
    warnings: list[Diagnostic] = field(default_factory=list)
    source_file: ast.SourceFile | None = None

    @property
    def error_messages(self) -> list[str]:
        """Plain-string error messages, convenient for logging and tests."""
        return [str(diag) for diag in self.errors]


class SyntaxChecker:
    """Compile-check Verilog source text.

    Results are memoised per source hash in the (default)
    :class:`~repro.verilog.design.DesignDatabase`: the parse tier is shared
    with the simulators (compile once, check and simulate from the same AST)
    and full :class:`CompileResult` objects — including failures — are
    negative-cached, so re-checking a repeated candidate is one dict lookup.
    """

    def __init__(self, database=None):
        self.database = database

    def _database(self):
        from .design import get_default_database

        return self.database if self.database is not None else get_default_database()

    def check(self, source: str) -> CompileResult:
        """Lex, parse and semantically check ``source`` (memoised)."""
        database = self._database()
        cached = database.cached_check(source)
        if isinstance(cached, CompileResult):
            return cached
        result = self._check_uncached(source, database)
        database.store_check(source, result)
        return result

    def _check_uncached(self, source: str, database) -> CompileResult:
        try:
            design = database.parse(source)
        except VerilogError as exc:
            return CompileResult(
                ok=False,
                errors=[Diagnostic("error", exc.message, exc.line)],
            )
        errors: list[Diagnostic] = []
        warnings: list[Diagnostic] = []
        if not design.modules:
            errors.append(Diagnostic("error", "source contains no module definition"))
        seen_modules: set[str] = set()
        for module in design.modules:
            if module.name in seen_modules:
                errors.append(Diagnostic("error", f"duplicate module name {module.name!r}"))
            seen_modules.add(module.name)
            module_errors, module_warnings = self._check_module(module)
            errors.extend(module_errors)
            warnings.extend(module_warnings)
        return CompileResult(ok=not errors, errors=errors, warnings=warnings, source_file=design)

    # ------------------------------------------------------------------ module checks
    def _check_module(self, module: ast.Module) -> tuple[list[Diagnostic], list[Diagnostic]]:
        errors: list[Diagnostic] = []
        warnings: list[Diagnostic] = []

        declared = self._collect_declared_names(module)
        port_directions: dict[str, ast.PortDirection | None] = {
            port.name: port.direction for port in module.ports
        }
        for item in module.items:
            if isinstance(item, ast.PortDeclaration):
                for name in item.names:
                    if name in port_directions:
                        port_directions[name] = item.direction

        # Every port must end up with a direction.
        for port_name, direction in port_directions.items():
            if direction is None:
                errors.append(
                    Diagnostic("error", f"port {port_name!r} has no direction declaration")
                )

        # Duplicate declarations.
        duplicate_check: set[str] = set()
        for name in self._iter_declared_names(module):
            if name in duplicate_check:
                errors.append(Diagnostic("error", f"identifier {name!r} declared more than once"))
            duplicate_check.add(name)

        reg_names = self._collect_reg_names(module)

        for item in module.items:
            if isinstance(item, ast.ContinuousAssign):
                errors.extend(self._check_expression(item.value, declared, module.name))
                errors.extend(self._check_expression(item.target, declared, module.name))
                target_name = _base_name(item.target)
                if target_name is not None and target_name in reg_names:
                    errors.append(
                        Diagnostic(
                            "error",
                            f"continuous assignment to reg {target_name!r} in module {module.name!r}",
                        )
                    )
                if target_name is not None and port_directions.get(target_name) is ast.PortDirection.INPUT:
                    errors.append(
                        Diagnostic("error", f"assignment to input port {target_name!r}")
                    )
            elif isinstance(item, ast.AlwaysBlock):
                errors.extend(
                    self._check_statement(item.body, declared, reg_names, port_directions, module.name)
                )
                if not item.sensitivity:
                    warnings.append(
                        Diagnostic(
                            "warning",
                            f"always block without sensitivity list in module {module.name!r}",
                        )
                    )
            elif isinstance(item, ast.InitialBlock):
                errors.extend(
                    self._check_statement(item.body, declared, reg_names, port_directions, module.name)
                )
            elif isinstance(item, ast.ModuleInstance):
                for connection in item.connections:
                    if connection.expression is not None:
                        errors.extend(
                            self._check_expression(connection.expression, declared, module.name)
                        )
        return errors, warnings

    # ------------------------------------------------------------------ name collection
    def _collect_declared_names(self, module: ast.Module) -> set[str]:
        names: set[str] = set(module.port_names())
        names.update(module.parameters.keys())
        for item in module.items:
            if isinstance(item, ast.NetDeclaration):
                names.update(item.names)
            elif isinstance(item, ast.PortDeclaration):
                names.update(item.names)
            elif isinstance(item, ast.ParameterDeclaration):
                names.update(item.names.keys())
            elif isinstance(item, ast.GenvarDeclaration):
                names.update(item.names)
            elif isinstance(item, ast.FunctionDeclaration):
                names.add(item.name)
                for decl in item.inputs:
                    names.update(decl.names)
                for decl in item.locals:
                    names.update(decl.names)
        return names

    def _iter_declared_names(self, module: ast.Module):
        for item in module.items:
            if isinstance(item, ast.NetDeclaration):
                yield from item.names
            elif isinstance(item, ast.ParameterDeclaration):
                yield from item.names.keys()

    def _collect_reg_names(self, module: ast.Module) -> set[str]:
        regs: set[str] = set()
        for port in module.ports:
            if port.net_type in (ast.NetType.REG, ast.NetType.INTEGER):
                regs.add(port.name)
        for item in module.items:
            if isinstance(item, ast.NetDeclaration) and item.net_type in (
                ast.NetType.REG,
                ast.NetType.INTEGER,
            ):
                regs.update(item.names)
            elif isinstance(item, ast.PortDeclaration) and item.net_type is ast.NetType.REG:
                regs.update(item.names)
        return regs

    # ------------------------------------------------------------------ statement / expression checks
    def _check_statement(
        self,
        statement: ast.Statement | None,
        declared: set[str],
        reg_names: set[str],
        port_directions: dict[str, ast.PortDirection | None],
        module_name: str,
    ) -> list[Diagnostic]:
        if statement is None or isinstance(statement, ast.NullStatement):
            return []
        errors: list[Diagnostic] = []
        if isinstance(statement, ast.Block):
            for inner in statement.statements:
                errors.extend(
                    self._check_statement(inner, declared, reg_names, port_directions, module_name)
                )
        elif isinstance(statement, (ast.BlockingAssign, ast.NonBlockingAssign)):
            errors.extend(self._check_expression(statement.value, declared, module_name))
            errors.extend(self._check_expression(statement.target, declared, module_name))
            target_name = _base_name(statement.target)
            if target_name is not None:
                if port_directions.get(target_name) is ast.PortDirection.INPUT:
                    errors.append(
                        Diagnostic("error", f"assignment to input port {target_name!r}")
                    )
                elif target_name in declared and target_name not in reg_names:
                    errors.append(
                        Diagnostic(
                            "error",
                            f"procedural assignment to wire {target_name!r} in module {module_name!r}"
                            " (declare it as reg)",
                        )
                    )
        elif isinstance(statement, ast.IfStatement):
            errors.extend(self._check_expression(statement.condition, declared, module_name))
            errors.extend(
                self._check_statement(statement.then_branch, declared, reg_names, port_directions, module_name)
            )
            errors.extend(
                self._check_statement(statement.else_branch, declared, reg_names, port_directions, module_name)
            )
        elif isinstance(statement, ast.CaseStatement):
            errors.extend(self._check_expression(statement.subject, declared, module_name))
            for item in statement.items:
                for expression in item.expressions:
                    errors.extend(self._check_expression(expression, declared, module_name))
                errors.extend(
                    self._check_statement(item.body, declared, reg_names, port_directions, module_name)
                )
        elif isinstance(statement, ast.ForLoop):
            errors.extend(
                self._check_statement(statement.init, declared, reg_names, port_directions, module_name)
            )
            errors.extend(self._check_expression(statement.condition, declared, module_name))
            errors.extend(
                self._check_statement(statement.step, declared, reg_names, port_directions, module_name)
            )
            errors.extend(
                self._check_statement(statement.body, declared, reg_names, port_directions, module_name)
            )
        elif isinstance(statement, (ast.WhileLoop, ast.RepeatLoop)):
            condition = statement.condition if isinstance(statement, ast.WhileLoop) else statement.count
            errors.extend(self._check_expression(condition, declared, module_name))
            errors.extend(
                self._check_statement(statement.body, declared, reg_names, port_directions, module_name)
            )
        elif isinstance(statement, (ast.DelayStatement, ast.EventWait)):
            errors.extend(
                self._check_statement(statement.body, declared, reg_names, port_directions, module_name)
            )
        elif isinstance(statement, ast.SystemTaskCall):
            for argument in statement.args:
                if not isinstance(argument, ast.StringLiteral):
                    errors.extend(self._check_expression(argument, declared, module_name))
        return errors

    def _check_expression(
        self, expression: ast.Expression, declared: set[str], module_name: str
    ) -> list[Diagnostic]:
        errors: list[Diagnostic] = []
        for name in _iter_identifiers(expression):
            if name not in declared:
                errors.append(
                    Diagnostic(
                        "error",
                        f"identifier {name!r} is not declared in module {module_name!r}",
                    )
                )
        return errors


def _base_name(expression: ast.Expression) -> str | None:
    """Return the root identifier of an lvalue expression, or ``None``."""
    if isinstance(expression, ast.Identifier):
        return expression.name
    if isinstance(expression, (ast.BitSelect, ast.PartSelect)):
        return _base_name(expression.target)
    return None


def _iter_identifiers(expression: ast.Expression):
    """Yield every identifier name referenced by ``expression``."""
    if isinstance(expression, ast.Identifier):
        yield expression.name
    elif isinstance(expression, ast.UnaryOp):
        yield from _iter_identifiers(expression.operand)
    elif isinstance(expression, ast.BinaryOp):
        yield from _iter_identifiers(expression.left)
        yield from _iter_identifiers(expression.right)
    elif isinstance(expression, ast.Ternary):
        yield from _iter_identifiers(expression.condition)
        yield from _iter_identifiers(expression.if_true)
        yield from _iter_identifiers(expression.if_false)
    elif isinstance(expression, ast.Concat):
        for part in expression.parts:
            yield from _iter_identifiers(part)
    elif isinstance(expression, ast.Replication):
        yield from _iter_identifiers(expression.count)
        yield from _iter_identifiers(expression.value)
    elif isinstance(expression, ast.BitSelect):
        yield from _iter_identifiers(expression.target)
        yield from _iter_identifiers(expression.index)
    elif isinstance(expression, ast.PartSelect):
        yield from _iter_identifiers(expression.target)
        yield from _iter_identifiers(expression.msb)
        yield from _iter_identifiers(expression.lsb)
    elif isinstance(expression, ast.FunctionCall):
        for argument in expression.args:
            yield from _iter_identifiers(argument)


def check_source(source: str) -> CompileResult:
    """Compile-check Verilog source text (module-level convenience API)."""
    return SyntaxChecker().check(source)


def compiles(source: str) -> bool:
    """Return ``True`` when the source lexes, parses and passes semantic checks."""
    return check_source(source).ok
