"""Token definitions for the Verilog-2001 lexer.

The lexer/parser pair in :mod:`repro.verilog` targets the synthesizable subset of
Verilog-2001 that HDL engineers use for the module classes covered by the HaVen
paper (FSMs, counters, shift registers, ALUs, clock dividers, combinational
logic) plus the constructs needed for dataset verification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    SYSTEM_IDENTIFIER = "system_identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


#: Reserved words recognised by the lexer.  This intentionally covers more than the
#: parser accepts so that misuse of a reserved word is reported as a syntax error
#: rather than silently treated as an identifier.
KEYWORDS = frozenset(
    {
        "module",
        "endmodule",
        "input",
        "output",
        "inout",
        "wire",
        "reg",
        "integer",
        "real",
        "parameter",
        "localparam",
        "assign",
        "always",
        "initial",
        "begin",
        "end",
        "if",
        "else",
        "case",
        "casez",
        "casex",
        "endcase",
        "default",
        "for",
        "while",
        "repeat",
        "forever",
        "posedge",
        "negedge",
        "or",
        "and",
        "not",
        "nand",
        "nor",
        "xor",
        "xnor",
        "buf",
        "function",
        "endfunction",
        "task",
        "endtask",
        "generate",
        "endgenerate",
        "genvar",
        "signed",
        "unsigned",
        "wait",
        "disable",
        "deassign",
        "force",
        "release",
        "fork",
        "join",
        "specify",
        "endspecify",
        "supply0",
        "supply1",
        "tri",
        "time",
        "event",
        "negedge",
        "defparam",
    }
)

#: Multi-character operators ordered longest-first so that maximal munch works by
#: simple prefix testing.
MULTI_CHAR_OPERATORS = (
    "<<<",
    ">>>",
    "===",
    "!==",
    "**",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "~&",
    "~|",
    "~^",
    "^~",
    "+:",
    "-:",
)

SINGLE_CHAR_OPERATORS = frozenset("+-*/%<>!~&|^=?")

PUNCTUATION = frozenset("()[]{}:;,.#@")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: the lexical category.
        text: the exact source text of the token (numbers keep their base prefix).
        line: 1-based source line of the first character.
        column: 1-based source column of the first character.
    """

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """Return ``True`` when this token is the given reserved word."""
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_op(self, op: str) -> bool:
        """Return ``True`` when this token is the given operator."""
        return self.kind is TokenKind.OPERATOR and self.text == op

    def is_punct(self, punct: str) -> bool:
        """Return ``True`` when this token is the given punctuation character."""
        return self.kind is TokenKind.PUNCTUATION and self.text == punct

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"{self.kind.value}:{self.text!r}@{self.line}:{self.column}"
