"""Emit Verilog source text from an AST.

The writer produces readable, conventionally-formatted Verilog-2001 and is used by
the dataset generators and the simulated CodeGen-LLM to turn structural templates
into concrete code samples.  Round-tripping ``parse → write → parse`` is covered by
the test-suite to keep the emitter and parser in sync.
"""

from __future__ import annotations

from . import ast_nodes as ast

_INDENT = "    "


class VerilogWriter:
    """Pretty-printer for the Verilog AST."""

    def write_source(self, source: ast.SourceFile) -> str:
        """Emit all modules in a source file."""
        return "\n\n".join(self.write_module(module) for module in source.modules) + "\n"

    # ------------------------------------------------------------------ modules
    def write_module(self, module: ast.Module) -> str:
        lines: list[str] = []
        header = f"module {module.name}"
        if module.parameters:
            params = ", ".join(
                f"parameter {name} = {self.write_expression(value)}"
                for name, value in module.parameters.items()
            )
            header += f" #({params})"
        if module.ports:
            port_lines = ",\n".join(_INDENT + self._write_port(port) for port in module.ports)
            header += f" (\n{port_lines}\n)"
        else:
            header += " ()"
        lines.append(header + ";")
        for item in module.items:
            lines.append(self._write_item(item, 1))
        lines.append("endmodule")
        return "\n".join(lines)

    def _write_port(self, port: ast.Port) -> str:
        parts: list[str] = []
        if port.direction is not None:
            parts.append(port.direction.value)
        if port.net_type is not None and port.net_type is not ast.NetType.WIRE:
            parts.append(port.net_type.value)
        if port.signed:
            parts.append("signed")
        if port.range is not None:
            parts.append(self._write_range(port.range))
        parts.append(port.name)
        return " ".join(parts)

    def _write_range(self, rng: ast.Range) -> str:
        return f"[{self.write_expression(rng.msb)}:{self.write_expression(rng.lsb)}]"

    # ------------------------------------------------------------------ items
    def _write_item(self, item: ast.ModuleItem, depth: int) -> str:
        pad = _INDENT * depth
        if isinstance(item, ast.PortDeclaration):
            parts = [item.direction.value]
            if item.net_type is not None:
                parts.append(item.net_type.value)
            if item.signed:
                parts.append("signed")
            if item.range is not None:
                parts.append(self._write_range(item.range))
            return f"{pad}{' '.join(parts)} {', '.join(item.names)};"
        if isinstance(item, ast.NetDeclaration):
            parts = [item.net_type.value]
            if item.signed:
                parts.append("signed")
            if item.range is not None:
                parts.append(self._write_range(item.range))
            declarators = []
            for name in item.names:
                if name in item.initial_values:
                    declarators.append(f"{name} = {self.write_expression(item.initial_values[name])}")
                elif item.array_range is not None:
                    declarators.append(f"{name} {self._write_range(item.array_range)}")
                else:
                    declarators.append(name)
            return f"{pad}{' '.join(parts)} {', '.join(declarators)};"
        if isinstance(item, ast.ParameterDeclaration):
            keyword = "localparam" if item.local else "parameter"
            assignments = ", ".join(
                f"{name} = {self.write_expression(value)}" for name, value in item.names.items()
            )
            return f"{pad}{keyword} {assignments};"
        if isinstance(item, ast.ContinuousAssign):
            return (
                f"{pad}assign {self.write_expression(item.target)} = "
                f"{self.write_expression(item.value)};"
            )
        if isinstance(item, ast.AlwaysBlock):
            sensitivity = self._write_sensitivity(item.sensitivity)
            body = self._write_statement(item.body, depth)
            return f"{pad}always {sensitivity}{body.lstrip()}" if body else f"{pad}always {sensitivity};"
        if isinstance(item, ast.InitialBlock):
            body = self._write_statement(item.body, depth)
            return f"{pad}initial {body.lstrip()}"
        if isinstance(item, ast.GenvarDeclaration):
            return f"{pad}genvar {', '.join(item.names)};"
        if isinstance(item, ast.ModuleInstance):
            return self._write_instance(item, depth)
        if isinstance(item, ast.FunctionDeclaration):
            return self._write_function(item, depth)
        raise TypeError(f"unsupported module item {type(item).__name__}")

    def _write_instance(self, item: ast.ModuleInstance, depth: int) -> str:
        pad = _INDENT * depth
        text = f"{pad}{item.module_name}"
        if item.parameter_overrides:
            text += " #(" + ", ".join(self._write_connection(c) for c in item.parameter_overrides) + ")"
        text += f" {item.instance_name} ("
        text += ", ".join(self._write_connection(c) for c in item.connections)
        text += ");"
        return text

    def _write_connection(self, connection: ast.PortConnection) -> str:
        expression = "" if connection.expression is None else self.write_expression(connection.expression)
        if connection.port is None:
            return expression
        return f".{connection.port}({expression})"

    def _write_function(self, item: ast.FunctionDeclaration, depth: int) -> str:
        pad = _INDENT * depth
        lines = [f"{pad}function {self._write_range(item.range) + ' ' if item.range else ''}{item.name};"]
        for port in item.inputs:
            lines.append(self._write_item(port, depth + 1))
        for local in item.locals:
            lines.append(self._write_item(local, depth + 1))
        lines.append(self._write_statement(item.body, depth + 1))
        lines.append(f"{pad}endfunction")
        return "\n".join(lines)

    def _write_sensitivity(self, sensitivity: list[ast.SensitivityItem]) -> str:
        if not sensitivity:
            return ""
        if len(sensitivity) == 1 and sensitivity[0].edge is ast.EdgeKind.ANY:
            return "@(*) "
        entries = []
        for item in sensitivity:
            signal = self.write_expression(item.signal) if item.signal is not None else "*"
            if item.edge in (ast.EdgeKind.POSEDGE, ast.EdgeKind.NEGEDGE):
                entries.append(f"{item.edge.value} {signal}")
            else:
                entries.append(signal)
        return "@(" + " or ".join(entries) + ") "

    # ------------------------------------------------------------------ statements
    def _write_statement(self, statement: ast.Statement | None, depth: int) -> str:
        pad = _INDENT * depth
        if statement is None or isinstance(statement, ast.NullStatement):
            return f"{pad};"
        if isinstance(statement, ast.Block):
            lines = [f"{pad}begin" + (f" : {statement.name}" if statement.name else "")]
            for inner in statement.statements:
                lines.append(self._write_statement(inner, depth + 1))
            lines.append(f"{pad}end")
            return "\n".join(lines)
        if isinstance(statement, ast.BlockingAssign):
            return f"{pad}{self.write_expression(statement.target)} = {self.write_expression(statement.value)};"
        if isinstance(statement, ast.NonBlockingAssign):
            return f"{pad}{self.write_expression(statement.target)} <= {self.write_expression(statement.value)};"
        if isinstance(statement, ast.IfStatement):
            lines = [f"{pad}if ({self.write_expression(statement.condition)})"]
            lines.append(self._write_statement(statement.then_branch, depth + 1))
            if statement.else_branch is not None:
                lines.append(f"{pad}else")
                lines.append(self._write_statement(statement.else_branch, depth + 1))
            return "\n".join(lines)
        if isinstance(statement, ast.CaseStatement):
            lines = [f"{pad}{statement.kind} ({self.write_expression(statement.subject)})"]
            for item in statement.items:
                if item.is_default:
                    label = "default"
                else:
                    label = ", ".join(self.write_expression(e) for e in item.expressions)
                lines.append(f"{pad}{_INDENT}{label}:")
                lines.append(self._write_statement(item.body, depth + 2))
            lines.append(f"{pad}endcase")
            return "\n".join(lines)
        if isinstance(statement, ast.ForLoop):
            init = (
                f"{self.write_expression(statement.init.target)} = "
                f"{self.write_expression(statement.init.value)}"
            )
            step = (
                f"{self.write_expression(statement.step.target)} = "
                f"{self.write_expression(statement.step.value)}"
            )
            lines = [f"{pad}for ({init}; {self.write_expression(statement.condition)}; {step})"]
            lines.append(self._write_statement(statement.body, depth + 1))
            return "\n".join(lines)
        if isinstance(statement, ast.WhileLoop):
            lines = [f"{pad}while ({self.write_expression(statement.condition)})"]
            lines.append(self._write_statement(statement.body, depth + 1))
            return "\n".join(lines)
        if isinstance(statement, ast.RepeatLoop):
            lines = [f"{pad}repeat ({self.write_expression(statement.count)})"]
            lines.append(self._write_statement(statement.body, depth + 1))
            return "\n".join(lines)
        if isinstance(statement, ast.DelayStatement):
            body = "" if statement.body is None else " " + self._write_statement(statement.body, 0)
            return f"{pad}#{self.write_expression(statement.delay)}{body if body.strip() else ';'}"
        if isinstance(statement, ast.EventWait):
            sensitivity = self._write_sensitivity(statement.events).strip()
            body = ";" if statement.body is None else "\n" + self._write_statement(statement.body, depth + 1)
            return f"{pad}{sensitivity}{body}"
        if isinstance(statement, ast.SystemTaskCall):
            args = ", ".join(self.write_expression(a) for a in statement.args)
            suffix = f"({args})" if statement.args else ""
            return f"{pad}{statement.name}{suffix};"
        raise TypeError(f"unsupported statement {type(statement).__name__}")

    # ------------------------------------------------------------------ expressions
    def write_expression(self, expression: ast.Expression) -> str:
        """Emit an expression with explicit parentheses around nested operators."""
        if isinstance(expression, ast.Identifier):
            return expression.name
        if isinstance(expression, ast.Number):
            return self._write_number(expression)
        if isinstance(expression, ast.StringLiteral):
            return f'"{expression.value}"'
        if isinstance(expression, ast.UnaryOp):
            return f"{expression.op}{self._parenthesize(expression.operand)}"
        if isinstance(expression, ast.BinaryOp):
            left = self._parenthesize(expression.left)
            right = self._parenthesize(expression.right)
            return f"{left} {expression.op} {right}"
        if isinstance(expression, ast.Ternary):
            return (
                f"{self._parenthesize(expression.condition)} ? "
                f"{self._parenthesize(expression.if_true)} : {self._parenthesize(expression.if_false)}"
            )
        if isinstance(expression, ast.Concat):
            return "{" + ", ".join(self.write_expression(p) for p in expression.parts) + "}"
        if isinstance(expression, ast.Replication):
            return "{" + self.write_expression(expression.count) + "{" + self.write_expression(expression.value) + "}}"
        if isinstance(expression, ast.BitSelect):
            return f"{self.write_expression(expression.target)}[{self.write_expression(expression.index)}]"
        if isinstance(expression, ast.PartSelect):
            if expression.mode == ":":
                return (
                    f"{self.write_expression(expression.target)}"
                    f"[{self.write_expression(expression.msb)}:{self.write_expression(expression.lsb)}]"
                )
            return (
                f"{self.write_expression(expression.target)}"
                f"[{self.write_expression(expression.msb)} {expression.mode} {self.write_expression(expression.lsb)}]"
            )
        if isinstance(expression, ast.FunctionCall):
            args = ", ".join(self.write_expression(a) for a in expression.args)
            return f"{expression.name}({args})"
        raise TypeError(f"unsupported expression {type(expression).__name__}")

    def _parenthesize(self, expression: ast.Expression) -> str:
        text = self.write_expression(expression)
        if isinstance(expression, (ast.BinaryOp, ast.Ternary)):
            return f"({text})"
        return text

    def _write_number(self, number: ast.Number) -> str:
        if number.text is not None:
            return number.text
        if number.width is None or number.base is None:
            return str(number.value)
        formatters = {"b": "b", "o": "o", "d": "d", "h": "x"}
        digits = format(number.value, formatters[number.base])
        signed = "s" if number.signed else ""
        return f"{number.width}'{signed}{number.base}{digits}"


def write_module(module: ast.Module) -> str:
    """Convenience wrapper emitting a single module."""
    return VerilogWriter().write_module(module)


def write_source(source: ast.SourceFile) -> str:
    """Convenience wrapper emitting a whole source file."""
    return VerilogWriter().write_source(source)
