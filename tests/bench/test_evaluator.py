"""Tests for the benchmark evaluator (generate → compile → simulate → pass@k)."""

from __future__ import annotations

import pytest

from repro.bench.evaluator import BenchmarkEvaluator, EvaluationConfig, evaluate_models
from repro.core.llm.base import GenerationConfig, GenerationContext, GeneratedSample, LLMBackend
from repro.core.llm.profiles import BASELINE_PROFILES
from repro.core.llm.simulated import SimulatedCodeGenLLM
from repro.core.pipeline import HaVenPipeline


class PerfectBackend(LLMBackend):
    """Always returns the task's reference implementation."""

    name = "Perfect"

    def generate(self, context: GenerationContext, config: GenerationConfig) -> list[GeneratedSample]:
        return [
            GeneratedSample(code=context.reference_source, sample_index=index)
            for index in range(config.num_samples)
        ]


class BrokenBackend(LLMBackend):
    """Always returns code that does not even compile."""

    name = "Broken"

    def generate(self, context: GenerationContext, config: GenerationConfig) -> list[GeneratedSample]:
        return [
            GeneratedSample(code="def module(): pass", sample_index=index)
            for index in range(config.num_samples)
        ]


class WrongButCompilingBackend(LLMBackend):
    """Returns a compiling module whose single output is constantly zero."""

    name = "ConstantZero"

    def generate(self, context: GenerationContext, config: GenerationConfig) -> list[GeneratedSample]:
        ports = []
        for port in context.interface.ports:
            range_text = f"[{port.width - 1}:0] " if port.width > 1 else ""
            ports.append(f"    {port.direction} {range_text}{port.name}")
        body = []
        for port in context.interface.output_ports:
            body.append(f"    assign {port.name} = 0;")
        source = (
            f"module {context.interface.name} (\n" + ",\n".join(ports) + "\n);\n" + "\n".join(body) + "\nendmodule\n"
        )
        return [GeneratedSample(code=source, sample_index=index) for index in range(config.num_samples)]


@pytest.fixture(scope="module")
def config() -> EvaluationConfig:
    return EvaluationConfig(num_samples=2, ks=(1,), temperatures=(0.2,))


class TestEvaluator:
    def test_perfect_backend_scores_100(self, tiny_human_suite, config):
        evaluator = BenchmarkEvaluator(config)
        result = evaluator.evaluate(HaVenPipeline(PerfectBackend(), use_sicot=False), tiny_human_suite)
        assert result.functional_pass_at_k()[1] == pytest.approx(1.0)
        assert result.syntax_pass_at_k()[1] == pytest.approx(1.0)

    def test_broken_backend_scores_0(self, tiny_human_suite, config):
        evaluator = BenchmarkEvaluator(config)
        result = evaluator.evaluate(HaVenPipeline(BrokenBackend(), use_sicot=False), tiny_human_suite)
        assert result.functional_pass_at_k()[1] == pytest.approx(0.0)
        assert result.syntax_pass_at_k()[1] == pytest.approx(0.0)

    def test_wrong_but_compiling_backend_fails_functionally(self, tiny_human_suite, config):
        evaluator = BenchmarkEvaluator(config)
        result = evaluator.evaluate(
            HaVenPipeline(WrongButCompilingBackend(), use_sicot=False), tiny_human_suite
        )
        assert result.syntax_pass_at_k()[1] > 0.9
        assert result.functional_pass_at_k()[1] < 0.3

    def test_simulated_backend_between_extremes(self, tiny_human_suite, config):
        evaluator = BenchmarkEvaluator(config)
        backend = SimulatedCodeGenLLM(BASELINE_PROFILES["origen-deepseek"])
        result = evaluator.evaluate(HaVenPipeline(backend, use_sicot=False), tiny_human_suite)
        value = result.functional_pass_at_k()[1]
        assert 0.0 < value < 1.0

    def test_task_results_populated(self, tiny_human_suite, config):
        evaluator = BenchmarkEvaluator(config)
        result = evaluator.evaluate(HaVenPipeline(PerfectBackend(), use_sicot=False), tiny_human_suite)
        assert len(result.task_results) == len(tiny_human_suite)
        for task_result in result.task_results:
            assert task_result.num_samples == 2
            assert task_result.category

    def test_max_tasks_limits_evaluation(self, tiny_human_suite):
        evaluator = BenchmarkEvaluator(EvaluationConfig(num_samples=1, ks=(1,), temperatures=(0.2,), max_tasks=3))
        result = evaluator.evaluate(HaVenPipeline(PerfectBackend(), use_sicot=False), tiny_human_suite)
        assert len(result.task_results) == 3

    def test_category_breakdown(self, tiny_human_suite, config):
        evaluator = BenchmarkEvaluator(config)
        result = evaluator.evaluate(HaVenPipeline(PerfectBackend(), use_sicot=False), tiny_human_suite)
        by_category = result.by_category()
        assert sum(total for _, total in by_category.values()) == len(tiny_human_suite)
        per_category = result.category_pass_at_1()
        assert all(value == pytest.approx(1.0) for value in per_category.values())

    def test_temperature_sweep_takes_best(self, tiny_human_suite):
        sweep = EvaluationConfig(num_samples=2, ks=(1,), temperatures=(0.2, 0.8))
        single = EvaluationConfig(num_samples=2, ks=(1,), temperatures=(0.2,))
        backend = SimulatedCodeGenLLM(BASELINE_PROFILES["codeqwen-7b"])
        swept = BenchmarkEvaluator(sweep).evaluate(HaVenPipeline(backend, use_sicot=False), tiny_human_suite)
        fixed = BenchmarkEvaluator(single).evaluate(HaVenPipeline(backend, use_sicot=False), tiny_human_suite)
        assert swept.functional_pass_at_k()[1] >= fixed.functional_pass_at_k()[1]

    def test_evaluate_models_helper(self, tiny_human_suite, config):
        pipelines = [HaVenPipeline(PerfectBackend(), use_sicot=False)]
        results = evaluate_models(pipelines, [tiny_human_suite], config)
        assert ("Perfect", tiny_human_suite.name) in results

    def test_failure_examples_recorded(self, tiny_human_suite, config):
        evaluator = BenchmarkEvaluator(config)
        result = evaluator.evaluate(HaVenPipeline(BrokenBackend(), use_sicot=False), tiny_human_suite)
        assert any(task_result.failure_examples for task_result in result.task_results)

    def test_single_temperature_config_helper(self):
        config = EvaluationConfig(temperatures=(0.2, 0.5, 0.8))
        assert config.single_temperature().temperatures == (0.2,)

    def test_batch_and_scalar_runners_agree(self, tiny_human_suite):
        batched = EvaluationConfig(num_samples=2, ks=(1,), temperatures=(0.2,), use_batch_simulator=True)
        scalar = EvaluationConfig(num_samples=2, ks=(1,), temperatures=(0.2,), use_batch_simulator=False)
        backend = SimulatedCodeGenLLM(BASELINE_PROFILES["origen-deepseek"])
        fast = BenchmarkEvaluator(batched).evaluate(HaVenPipeline(backend, use_sicot=False), tiny_human_suite)
        slow = BenchmarkEvaluator(scalar).evaluate(HaVenPipeline(backend, use_sicot=False), tiny_human_suite)
        for fast_task, slow_task in zip(fast.task_results, slow.task_results):
            assert fast_task.num_functional_passes == slow_task.num_functional_passes, fast_task.task_id
            assert fast_task.num_syntax_passes == slow_task.num_syntax_passes

    def test_differential_oracle_mode_runs_clean(self, tiny_human_suite):
        config = EvaluationConfig(
            num_samples=1, ks=(1,), temperatures=(0.2,), max_tasks=4, differential_oracle=True
        )
        evaluator = BenchmarkEvaluator(config)
        result = evaluator.evaluate(HaVenPipeline(PerfectBackend(), use_sicot=False), tiny_human_suite)
        assert result.functional_pass_at_k()[1] == pytest.approx(1.0)

    def test_codegen_and_interpreter_backends_agree(self, tiny_human_suite):
        """Identical verdicts — task by task — under both execution engines."""
        backend = SimulatedCodeGenLLM(BASELINE_PROFILES["origen-deepseek"])

        def sweep(simulator_backend):
            config = EvaluationConfig(
                num_samples=2,
                ks=(1,),
                temperatures=(0.2,),
                simulator_backend=simulator_backend,
            )
            return BenchmarkEvaluator(config).evaluate(
                HaVenPipeline(backend, use_sicot=False), tiny_human_suite
            )

        fast, slow = sweep("auto"), sweep("interpret")
        assert fast.functional_pass_at_k() == slow.functional_pass_at_k()
        for fast_task, slow_task in zip(fast.task_results, slow.task_results):
            assert fast_task.task_id == slow_task.task_id
            assert fast_task.num_functional_passes == slow_task.num_functional_passes
            assert fast_task.num_syntax_passes == slow_task.num_syntax_passes

    def test_codegen_coverage_snapshot(self, tiny_human_suite, config):
        evaluator = BenchmarkEvaluator(config)
        evaluator.evaluate(HaVenPipeline(PerfectBackend(), use_sicot=False), tiny_human_suite)
        coverage = evaluator.codegen_coverage()
        assert set(coverage) == {"total", "reasons", "designs"}
        assert coverage["total"] == sum(coverage["reasons"].values())


class TestAggregationEdgeCases:
    """SuiteResult aggregation over degenerate per-task shapes."""

    def _result(self, counts, ks=(1, 5)):
        from repro.bench.evaluator import SuiteResult, TaskResult

        return SuiteResult(
            suite_name="edge",
            model_name="edge",
            ks=ks,
            task_results=[
                TaskResult(
                    task_id=f"t{i}",
                    category=category,
                    num_samples=n,
                    num_functional_passes=c,
                    num_syntax_passes=c,
                    temperature=0.2,
                )
                for i, (n, c, category) in enumerate(counts)
            ],
        )

    def test_k_exceeding_samples_does_not_raise(self):
        result = self._result([(2, 1, "a"), (2, 2, "b")], ks=(1, 5))
        values = result.functional_pass_at_k()
        assert 0.0 <= values[1] <= values[5] <= 1.0

    def test_zero_sample_tasks_do_not_poison_suite(self):
        result = self._result([(0, 0, "a"), (10, 10, "b")])
        assert result.functional_pass_at_k()[1] == pytest.approx(1.0)

    def test_category_pass_at_1_with_zero_sample_category(self):
        # A category whose only task drew zero samples reports 0.0, not a crash.
        result = self._result([(0, 0, "empty"), (10, 5, "full")])
        per_category = result.category_pass_at_1()
        assert per_category["empty"] == 0.0
        assert per_category["full"] == pytest.approx(0.5)

    def test_empty_suite_aggregates_to_empty(self):
        result = self._result([])
        assert result.functional_pass_at_k() == {1: 0.0, 5: 0.0}
        assert result.category_pass_at_1() == {}
        assert result.by_category() == {}


class TestFormalMode:
    """mode="formal": combinational tasks get complete SAT proofs."""

    def _suite(self):
        from repro.bench.verilogeval import SuiteConfig, build_verilogeval_human

        return build_verilogeval_human(SuiteConfig(num_tasks=6))

    def test_perfect_backend_proves_equivalent(self):
        config = EvaluationConfig(
            num_samples=1, ks=(1,), temperatures=(0.2,), mode="formal"
        )
        result = BenchmarkEvaluator(config).evaluate(
            HaVenPipeline(PerfectBackend(), use_sicot=False), self._suite()
        )
        assert result.functional_pass_at_k()[1] == pytest.approx(1.0)

    def test_wrong_backend_fails_with_counterexample_mismatches(self):
        config = EvaluationConfig(
            num_samples=1, ks=(1,), temperatures=(0.2,), mode="formal"
        )
        result = BenchmarkEvaluator(config).evaluate(
            HaVenPipeline(WrongButCompilingBackend(), use_sicot=False), self._suite()
        )
        assert result.functional_pass_at_k()[1] < 0.3
        # Failures must carry concrete evidence (formal counterexamples for
        # combinational tasks, simulation mismatches for sequential ones).
        failing = [r for r in result.task_results if not r.passed_at_least_once]
        assert failing
        assert any("expected" in example for r in failing for example in r.failure_examples)

    def test_formal_and_simulation_modes_agree(self):
        formal_config = EvaluationConfig(
            num_samples=1, ks=(1,), temperatures=(0.2,), mode="formal"
        )
        simulation_config = EvaluationConfig(
            num_samples=1, ks=(1,), temperatures=(0.2,), mode="simulation"
        )
        suite = self._suite()
        for backend in (PerfectBackend(), WrongButCompilingBackend()):
            formal = BenchmarkEvaluator(formal_config).evaluate(
                HaVenPipeline(backend, use_sicot=False), suite
            )
            simulated = BenchmarkEvaluator(simulation_config).evaluate(
                HaVenPipeline(backend, use_sicot=False), suite
            )
            formal_verdicts = {r.task_id: r.passed_at_least_once for r in formal.task_results}
            simulated_verdicts = {
                r.task_id: r.passed_at_least_once for r in simulated.task_results
            }
            assert formal_verdicts == simulated_verdicts
