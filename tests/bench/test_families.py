"""Tests for the benchmark task families.

The key invariant: every family's *reference implementation* must pass its own
golden model under the task's stimulus — otherwise the benchmark would be
unwinnable even for a perfect model.
"""

from __future__ import annotations

import pytest

from repro.bench import families
from repro.bench.task import BenchmarkTask
from repro.symbolic.detector import SymbolicModality
from repro.verilog.simulator.testbench import TestbenchRunner
from repro.verilog.syntax_checker import check_source

ALL_FAMILIES = [
    families.make_expression_task,
    families.make_truth_table_task,
    families.make_waveform_task,
    families.make_state_diagram_task,
    families.make_counter_task,
    families.make_shift_register_task,
    families.make_register_task,
    families.make_sequence_detector_task,
    families.make_edge_detector_task,
    families.make_clock_divider_task,
    families.make_alu_task,
    families.make_mux_task,
    families.make_decoder_task,
    families.make_adder_task,
    families.make_comparator_task,
    families.make_instructional_logic_task,
]


def _reference_passes(task: BenchmarkTask) -> bool:
    runner = TestbenchRunner(clock=task.clock, reset=task.reset)
    result = runner.run(
        task.reference_source,
        task.golden(),
        task.stimulus(seed=99),
        check_outputs=task.check_outputs,
    )
    return result.passed


class TestReferenceImplementations:
    @pytest.mark.parametrize("builder", ALL_FAMILIES, ids=lambda b: b.__name__)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_reference_compiles_and_matches_golden(self, builder, seed):
        task = builder(f"t_{seed}", "unit", seed, "human")
        assert check_source(task.reference_source).ok, task.task_id
        assert _reference_passes(task), f"{builder.__name__} seed={seed}"

    @pytest.mark.parametrize("builder", ALL_FAMILIES, ids=lambda b: b.__name__)
    def test_task_fields_populated(self, builder):
        task = builder("t_fields", "unit", 7, "human")
        assert task.prompt.text.strip()
        assert task.interface.ports
        assert 0.0 <= task.demands.knowledge <= 1.0
        assert 0.0 <= task.demands.difficulty <= 1.0
        assert task.category


class TestPromptStyles:
    def test_machine_style_phrasing(self):
        task = families.make_counter_task("t", "unit", 1, "machine")
        assert "design requirement" in task.prompt.text.lower()
        assert task.prompt_style == "completion"

    def test_human_style_includes_interface(self):
        task = families.make_counter_task("t", "unit", 1, "human")
        assert "module top_module" in task.prompt.text

    def test_spec_to_rtl_style(self):
        task = families.make_counter_task("t", "unit", 1, "spec_to_rtl")
        assert task.prompt.text.startswith("Question:")
        assert task.prompt.text.rstrip().endswith("Answer:")
        assert task.prompt_style == "spec_to_rtl"


class TestSymbolicTasks:
    def test_truth_table_task_modality(self):
        task = families.make_truth_table_task("t", "unit", 3, "human")
        assert task.demands.modality is SymbolicModality.TRUTH_TABLE
        assert "|" in task.prompt.text
        assert task.is_symbolic
        assert task.category == "truth_table"

    def test_waveform_task_modality(self):
        task = families.make_waveform_task("t", "unit", 3, "human")
        assert task.demands.modality is SymbolicModality.WAVEFORM
        assert task.category == "waveform"

    def test_state_diagram_task_modality(self):
        task = families.make_state_diagram_task("t", "unit", 3, "human")
        assert task.demands.modality is SymbolicModality.STATE_DIAGRAM
        assert "->" in task.prompt.text

    def test_non_symbolic_task(self):
        task = families.make_adder_task("t", "unit", 3, "human")
        assert not task.is_symbolic


class TestDeterminism:
    @pytest.mark.parametrize("builder", [families.make_counter_task, families.make_alu_task])
    def test_same_seed_same_task(self, builder):
        first = builder("t", "unit", 11, "human")
        second = builder("t", "unit", 11, "human")
        assert first.prompt.text == second.prompt.text
        assert first.reference_source == second.reference_source

    def test_different_seeds_vary(self):
        texts = {families.make_register_task("t", "unit", seed, "human").prompt.text for seed in range(8)}
        assert len(texts) > 1
