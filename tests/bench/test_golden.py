"""Tests for the benchmark golden models and stimulus helpers."""

from __future__ import annotations

from repro.bench.golden import (
    ClockDividerGolden,
    CounterGolden,
    EdgeDetectorGolden,
    ExpressionGolden,
    InvertedInputsGolden,
    RegisterGolden,
    SequenceDetectorGolden,
    ShiftRegisterGolden,
    TableGolden,
    VectorFunctionGolden,
    exhaustive_vectors,
    random_vectors,
)
from repro.logic.expr import And, Var


class TestCombinationalGoldens:
    def test_expression_golden(self):
        golden = ExpressionGolden(And(Var("a"), Var("b")))
        assert golden.eval({"a": 1, "b": 1}) == {"out": 1}
        assert golden.eval({"a": 1, "b": 0}) == {"out": 0}
        assert not golden.is_sequential

    def test_table_golden_defaults_missing_rows_to_zero(self):
        golden = TableGolden(["a", "b"], {3: 1})
        assert golden.eval({"a": 1, "b": 1}) == {"out": 1}
        assert golden.eval({"a": 0, "b": 1}) == {"out": 0}

    def test_vector_function_golden(self):
        golden = VectorFunctionGolden(lambda ins: {"y": ins["a"] + 1})
        assert golden.eval({"a": 3}) == {"y": 4}


class TestSequentialGoldens:
    def test_counter_counts_and_resets(self):
        golden = CounterGolden(width=4, has_enable=True)
        golden.reset()
        assert golden.step({"rst": 0, "en": 1})["count"] == 1
        assert golden.step({"rst": 0, "en": 0})["count"] == 1
        assert golden.step({"rst": 1, "en": 1})["count"] == 0

    def test_counter_wraps_at_width(self):
        golden = CounterGolden(width=2)
        golden.reset()
        values = [golden.step({"rst": 0})["count"] for _ in range(5)]
        assert values == [1, 2, 3, 0, 1]

    def test_counter_modulo(self):
        golden = CounterGolden(width=4, modulo=10)
        golden.reset()
        values = [golden.step({"rst": 0})["count"] for _ in range(11)]
        assert values[9] == 0

    def test_up_down_counter(self):
        golden = CounterGolden(width=4, up_down=True)
        golden.reset()
        golden.step({"rst": 0, "up_down": 1})
        assert golden.step({"rst": 0, "up_down": 0})["count"] == 0

    def test_shift_register_left(self):
        golden = ShiftRegisterGolden(width=4)
        golden.reset()
        for bit in (1, 0, 1, 1):
            result = golden.step({"rst": 0, "din": bit})
        assert result["q"] == 0b1011

    def test_shift_register_right(self):
        golden = ShiftRegisterGolden(width=4, shift_left=False)
        golden.reset()
        golden.step({"rst": 0, "din": 1})
        assert golden.step({"rst": 0, "din": 0})["q"] == 0b0100

    def test_register_with_active_low_enable(self):
        golden = RegisterGolden(width=8, has_enable=True, enable_active_low=True, enable_input="en_n")
        golden.reset()
        assert golden.step({"rst": 0, "en_n": 1, "d": 42})["q"] == 0
        assert golden.step({"rst": 0, "en_n": 0, "d": 42})["q"] == 42

    def test_clock_divider_toggles(self):
        golden = ClockDividerGolden(divisor=2)
        golden.reset()
        outputs = [golden.step({"rst": 0})["clk_out"] for _ in range(8)]
        assert outputs == [0, 1, 1, 0, 0, 1, 1, 0]

    def test_sequence_detector(self):
        golden = SequenceDetectorGolden(pattern=(1, 0, 1))
        golden.reset()
        outputs = [golden.step({"rst": 0, "din": bit})["detected"] for bit in (1, 0, 1, 0, 1)]
        assert outputs == [0, 0, 1, 0, 1]

    def test_edge_detector(self):
        golden = EdgeDetectorGolden()
        golden.reset()
        outputs = [golden.step({"rst": 0, "din": bit})["pulse"] for bit in (0, 1, 1, 0, 1)]
        assert outputs == [0, 1, 0, 0, 1]

    def test_inverted_inputs_wrapper(self):
        inner = RegisterGolden(width=4, reset_input="rst_n")
        wrapped = InvertedInputsGolden(inner, ("rst_n",))
        wrapped.reset()
        # rst_n=1 means "not in reset" externally; the wrapper inverts it for the
        # active-high inner model.
        assert wrapped.step({"rst_n": 1, "d": 5})["q"] == 5
        assert wrapped.step({"rst_n": 0, "d": 7})["q"] == 0
        assert wrapped.is_sequential


class TestStimulusHelpers:
    def test_random_vectors_deterministic(self):
        first = random_vectors({"a": 4, "b": 2}, 10, seed=3)
        second = random_vectors({"a": 4, "b": 2}, 10, seed=3)
        assert first == second
        assert len(first) == 10
        assert all(0 <= v["a"] < 16 and 0 <= v["b"] < 4 for v in first)

    def test_exhaustive_vectors_small_space(self):
        vectors = exhaustive_vectors({"a": 2, "b": 1})
        assert len(vectors) == 8
        assert {tuple(sorted(v.items())) for v in vectors} == {
            tuple(sorted({"a": a, "b": b}.items())) for a in range(4) for b in range(2)
        }

    def test_exhaustive_vectors_fall_back_to_random(self):
        vectors = exhaustive_vectors({"a": 16, "b": 16}, limit=64)
        assert len(vectors) == 64
