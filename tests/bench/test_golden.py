"""Tests for the benchmark golden models and stimulus helpers."""

from __future__ import annotations

import pytest

from repro.bench.golden import (
    ClockDividerGolden,
    CounterGolden,
    EdgeDetectorGolden,
    ExpressionGolden,
    InvertedInputsGolden,
    RegisterGolden,
    SequenceDetectorGolden,
    ShiftRegisterGolden,
    TableGolden,
    VectorFunctionGolden,
    VerilogGolden,
    batch_equivalence_check,
    exhaustive_vectors,
    random_vectors,
)
from repro.logic.expr import And, Var


class TestCombinationalGoldens:
    def test_expression_golden(self):
        golden = ExpressionGolden(And(Var("a"), Var("b")))
        assert golden.eval({"a": 1, "b": 1}) == {"out": 1}
        assert golden.eval({"a": 1, "b": 0}) == {"out": 0}
        assert not golden.is_sequential

    def test_table_golden_defaults_missing_rows_to_zero(self):
        golden = TableGolden(["a", "b"], {3: 1})
        assert golden.eval({"a": 1, "b": 1}) == {"out": 1}
        assert golden.eval({"a": 0, "b": 1}) == {"out": 0}

    def test_vector_function_golden(self):
        golden = VectorFunctionGolden(lambda ins: {"y": ins["a"] + 1})
        assert golden.eval({"a": 3}) == {"y": 4}


class TestSequentialGoldens:
    def test_counter_counts_and_resets(self):
        golden = CounterGolden(width=4, has_enable=True)
        golden.reset()
        assert golden.step({"rst": 0, "en": 1})["count"] == 1
        assert golden.step({"rst": 0, "en": 0})["count"] == 1
        assert golden.step({"rst": 1, "en": 1})["count"] == 0

    def test_counter_wraps_at_width(self):
        golden = CounterGolden(width=2)
        golden.reset()
        values = [golden.step({"rst": 0})["count"] for _ in range(5)]
        assert values == [1, 2, 3, 0, 1]

    def test_counter_modulo(self):
        golden = CounterGolden(width=4, modulo=10)
        golden.reset()
        values = [golden.step({"rst": 0})["count"] for _ in range(11)]
        assert values[9] == 0

    def test_up_down_counter(self):
        golden = CounterGolden(width=4, up_down=True)
        golden.reset()
        golden.step({"rst": 0, "up_down": 1})
        assert golden.step({"rst": 0, "up_down": 0})["count"] == 0

    def test_shift_register_left(self):
        golden = ShiftRegisterGolden(width=4)
        golden.reset()
        for bit in (1, 0, 1, 1):
            result = golden.step({"rst": 0, "din": bit})
        assert result["q"] == 0b1011

    def test_shift_register_right(self):
        golden = ShiftRegisterGolden(width=4, shift_left=False)
        golden.reset()
        golden.step({"rst": 0, "din": 1})
        assert golden.step({"rst": 0, "din": 0})["q"] == 0b0100

    def test_register_with_active_low_enable(self):
        golden = RegisterGolden(width=8, has_enable=True, enable_active_low=True, enable_input="en_n")
        golden.reset()
        assert golden.step({"rst": 0, "en_n": 1, "d": 42})["q"] == 0
        assert golden.step({"rst": 0, "en_n": 0, "d": 42})["q"] == 42

    def test_clock_divider_toggles(self):
        golden = ClockDividerGolden(divisor=2)
        golden.reset()
        outputs = [golden.step({"rst": 0})["clk_out"] for _ in range(8)]
        assert outputs == [0, 1, 1, 0, 0, 1, 1, 0]

    def test_sequence_detector(self):
        golden = SequenceDetectorGolden(pattern=(1, 0, 1))
        golden.reset()
        outputs = [golden.step({"rst": 0, "din": bit})["detected"] for bit in (1, 0, 1, 0, 1)]
        assert outputs == [0, 0, 1, 0, 1]

    def test_edge_detector(self):
        golden = EdgeDetectorGolden()
        golden.reset()
        outputs = [golden.step({"rst": 0, "din": bit})["pulse"] for bit in (0, 1, 1, 0, 1)]
        assert outputs == [0, 1, 0, 0, 1]

    def test_inverted_inputs_wrapper(self):
        inner = RegisterGolden(width=4, reset_input="rst_n")
        wrapped = InvertedInputsGolden(inner, ("rst_n",))
        wrapped.reset()
        # rst_n=1 means "not in reset" externally; the wrapper inverts it for the
        # active-high inner model.
        assert wrapped.step({"rst_n": 1, "d": 5})["q"] == 5
        assert wrapped.step({"rst_n": 0, "d": 7})["q"] == 0
        assert wrapped.is_sequential


class TestOutOfRangeInputsRejected:
    """Regression: _mask-based stepping silently truncated oversized stimulus.

    An out-of-range value means the harness drove the DUT and the golden model
    with *different* stimuli; the goldens must fail loudly instead of scoring
    against the truncation.
    """

    def test_register_rejects_oversized_data(self):
        golden = RegisterGolden(width=4)
        golden.reset()
        with pytest.raises(ValueError, match="does not fit"):
            golden.step({"rst": 0, "d": 16})
        # In-range values still work, including the maximum.
        assert golden.step({"rst": 0, "d": 15})["q"] == 15

    def test_shift_register_rejects_wide_serial_bit(self):
        golden = ShiftRegisterGolden(width=4)
        golden.reset()
        with pytest.raises(ValueError, match="din"):
            golden.step({"rst": 0, "din": 2})

    def test_sequence_detector_rejects_wide_serial_bit(self):
        golden = SequenceDetectorGolden(pattern=(1, 0))
        golden.reset()
        with pytest.raises(ValueError, match="din"):
            golden.step({"rst": 0, "din": 3})

    def test_edge_detector_rejects_wide_input(self):
        golden = EdgeDetectorGolden()
        golden.reset()
        with pytest.raises(ValueError, match="din"):
            golden.step({"rst": 0, "din": 2})

    def test_table_golden_rejects_multibit_input(self):
        golden = TableGolden(["a", "b"], {3: 1})
        with pytest.raises(ValueError, match="'a'"):
            golden.eval({"a": 2, "b": 1})

    def test_expression_golden_rejects_multibit_input(self):
        golden = ExpressionGolden(And(Var("a"), Var("b")))
        with pytest.raises(ValueError, match="does not fit"):
            golden.eval({"a": 2, "b": 1})

    def test_negative_values_rejected(self):
        golden = RegisterGolden(width=4)
        golden.reset()
        with pytest.raises(ValueError, match="does not fit"):
            golden.step({"rst": 0, "d": -1})


class TestVerilogGolden:
    ADDER = (
        "module ref(input [3:0] a, input [3:0] b, output [3:0] sum, output cout);\n"
        "    assign {cout, sum} = a + b;\n"
        "endmodule\n"
    )
    COUNTER = (
        "module ref(input clk, input rst, output reg [3:0] count);\n"
        "    always @(posedge clk) begin\n"
        "        if (rst) count <= 4'd0; else count <= count + 1'b1;\n"
        "    end\n"
        "endmodule\n"
    )

    def test_combinational_reference_as_golden(self):
        golden = VerilogGolden(self.ADDER)
        assert not golden.is_sequential
        assert golden.eval({"a": 9, "b": 8}) == {"sum": 1, "cout": 1}

    def test_sequential_reference_as_golden(self):
        golden = VerilogGolden(self.COUNTER)
        assert golden.is_sequential
        golden.step({"rst": 1})
        assert golden.step({"rst": 0})["count"] == 1
        assert golden.step({"rst": 0})["count"] == 2
        golden.reset()
        golden.step({"rst": 1})
        assert golden.step({"rst": 0})["count"] == 1

    def test_undefined_outputs_are_omitted(self):
        source = "module ref(input a, output y, output z); assign y = a; endmodule"
        golden = VerilogGolden(source)
        observed = golden.eval({"a": 1})
        assert observed == {"y": 1}  # z never driven -> stays x -> unconstrained


class TestBatchEquivalenceCheck:
    REFERENCE = (
        "module ref(input [3:0] a, input [3:0] b, output gt, output eq);\n"
        "    assign gt = a > b;\n"
        "    assign eq = a == b;\n"
        "endmodule\n"
    )

    def test_equivalent_designs_report_no_mismatches(self):
        dut = (
            "module dut(input [3:0] a, input [3:0] b, output gt, output eq);\n"
            "    assign eq = ~(a < b) & ~(a > b);\n"
            "    assign gt = (a > b);\n"
            "endmodule\n"
        )
        vectors = [{"a": a, "b": b} for a in range(8) for b in range(8)]
        assert batch_equivalence_check(dut, self.REFERENCE, vectors) == []

    def test_inequivalent_designs_report_mismatching_vectors(self):
        dut = (
            "module dut(input [3:0] a, input [3:0] b, output gt, output eq);\n"
            "    assign gt = a >= b;\n"  # wrong on a == b
            "    assign eq = a == b;\n"
            "endmodule\n"
        )
        vectors = [{"a": a, "b": b} for a in range(4) for b in range(4)]
        mismatched = batch_equivalence_check(dut, self.REFERENCE, vectors)
        expected = [index for index, v in enumerate(vectors) if v["a"] == v["b"]]
        assert mismatched == expected

    def test_missing_output_counts_as_mismatch(self):
        dut = "module dut(input [3:0] a, input [3:0] b, output gt); assign gt = a > b; endmodule"
        vectors = [{"a": 1, "b": 2}]
        assert batch_equivalence_check(dut, self.REFERENCE, vectors) == [0]


class TestBatchEquivalenceMismatches:
    """Regression tests for the structured counterexample records.

    ``batch_equivalence_check`` used to return bare lane indices and fold
    "DUT output missing" into generic lane mismatches; the structured API
    exposes the stimulus, the expected/actual values and the missing-output
    flag, with the index list kept as a thin wrapper over it.
    """

    REFERENCE = TestBatchEquivalenceCheck.REFERENCE

    def test_records_carry_inputs_and_values(self):
        from repro.bench.golden import batch_equivalence_mismatches

        dut = (
            "module dut(input [3:0] a, input [3:0] b, output gt, output eq);\n"
            "    assign gt = a >= b;\n"  # wrong exactly when a == b
            "    assign eq = a == b;\n"
            "endmodule\n"
        )
        vectors = [{"a": a, "b": b} for a in range(4) for b in range(4)]
        mismatches = batch_equivalence_mismatches(dut, self.REFERENCE, vectors)
        assert mismatches, "expected mismatching lanes"
        for mismatch in mismatches:
            assert mismatch.inputs == vectors[mismatch.lane]
            assert mismatch.inputs["a"] == mismatch.inputs["b"]
            assert mismatch.expected == {"gt": 0}
            assert mismatch.actual == {"gt": 1}
            assert not mismatch.has_missing_output
            assert "gt expected 0 got 1" in str(mismatch)

    def test_missing_output_is_flagged_not_folded(self):
        from repro.bench.golden import batch_equivalence_mismatches

        dut = "module dut(input [3:0] a, input [3:0] b, output gt); assign gt = a > b; endmodule"
        vectors = [{"a": 1, "b": 2}]
        (mismatch,) = batch_equivalence_mismatches(dut, self.REFERENCE, vectors)
        assert mismatch.lane == 0
        assert mismatch.missing_outputs == ["eq"]
        assert mismatch.has_missing_output
        assert "eq missing from DUT" in str(mismatch)
        # The correctly-driven output is not reported as mismatching.
        assert "gt" not in mismatch.expected

    def test_xz_dut_output_reported_as_literal(self):
        from repro.bench.golden import batch_equivalence_mismatches

        dut = (
            "module dut(input [3:0] a, input [3:0] b, output gt, output eq);\n"
            "    assign gt = a > b;\n"
            "    assign eq = 1'bx;\n"
            "endmodule\n"
        )
        vectors = [{"a": 2, "b": 2}]
        (mismatch,) = batch_equivalence_mismatches(dut, self.REFERENCE, vectors)
        assert mismatch.expected == {"eq": 1}
        assert mismatch.actual == {"eq": "1'bx"}

    def test_index_list_api_is_a_thin_wrapper(self):
        from repro.bench.golden import batch_equivalence_mismatches

        dut = (
            "module dut(input [3:0] a, input [3:0] b, output gt, output eq);\n"
            "    assign gt = a >= b;\n"
            "    assign eq = a == b;\n"
            "endmodule\n"
        )
        vectors = [{"a": a, "b": b} for a in range(4) for b in range(4)]
        lanes = [m.lane for m in batch_equivalence_mismatches(dut, self.REFERENCE, vectors)]
        assert batch_equivalence_check(dut, self.REFERENCE, vectors) == lanes


class TestStimulusHelpers:
    def test_random_vectors_deterministic(self):
        first = random_vectors({"a": 4, "b": 2}, 10, seed=3)
        second = random_vectors({"a": 4, "b": 2}, 10, seed=3)
        assert first == second
        assert len(first) == 10
        assert all(0 <= v["a"] < 16 and 0 <= v["b"] < 4 for v in first)

    def test_exhaustive_vectors_small_space(self):
        vectors = exhaustive_vectors({"a": 2, "b": 1})
        assert len(vectors) == 8
        assert {tuple(sorted(v.items())) for v in vectors} == {
            tuple(sorted({"a": a, "b": b}.items())) for a in range(4) for b in range(2)
        }

    def test_exhaustive_vectors_fall_back_to_random(self):
        vectors = exhaustive_vectors({"a": 16, "b": 16}, limit=64)
        assert len(vectors) == 64
