"""Formal-mode job execution: incremental sessions, k-induction, stats plumbing.

Covers the acceptance contract of the incremental formal engine at the bench
layer: clocked task families are *proven* (k-induction) under ``mode="formal"``
instead of silently degrading to simulation, combinational candidates ride the
per-worker equivalence session, SAT accounting travels on
``TestbenchResult.proof_stats`` into :class:`CheckOutcome`, and the durable
result keys stay byte-stable at default knob values.
"""

from __future__ import annotations

from repro.bench.evaluator import EvaluationConfig, check_request_for, task_check_keys
from repro.bench.families import make_counter_task, make_expression_task
from repro.bench.jobs import (
    CheckOutcome,
    ResultKey,
    design_key,
    execute_check,
    mode_key,
    run_checks,
)

#: Seed 1 → 4-bit counter, no enable, synchronous reset (inside the provable
#: sequential subset); seed 4 → enable flavour, also synchronous.
COUNTER_SEED = 1
COUNTER_EN_SEED = 4

#: Correct 4-bit counter, structurally different from the family reference
#: (adds through a subtract) so the proof is a real SAT query.
COUNTER_OK = """
module top_module(input clk, input rst, output reg [3:0] count);
    always @(posedge clk) begin
        if (rst) count <= 4'd0;
        else count <= count - 4'hF;
    end
endmodule
"""

#: Off-by-one increment: wrong from the second post-reset cycle on.
COUNTER_BAD = COUNTER_OK.replace("4'hF", "4'hE")


def _formal_request(task, code, **overrides):
    config = EvaluationConfig(
        num_samples=1, ks=(1,), temperatures=(0.2,), mode="formal", **overrides
    )
    stimulus, stim_key, mkey = task_check_keys(task, config, 0.2)
    key = ResultKey(design_key=design_key(code), stimulus_key=stim_key, mode=mkey)
    return check_request_for(task, code, key, stimulus, config)


class TestModeKeyStability:
    def test_default_formal_key_is_unchanged(self):
        # Durable result stores index by this string: the new knobs must not
        # shift it at their default values.
        assert (
            mode_key("formal", True, False, 50_000)
            == "formal:50000|batch=True|diff=False"
        )
        assert mode_key("simulation", True, False, None) == (
            "simulation|batch=True|diff=False"
        )

    def test_non_default_knobs_enter_the_key(self):
        assert mode_key(
            "formal", True, False, 50_000, formal_incremental=False
        ).endswith("|inc=False")
        assert mode_key("formal", True, False, 50_000, induction_depth=7).endswith(
            "|induction=7"
        )
        # Simulation mode ignores the formal knobs entirely.
        assert mode_key(
            "simulation", True, False, None, formal_incremental=False, induction_depth=9
        ) == "simulation|batch=True|diff=False"


class TestCheckOutcomeProofStats:
    def test_empty_proof_stats_keep_old_payload_shape(self):
        outcome = CheckOutcome(sample_index=0, temperature=0.2, syntax_ok=True)
        assert "proof_stats" not in outcome.to_dict()
        assert CheckOutcome.from_dict(outcome.to_dict()).proof_stats == {}

    def test_proof_stats_roundtrip(self):
        stats = {"method": "induction", "conflicts": 12, "decisions": 30}
        outcome = CheckOutcome(
            sample_index=1, temperature=0.5, syntax_ok=True, proof_stats=stats
        )
        payload = outcome.to_dict()
        assert payload["proof_stats"] == stats
        assert CheckOutcome.from_dict(payload).proof_stats == stats


class TestSequentialFormalMode:
    def test_clocked_counter_family_proven_by_induction(self):
        task = make_counter_task("counter_formal", "unit", seed=COUNTER_SEED)
        request = _formal_request(task, COUNTER_OK)
        _, result = execute_check(request)
        assert result.passed
        assert result.proof_stats is not None
        assert result.proof_stats["method"] == "induction"
        # Differential gate: the scalar simulation path must agree.
        sim_request = _formal_request(task, COUNTER_OK)
        sim_request.mode = "simulation"
        _, sim_result = execute_check(sim_request)
        assert sim_result.passed

    def test_enable_counter_family_proven_by_induction(self):
        task = make_counter_task("counter_en_formal", "unit", seed=COUNTER_EN_SEED)
        code = task.reference_source.replace("count + 1'b1", "count - {4{1'b1}}")
        request = _formal_request(task, code)
        _, result = execute_check(request)
        assert result.passed
        assert result.proof_stats["method"] == "induction"

    def test_buggy_counter_refuted_and_simulation_agrees(self):
        task = make_counter_task("counter_bug", "unit", seed=COUNTER_SEED)
        request = _formal_request(task, COUNTER_BAD)
        _, result = execute_check(request)
        assert not result.passed
        assert result.proof_stats is not None
        assert result.mismatches  # replayable counterexample, not an error
        sim_request = _formal_request(task, COUNTER_BAD)
        sim_request.mode = "simulation"
        _, sim_result = execute_check(sim_request)
        assert not sim_result.passed

    def test_zero_degradations_through_the_executor(self):
        # The fault-tolerant executor must score the clocked task formally in
        # one clean attempt: no retries, no formal->simulation degradation.
        task = make_counter_task("counter_clean", "unit", seed=COUNTER_SEED)
        request = _formal_request(task, COUNTER_OK)
        report = run_checks([request], max_workers=1)
        execution = report.executions[request.key]
        assert execution.result.passed
        assert execution.attempts == 1
        assert execution.degradation == ()
        assert execution.result.proof_stats["method"] == "induction"

    def test_induction_depth_zero_restores_simulation_fallback(self):
        task = make_counter_task("counter_nodepth", "unit", seed=COUNTER_SEED)
        request = _formal_request(task, COUNTER_OK, induction_depth=0)
        _, result = execute_check(request)
        assert result.passed
        assert result.proof_stats is None  # simulated, not proven


class TestCombinationalFormalMode:
    def test_candidates_ride_the_worker_session(self):
        from repro.bench import jobs

        task = make_expression_task("expr_formal", "unit", seed=3)
        jobs._worker_sessions.clear()
        request = _formal_request(task, task.reference_source)
        _, result = execute_check(request)
        assert result.passed
        assert result.proof_stats["method"] in ("sat", "structural")
        key = (
            design_key(task.reference_source),
            tuple(task.check_outputs) if task.check_outputs is not None else None,
        )
        assert key in jobs._worker_sessions
        # A second candidate against the same reference reuses the session.
        session = jobs._worker_sessions[key]
        _, again = execute_check(_formal_request(task, task.reference_source))
        assert again.passed
        assert jobs._worker_sessions[key] is session

    def test_incremental_off_matches_session_verdict(self):
        task = make_expression_task("expr_fresh", "unit", seed=3)
        on = _formal_request(task, task.reference_source)
        off = _formal_request(task, task.reference_source, formal_incremental=False)
        assert on.key.mode != off.key.mode  # distinct durable keys
        _, with_session = execute_check(on)
        _, without = execute_check(off)
        assert with_session.passed == without.passed


class TestConfigSerialization:
    def test_new_knobs_roundtrip(self):
        config = EvaluationConfig(
            num_samples=1,
            ks=(1,),
            temperatures=(0.2,),
            formal_incremental=False,
            induction_depth=6,
        )
        restored = EvaluationConfig.from_dict(config.to_dict())
        assert restored.formal_incremental is False
        assert restored.induction_depth == 6
        single = config.single_temperature()
        assert single.formal_incremental is False
        assert single.induction_depth == 6

    def test_old_payloads_get_defaults(self):
        payload = EvaluationConfig(
            num_samples=1, ks=(1,), temperatures=(0.2,)
        ).to_dict()
        payload.pop("formal_incremental")
        payload.pop("induction_depth")
        restored = EvaluationConfig.from_dict(payload)
        assert restored.formal_incremental is True
        assert restored.induction_depth == 4
