"""Job-based evaluation orchestrator: memoisation, parallelism, differential parity.

The acceptance bar for the compile-once refactor: cached and uncached
evaluation must produce *identical* ``SuiteResult``s (including formal-mode
verdicts), repeated candidates must be checked exactly once across
temperatures and runs, and the worker-pool path must agree with serial
execution (falling back transparently when golden factories cannot cross a
process boundary).
"""

from __future__ import annotations

from functools import partial

import pytest

import repro.bench.evaluator as evaluator_module
from repro.bench.evaluator import BenchmarkEvaluator, EvaluationConfig
from repro.bench.golden import VectorFunctionGolden, random_vectors
from repro.bench.jobs import (
    CheckRequest,
    ResultKey,
    design_key,
    mode_key,
    run_checks,
    stimulus_key,
)
from repro.bench.task import BenchmarkSuite, BenchmarkTask
from repro.bench.verilogeval import SuiteConfig, build_verilogeval_human
from repro.core.llm.base import GenerationConfig, GenerationContext, GeneratedSample, LLMBackend
from repro.core.llm.profiles import BASELINE_PROFILES
from repro.core.llm.simulated import SimulatedCodeGenLLM
from repro.core.pipeline import HaVenPipeline
from repro.core.prompt import DesignPrompt, ModuleInterface, PortSpec
from repro.verilog.design import DesignDatabase


# --------------------------------------------------------------------------- backends
class PerfectBackend(LLMBackend):
    """Always returns the task's reference implementation."""

    name = "Perfect"

    def generate(self, context: GenerationContext, config: GenerationConfig) -> list[GeneratedSample]:
        return [
            GeneratedSample(code=context.reference_source, sample_index=index)
            for index in range(config.num_samples)
        ]


class ZeroBackend(LLMBackend):
    """Returns a compiling module whose outputs are constantly zero."""

    name = "ConstantZero"

    def generate(self, context: GenerationContext, config: GenerationConfig) -> list[GeneratedSample]:
        ports = []
        for port in context.interface.ports:
            range_text = f"[{port.width - 1}:0] " if port.width > 1 else ""
            ports.append(f"    {port.direction} {range_text}{port.name}")
        body = [f"    assign {port.name} = 0;" for port in context.interface.output_ports]
        source = (
            f"module {context.interface.name} (\n"
            + ",\n".join(ports)
            + "\n);\n"
            + "\n".join(body)
            + "\nendmodule\n"
        )
        return [GeneratedSample(code=source, sample_index=index) for index in range(config.num_samples)]


# --------------------------------------------------------------------------- picklable suite
def _xor_fn(inputs):
    return {"y": inputs["a"] ^ inputs["b"]}


def _sum_fn(inputs):
    return {"y": (inputs["a"] + inputs["b"]) & 0xF}


_PICKLABLE_SPECS = [
    ("pick_xor", "assign y = a ^ b;", 1, _xor_fn),
    ("pick_sum", "assign y = a + b;", 4, _sum_fn),
]


def _picklable_suite() -> BenchmarkSuite:
    """Tasks whose golden factories pickle (module-level partials)."""
    suite = BenchmarkSuite(name="picklable")
    for task_id, body, width, fn in _PICKLABLE_SPECS:
        interface = ModuleInterface(
            name="top_module",
            ports=[
                PortSpec("a", "input", width),
                PortSpec("b", "input", width),
                PortSpec("y", "output", width),
            ],
        )
        range_text = f"[{width - 1}:0] " if width > 1 else ""
        reference = (
            f"module top_module(input {range_text}a, input {range_text}b, "
            f"output {range_text}y);\n    {body}\nendmodule\n"
        )
        widths = {"a": width, "b": width}
        suite.add(
            BenchmarkTask(
                task_id=task_id,
                suite="picklable",
                prompt=DesignPrompt(text=f"Implement {task_id}.", interface=interface),
                interface=interface,
                reference_source=reference,
                golden_factory=partial(VectorFunctionGolden, fn),
                stimulus_factory=partial(random_vectors, widths, 12),
            )
        )
    return suite


def _suite_results_equal(left, right) -> bool:
    return (
        left.suite_name == right.suite_name
        and left.ks == right.ks
        and left.task_results == right.task_results
    )


# --------------------------------------------------------------------------- memoisation
class TestMemoisation:
    def _counting_evaluate(self, monkeypatch, config, pipeline, suite):
        """Run an evaluation while counting the check requests actually executed."""
        executed: list[int] = []
        real_run_checks = evaluator_module.run_checks

        def counting(requests, max_workers=1, **kwargs):
            executed.append(len(requests))
            return real_run_checks(requests, max_workers=max_workers, **kwargs)

        monkeypatch.setattr(evaluator_module, "run_checks", counting)
        evaluator = BenchmarkEvaluator(config)
        first = evaluator.evaluate(pipeline, suite)
        first_executed = sum(executed)
        executed.clear()
        second = evaluator.evaluate(pipeline, suite)
        return first, second, first_executed, sum(executed)

    def test_identical_candidates_checked_once_across_temperatures(self, monkeypatch):
        suite = build_verilogeval_human(SuiteConfig(num_tasks=4, seed=11))
        config = EvaluationConfig(num_samples=3, ks=(1,), temperatures=(0.2, 0.5, 0.8))
        pipeline = HaVenPipeline(PerfectBackend(), use_sicot=False)
        first, second, first_executed, second_executed = self._counting_evaluate(
            monkeypatch, config, pipeline, suite
        )
        # The perfect backend emits one unique code per task: one check per
        # task regardless of samples × temperatures.
        assert first_executed == len(suite)
        # A repeated evaluation is served entirely from the memo.
        assert second_executed == 0
        assert _suite_results_equal(first, second)

    def test_memoisation_disabled_re_executes(self, monkeypatch):
        suite = build_verilogeval_human(SuiteConfig(num_tasks=3, seed=11))
        config = EvaluationConfig(
            num_samples=2, ks=(1,), temperatures=(0.2, 0.5), memoize_results=False
        )
        pipeline = HaVenPipeline(PerfectBackend(), use_sicot=False)
        first, second, first_executed, second_executed = self._counting_evaluate(
            monkeypatch, config, pipeline, suite
        )
        # Without memoisation every temperature sweep is cold (per-temperature
        # dedup of identical samples is retained).
        assert first_executed == len(suite) * 2
        assert second_executed == first_executed
        assert _suite_results_equal(first, second)


# --------------------------------------------------------------------------- run_checks
def _check_requests(copies: int = 1) -> list[CheckRequest]:
    requests = []
    suite = _picklable_suite()
    for task in suite:
        stimulus = task.stimulus(7)
        key = ResultKey(
            design_key=design_key(task.reference_source),
            stimulus_key=stimulus_key(
                task.task_id,
                stimulus,
                task.check_outputs,
                task.clock,
                task.reset,
                reference_source=task.reference_source,
            ),
            mode=mode_key("simulation", True, False, None),
        )
        for _ in range(copies):
            requests.append(
                CheckRequest(
                    key=key,
                    code=task.reference_source,
                    task_id=task.task_id,
                    golden_factory=task.golden_factory,
                    stimulus=stimulus,
                    reference_source=task.reference_source,
                    check_outputs=task.check_outputs,
                    clock=task.clock,
                    reset=task.reset,
                )
            )
    return requests


class TestRunChecks:
    def _requests(self, copies: int = 1) -> list[CheckRequest]:
        return _check_requests(copies)

    def test_duplicate_keys_executed_once(self):
        requests = self._requests(copies=3)
        results = run_checks(requests, max_workers=1).results()
        assert len(results) == len(_PICKLABLE_SPECS)
        assert all(result.passed for result in results.values())

    def test_parallel_matches_serial(self):
        serial = run_checks(self._requests(), max_workers=1).results()
        parallel = run_checks(self._requests(), max_workers=2).results()
        assert set(serial) == set(parallel)
        for key in serial:
            assert serial[key].passed == parallel[key].passed
            assert serial[key].total_checks == parallel[key].total_checks


# --------------------------------------------------------------------------- latency accounting
class TestLatencyAccounting:
    """Every settled attempt carries a wall-clock duration; the report
    summarises them as nearest-rank percentiles."""

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_every_execution_times_its_attempts(self, max_workers):
        report = run_checks(_check_requests(), max_workers=max_workers)
        assert report.executions
        for execution in report.executions.values():
            assert len(execution.attempt_durations) == execution.attempts
            assert execution.duration_s > 0
            assert execution.total_duration_s >= execution.duration_s

    def test_percentiles_are_ordered_and_bounded(self):
        report = run_checks(_check_requests(copies=2), max_workers=1)
        percentiles = report.latency_percentiles()
        assert set(percentiles) == {0.5, 0.99}
        assert 0 < percentiles[0.5] <= percentiles[0.99]
        slowest = max(e.duration_s for e in report.executions.values())
        assert percentiles[0.99] <= slowest

    def test_empty_report_has_no_percentiles(self):
        report = run_checks([], max_workers=1)
        assert report.latency_percentiles() == {}


# --------------------------------------------------------------------------- parallel evaluation
class TestParallelEvaluation:
    def test_worker_pool_matches_serial_on_picklable_suite(self):
        suite = _picklable_suite()
        pipeline = HaVenPipeline(PerfectBackend(), use_sicot=False)
        serial = BenchmarkEvaluator(
            EvaluationConfig(num_samples=2, ks=(1,), temperatures=(0.2,), max_workers=1)
        ).evaluate(pipeline, suite)
        parallel = BenchmarkEvaluator(
            EvaluationConfig(num_samples=2, ks=(1,), temperatures=(0.2,), max_workers=2)
        ).evaluate(pipeline, suite)
        assert _suite_results_equal(serial, parallel)
        assert serial.functional_pass_at_k()[1] == pytest.approx(1.0)

    def test_unpicklable_goldens_fall_back_to_serial(self):
        # Family suites use closure golden factories: the pool path must
        # transparently degrade without changing a single verdict.
        suite = build_verilogeval_human(SuiteConfig(num_tasks=4, seed=23))
        backend = SimulatedCodeGenLLM(BASELINE_PROFILES["origen-deepseek"])
        pipeline = HaVenPipeline(backend, use_sicot=False)
        config = EvaluationConfig(num_samples=3, ks=(1,), temperatures=(0.2,))
        serial = BenchmarkEvaluator(config).evaluate(pipeline, suite)
        parallel_config = EvaluationConfig(
            num_samples=3, ks=(1,), temperatures=(0.2,), max_workers=4
        )
        parallel = BenchmarkEvaluator(parallel_config).evaluate(pipeline, suite)
        assert _suite_results_equal(serial, parallel)


def test_custom_database_receives_functional_check_traffic():
    """An evaluator-supplied database must serve the runners, not just the checker."""
    db = DesignDatabase()
    suite = _picklable_suite()
    pipeline = HaVenPipeline(PerfectBackend(), use_sicot=False)
    config = EvaluationConfig(num_samples=2, ks=(1,), temperatures=(0.2,))
    result = BenchmarkEvaluator(config, database=db).evaluate(pipeline, suite)
    assert result.functional_pass_at_k()[1] == pytest.approx(1.0)
    # Syntax check + DUT compile per task went through the supplied database.
    assert db.stats.misses >= len(suite)
    assert db.stats.hits + db.stats.check_hits > 0


# --------------------------------------------------------------------------- differential parity
class TestCachedVsColdParity:
    """Cached and uncached paths must be bit-identical on randomized suites."""

    def _cold_evaluator(self, config: EvaluationConfig) -> BenchmarkEvaluator:
        cold_config = EvaluationConfig(
            num_samples=config.num_samples,
            ks=config.ks,
            temperatures=config.temperatures,
            mode=config.mode,
            formal_conflict_limit=config.formal_conflict_limit,
            memoize_results=False,
        )
        # max_entries=0 disables every database tier: front-end work really
        # happens per call on this path.
        return BenchmarkEvaluator(cold_config, database=DesignDatabase(max_entries=0))

    @pytest.mark.parametrize("backend_name", ["perfect", "zero", "simulated"])
    def test_simulation_mode_parity(self, backend_name):
        suite = build_verilogeval_human(SuiteConfig(num_tasks=8, seed=97))
        backend = {
            "perfect": PerfectBackend,
            "zero": ZeroBackend,
            "simulated": lambda: SimulatedCodeGenLLM(BASELINE_PROFILES["origen-deepseek"]),
        }[backend_name]()
        pipeline = HaVenPipeline(backend, use_sicot=False)
        config = EvaluationConfig(num_samples=3, ks=(1,), temperatures=(0.2, 0.8))
        cached = BenchmarkEvaluator(config).evaluate(pipeline, suite)
        cold = self._cold_evaluator(config).evaluate(pipeline, suite)
        assert _suite_results_equal(cached, cold)

    @pytest.mark.formal
    def test_formal_mode_parity(self):
        suite = build_verilogeval_human(SuiteConfig(num_tasks=6, seed=41))
        config = EvaluationConfig(
            num_samples=2, ks=(1,), temperatures=(0.2,), mode="formal"
        )
        for backend in (PerfectBackend(), SimulatedCodeGenLLM(BASELINE_PROFILES["origen-deepseek"])):
            pipeline = HaVenPipeline(backend, use_sicot=False)
            cached = BenchmarkEvaluator(config).evaluate(pipeline, suite)
            cold = self._cold_evaluator(config).evaluate(pipeline, suite)
            assert _suite_results_equal(cached, cold)
