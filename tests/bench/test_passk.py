"""Tests for the unbiased pass@k estimator."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bench.passk import compute_pass_at_k, mean_pass_at_k, pass_at_k


class TestPassAtK:
    def test_all_correct(self):
        assert pass_at_k(10, 10, 1) == pytest.approx(1.0)
        assert pass_at_k(10, 10, 5) == pytest.approx(1.0)

    def test_none_correct(self):
        assert pass_at_k(10, 0, 1) == pytest.approx(0.0)
        assert pass_at_k(10, 0, 5) == pytest.approx(0.0)

    def test_pass_at_1_equals_fraction(self):
        assert pass_at_k(10, 3, 1) == pytest.approx(0.3)
        assert pass_at_k(4, 1, 1) == pytest.approx(0.25)

    def test_known_value(self):
        # n=10, c=2, k=5: 1 - C(8,5)/C(10,5) = 1 - 56/252
        assert pass_at_k(10, 2, 5) == pytest.approx(1 - 56 / 252)

    def test_guaranteed_when_failures_fewer_than_k(self):
        assert pass_at_k(10, 8, 5) == pytest.approx(1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            pass_at_k(3, 1, 5)
        with pytest.raises(ValueError):
            pass_at_k(5, 6, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 2, 0)
        with pytest.raises(ValueError):
            pass_at_k(5, -1, 1)

    def test_mean_over_problems(self):
        counts = [(10, 10), (10, 0)]
        assert mean_pass_at_k(counts, 1) == pytest.approx(0.5)

    def test_mean_empty(self):
        assert mean_pass_at_k([], 1) == 0.0

    def test_compute_pass_at_k_result(self):
        result = compute_pass_at_k([(10, 5), (10, 0)], ks=(1, 5))
        assert result.num_problems == 2
        assert result[1] == pytest.approx(0.25)
        assert result[5] > result[1]
        percentages = result.as_percentages()
        assert percentages[1] == 25.0


class TestAggregationEdgeCases:
    """Degenerate shapes from partial/truncated runs must aggregate gracefully."""

    def test_k_larger_than_num_samples_clamps_to_pass_at_n(self):
        # A task with 2 samples scored at k=5 contributes its pass@2 estimate
        # instead of raising (pass_at_k itself stays strict).
        assert mean_pass_at_k([(2, 1)], 5) == pytest.approx(pass_at_k(2, 1, 2))
        assert mean_pass_at_k([(2, 2)], 5) == pytest.approx(1.0)
        assert mean_pass_at_k([(2, 0)], 5) == pytest.approx(0.0)

    def test_mixed_sample_counts_blend_clamped_and_exact(self):
        # (10, 5) is scored at the requested k=5; (3, 3) clamps to pass@3 = 1.0.
        expected = (pass_at_k(10, 5, 5) + 1.0) / 2
        assert mean_pass_at_k([(10, 5), (3, 3)], 5) == pytest.approx(expected)

    def test_zero_sample_tasks_are_skipped(self):
        assert mean_pass_at_k([(0, 0)], 1) == 0.0
        assert mean_pass_at_k([(0, 0), (10, 10)], 1) == pytest.approx(1.0)

    def test_all_zero_sample_tasks_yield_zero(self):
        result = compute_pass_at_k([(0, 0), (0, 0)], ks=(1, 5))
        assert result[1] == 0.0
        assert result[5] == 0.0
        assert result.num_problems == 2

    def test_compute_pass_at_k_with_small_n(self):
        result = compute_pass_at_k([(1, 1), (1, 0)], ks=(1, 5))
        assert result[1] == pytest.approx(0.5)
        assert result[5] == pytest.approx(0.5)

    def test_strict_pass_at_k_still_raises(self):
        with pytest.raises(ValueError):
            pass_at_k(0, 0, 1)
        with pytest.raises(ValueError):
            pass_at_k(2, 1, 5)


@given(
    st.integers(min_value=1, max_value=20),
    st.data(),
)
def test_pass_at_k_properties(n, data):
    """Monotone in c, monotone in k, and bounded in [0, 1]."""
    c = data.draw(st.integers(min_value=0, max_value=n))
    k = data.draw(st.integers(min_value=1, max_value=n))
    value = pass_at_k(n, c, k)
    assert 0.0 <= value <= 1.0
    if c < n:
        assert pass_at_k(n, c + 1, k) >= value
    if k < n:
        assert pass_at_k(n, c, min(k + 1, n)) >= value
    # pass@1 is exactly c/n.
    assert pass_at_k(n, c, 1) == pytest.approx(c / n)
