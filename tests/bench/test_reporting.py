"""Tests for report rendering (Tables IV-VI, Figs. 3-4 layouts)."""

from __future__ import annotations

from repro.bench.evaluator import SuiteResult, TaskResult
from repro.bench.reporting import (
    AblationSeries,
    FIG3_SETTINGS,
    Table4Row,
    Table5Row,
    format_table,
    render_fig3,
    render_fig4,
    render_table4,
    render_table5,
    render_table6,
    table5_row_from_result,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bbb"], [[1, 2], [30, 40]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_without_title(self):
        text = format_table(["x"], [[1]])
        assert not text.startswith("\n")
        assert "x" in text.splitlines()[0]

    def test_numeric_cells_right_aligned(self):
        text = format_table(["name", "score"], [["model-a", 1.5], ["b", 12.25]])
        lines = text.splitlines()
        assert lines[2].startswith("model-a |")
        assert lines[2].endswith("  1.5")
        assert lines[3].endswith("12.25")

    def test_signed_and_suffixed_values_right_aligned(self):
        text = format_table(["m", "delta"], [["x", "+11.4"], ["y", "50.0%"]])
        lines = text.splitlines()
        assert lines[2].endswith("+11.4")
        assert lines[3].endswith("50.0%")

    def test_non_numeric_cells_stay_left_aligned(self):
        text = format_table(["m", "v"], [["x", "n/a-----"], ["y", "ok"]])
        assert "ok      " in text.splitlines()[3]

    def test_empty_rows_render_no_rows_body(self):
        text = format_table(["a", "b"], [], title="T")
        lines = text.splitlines()
        assert lines[-1] == "(no rows)"
        assert len(lines) == 4  # title, header, separator, body placeholder


class TestTable5RowFromResult:
    def test_counts_scale_with_pass_fraction(self):
        def task(task_id, category, passes, samples=4):
            return TaskResult(
                task_id=task_id,
                category=category,
                num_samples=samples,
                num_functional_passes=passes,
                num_syntax_passes=samples,
                temperature=0.2,
            )

        result = SuiteResult(
            suite_name="sym",
            model_name="m",
            task_results=[
                task("t0", "truth_table", 4),
                task("t1", "truth_table", 0),
                task("w0", "waveform", 2),
                task("s0", "state_diagram", 4),
                task("s1", "state_diagram", 4),
            ],
        )
        row = table5_row_from_result("m", result)
        assert row.truth_table == (1, 2)
        assert row.waveform == (0, 1)  # 0.5 rounds to even (banker's rounding)
        assert row.state_diagram == (2, 2)


class TestTable4:
    def test_render_contains_all_columns(self):
        row = Table4Row(
            model="HaVen-DeepSeek",
            group="Ours",
            open_source=True,
            model_size="6.7B",
            machine_pass1=78.8,
            machine_pass5=84.5,
            human_pass1=57.3,
            human_pass5=64.2,
            rtllm_syntax_pass5=92.8,
            rtllm_func_pass5=66.0,
            v2_pass1=58.3,
            v2_pass5=63.4,
        )
        text = render_table4([row])
        assert "HaVen-DeepSeek" in text
        assert "78.8" in text and "66.0" in text and "63.4" in text
        assert "VE-Machine p@1" in text

    def test_missing_values_render_na(self):
        row = Table4Row(model="ChipNeMo", group="Verilog", open_source=False, model_size="13B", machine_pass1=43.4)
        text = render_table4([row])
        assert "n/a" in text


class TestTable5:
    def test_overall_rate(self):
        row = Table5Row(model="HaVen", truth_table=(6, 10), waveform=(4, 13), state_diagram=(11, 21))
        assert abs(row.overall - 100.0 * 21 / 44) < 1e-6

    def test_render(self):
        row = Table5Row(model="HaVen", truth_table=(6, 10), waveform=(4, 13), state_diagram=(11, 21))
        text = render_table5([row])
        assert "6/10" in text
        assert "%" in text

    def test_empty_counts(self):
        row = Table5Row(model="X", truth_table=(0, 0), waveform=(0, 0), state_diagram=(0, 0))
        assert row.overall == 0.0


class TestTable6:
    def test_render_with_delta(self):
        text = render_table6({"GPT-4": (34.1, 22.7)})
        assert "GPT-4" in text
        assert "+11.4" in text


class TestFigures:
    def test_fig3_renders_all_settings(self):
        series = [
            AblationSeries(
                model="CodeQwen",
                pass1={setting: 10.0 * index for index, setting in enumerate(FIG3_SETTINGS)},
                pass5={setting: 12.0 * index for index, setting in enumerate(FIG3_SETTINGS)},
            )
        ]
        text = render_fig3(series)
        for setting in FIG3_SETTINGS:
            assert setting in text
        assert "Pass@1" in text and "Pass@5" in text

    def test_fig4_renders_grid(self):
        grid1 = {(k, l): float(k + l) for k in (0, 50, 100) for l in (0, 50, 100)}
        grid5 = {key: value + 5 for key, value in grid1.items()}
        text = render_fig4(grid1, grid5)
        assert "K% \\ L%" in text
        assert "150.0" in text
        assert "Pass@5" in text
