"""Tests for the benchmark suite generators."""

from __future__ import annotations

from repro.bench.rtllm import RTLLMConfig, RTLLM_TASK_COUNT, build_rtllm
from repro.bench.symbolic_suite import SYMBOLIC_TOTAL, build_symbolic_suite
from repro.bench.task import BenchmarkSuite
from repro.bench.verilogeval import (
    HUMAN_STATE_DIAGRAM_COUNT,
    HUMAN_TASK_COUNT,
    HUMAN_TRUTH_TABLE_COUNT,
    HUMAN_WAVEFORM_COUNT,
    MACHINE_TASK_COUNT,
    SuiteConfig,
    build_symbolic_subset,
    build_verilogeval_human,
    build_verilogeval_machine,
)
from repro.bench.verilogeval_v2 import V2Config, build_verilogeval_v2


class TestVerilogEvalMachine:
    def test_full_size_matches_paper(self):
        suite = build_verilogeval_machine()
        assert len(suite) == MACHINE_TASK_COUNT == 143

    def test_no_symbolic_tasks(self):
        suite = build_verilogeval_machine(SuiteConfig(num_tasks=40))
        assert not any(task.is_symbolic for task in suite)

    def test_unique_task_ids(self):
        suite = build_verilogeval_machine(SuiteConfig(num_tasks=40))
        ids = [task.task_id for task in suite]
        assert len(ids) == len(set(ids))

    def test_scaled_size(self):
        assert len(build_verilogeval_machine(SuiteConfig(num_tasks=30))) == 30

    def test_machine_demands_softer_than_human(self):
        machine = build_verilogeval_machine(SuiteConfig(num_tasks=40, seed=2))
        human = build_verilogeval_human(SuiteConfig(num_tasks=40, seed=2))
        machine_difficulty = sum(t.demands.difficulty for t in machine) / len(machine)
        human_difficulty = sum(t.demands.difficulty for t in human) / len(human)
        assert machine_difficulty < human_difficulty


class TestVerilogEvalHuman:
    def test_full_size_and_symbolic_composition(self):
        suite = build_verilogeval_human()
        assert len(suite) == HUMAN_TASK_COUNT == 156
        categories = suite.categories()
        assert categories["truth_table"] == HUMAN_TRUTH_TABLE_COUNT == 10
        assert categories["waveform"] == HUMAN_WAVEFORM_COUNT == 13
        assert categories["state_diagram"] == HUMAN_STATE_DIAGRAM_COUNT == 21

    def test_symbolic_subset_is_44(self):
        suite = build_verilogeval_human()
        symbolic = build_symbolic_subset(suite)
        assert len(symbolic) == SYMBOLIC_TOTAL == 44
        assert all(task.is_symbolic for task in symbolic)

    def test_scaled_suite_keeps_mix(self):
        suite = build_verilogeval_human(SuiteConfig(num_tasks=40))
        assert len(suite) == 40
        categories = suite.categories()
        assert categories.get("truth_table", 0) >= 1
        assert categories.get("state_diagram", 0) >= 1

    def test_deterministic(self):
        first = build_verilogeval_human(SuiteConfig(num_tasks=20, seed=3))
        second = build_verilogeval_human(SuiteConfig(num_tasks=20, seed=3))
        assert [t.prompt.text for t in first] == [t.prompt.text for t in second]

    def test_category_diversity(self):
        suite = build_verilogeval_human()
        assert len(suite.categories()) >= 10


class TestRTLLM:
    def test_full_size(self):
        assert len(build_rtllm()) == RTLLM_TASK_COUNT == 29

    def test_demands_harder_than_human_families(self):
        suite = build_rtllm(RTLLMConfig(num_tasks=12, seed=1))
        assert all(task.demands.difficulty >= 0.3 for task in suite)
        assert all(task.suite == "rtllm" for task in suite)

    def test_no_symbolic_tasks(self):
        assert not any(task.is_symbolic for task in build_rtllm(RTLLMConfig(num_tasks=12)))


class TestVerilogEvalV2:
    def test_full_size(self):
        assert len(build_verilogeval_v2()) == 156

    def test_prompt_style(self):
        suite = build_verilogeval_v2(V2Config(num_tasks=10))
        assert all(task.prompt_style == "spec_to_rtl" for task in suite)
        assert all(task.prompt.text.startswith("Question:") for task in suite)

    def test_contains_symbolic_tasks(self):
        suite = build_verilogeval_v2(V2Config(num_tasks=30))
        assert any(task.is_symbolic for task in suite)


class TestSymbolicSuite:
    def test_composition(self):
        suite = build_symbolic_suite()
        counts = suite.categories()
        assert counts == {"truth_table": 10, "waveform": 13, "state_diagram": 21}

    def test_name(self):
        assert build_symbolic_suite().name == "Symbolic-Modalities"


class TestSuiteOperations:
    def test_subset_stratified(self, tiny_human_suite):
        subset = tiny_human_suite.subset(6, seed=1)
        assert len(subset) == 6
        assert len(subset.categories()) >= 3

    def test_subset_noop_when_larger(self, tiny_human_suite):
        assert tiny_human_suite.subset(1000) is tiny_human_suite

    def test_by_category(self, tiny_human_suite):
        for category, count in tiny_human_suite.categories().items():
            assert len(tiny_human_suite.by_category(category)) == count

    def test_add_and_iter(self):
        suite = BenchmarkSuite(name="s")
        assert len(suite) == 0
        for task in build_rtllm(RTLLMConfig(num_tasks=3)):
            suite.add(task)
        assert len(suite) == 3


class TestReferenceValidation:
    """The suite builders' reference designs must pass their own testbenches.

    Runs on small scaled suites via the batched runner with the differential
    oracle on, so the batch engine is cross-checked against the scalar
    simulator on real task families (combinational and sequential).
    """

    def test_verilogeval_references_self_consistent(self):
        from repro.bench.verilogeval import validate_references

        failures = validate_references(
            SuiteConfig(num_tasks=10, seed=5), max_tasks=10, differential=True
        )
        assert failures == {}

    def test_verilogeval_v2_references_self_consistent(self):
        from repro.bench.verilogeval_v2 import validate_references

        failures = validate_references(V2Config(num_tasks=8, seed=9), differential=True)
        assert failures == {}

    def test_rtllm_references_self_consistent(self):
        from repro.bench.rtllm import validate_references

        failures = validate_references(RTLLMConfig(num_tasks=12, seed=3), differential=True)
        assert failures == {}

    def test_scalar_and_batched_validation_agree(self):
        from repro.bench.evaluator import check_reference_designs

        suite = build_verilogeval_machine(SuiteConfig(num_tasks=8, seed=21))
        batched = check_reference_designs(suite, use_batch=True)
        scalar = check_reference_designs(suite, use_batch=False)
        assert set(batched) == set(scalar) == set()
