"""Chaos suite: injected crashes, hangs and raises must never sink a run.

Every test here drives real execution machinery (``run_checks``, the process
pool, the run engine and its journal) against the deterministic fault
injector in :mod:`repro.runs.faults` and asserts the fault-tolerance
contract:

* deadlines bound every attempt, cooperatively in-process and with a hard
  per-future deadline (plus worker recycle) on the pool;
* failures retry with degradation recorded, and verdicts that settle after a
  retry match the fault-free verdicts bit-for-bit;
* a unit that burns every attempt is quarantined — exactly that unit — while
  the rest of the batch completes and the journal stays resumable.

The flagship scenario mirrors the acceptance bar of the fault-tolerance PR:
worker kill + injected non-cooperative hang → the run completes within its
deadline budget, a resume re-executes zero units, exactly the hanging unit is
quarantined, and the journal agrees with a fault-free serial run on every
non-quarantined unit.
"""

from __future__ import annotations

import time
from functools import partial

import pytest

from repro.bench.evaluator import EvaluationConfig
from repro.bench.golden import VectorFunctionGolden, random_vectors
from repro.bench.jobs import (
    CheckRequest,
    ExecutionPolicy,
    ResultKey,
    design_key,
    mode_key,
    run_checks,
    stimulus_key,
)
from repro.bench.task import BenchmarkSuite, BenchmarkTask
from repro.core.llm.base import GeneratedSample, GenerationConfig, GenerationContext, LLMBackend
from repro.core.pipeline import HaVenPipeline
from repro.core.prompt import DesignPrompt, ModuleInterface, PortSpec
from repro.runs.aggregate import StreamingAggregator
from repro.runs.engine import RunEngine
from repro.runs.faults import (
    FAULTS_ENV,
    FaultSpec,
    clear_faults,
    faults_env_value,
    install_faults,
)
from repro.runs.manifest import ProfileSpec, RunManifest, SuiteSpec
from repro.runs.store import RunStore

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def _no_leftover_faults(monkeypatch):
    """Every test starts and ends with no fault plan active anywhere."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    clear_faults()
    yield
    clear_faults()


# --------------------------------------------------------------------------- fixtures
def _xor_fn(inputs):
    return {"y": inputs["a"] ^ inputs["b"]}


def _and_fn(inputs):
    return {"y": inputs["a"] & inputs["b"]}


def _or_fn(inputs):
    return {"y": inputs["a"] | inputs["b"]}


_TASK_SPECS = [
    ("chaos_xor", "assign y = a ^ b;", _xor_fn),
    ("chaos_and", "assign y = a & b;", _and_fn),
    ("chaos_or", "assign y = a | b;", _or_fn),
]


def _chaos_suite() -> BenchmarkSuite:
    """Combinational tasks whose golden factories pickle (module-level fns)."""
    suite = BenchmarkSuite(name="machine")
    for task_id, body, fn in _TASK_SPECS:
        interface = ModuleInterface(
            name="top_module",
            ports=[
                PortSpec("a", "input", 4),
                PortSpec("b", "input", 4),
                PortSpec("y", "output", 4),
            ],
        )
        reference = (
            "module top_module(input [3:0] a, input [3:0] b, output [3:0] y);\n"
            f"    {body}\nendmodule\n"
        )
        suite.add(
            BenchmarkTask(
                task_id=task_id,
                suite="machine",
                prompt=DesignPrompt(text=f"Implement {task_id}.", interface=interface),
                interface=interface,
                reference_source=reference,
                golden_factory=partial(VectorFunctionGolden, fn),
                stimulus_factory=partial(random_vectors, {"a": 4, "b": 4}, 10),
            )
        )
    return suite


def _requests(mode: str = "simulation") -> dict[str, CheckRequest]:
    """task id → one check request of the reference against its golden."""
    requests: dict[str, CheckRequest] = {}
    for task in _chaos_suite():
        stimulus = task.stimulus(7)
        key = ResultKey(
            design_key=design_key(task.reference_source),
            stimulus_key=stimulus_key(
                task.task_id,
                stimulus,
                task.check_outputs,
                task.clock,
                task.reset,
                reference_source=task.reference_source,
            ),
            mode=mode_key(mode, True, False, None),
        )
        requests[task.task_id] = CheckRequest(
            key=key,
            code=task.reference_source,
            task_id=task.task_id,
            golden_factory=task.golden_factory,
            stimulus=stimulus,
            reference_source=task.reference_source,
            check_outputs=task.check_outputs,
            clock=task.clock,
            reset=task.reset,
            mode=mode,
            formal_conflict_limit=None,
        )
    return requests


def _fast_policy(**overrides) -> ExecutionPolicy:
    defaults = dict(timeout_s=None, max_attempts=3, backoff_s=0.001, backoff_cap_s=0.01)
    defaults.update(overrides)
    return ExecutionPolicy(**defaults)


# --------------------------------------------------------------------------- serial faults
class TestSerialFaults:
    def test_transient_raise_retries_to_success(self):
        install_faults([FaultSpec("raise", task_id="chaos_xor", max_attempt=1)])
        requests = _requests()
        report = run_checks(list(requests.values()), max_workers=1, policy=_fast_policy())

        execution = report.executions[requests["chaos_xor"].key]
        assert execution.result.passed
        assert execution.attempts == 2
        assert execution.degradation == ("batch->scalar",)
        assert not execution.quarantined
        # The untouched tasks settled clean on their first attempt.
        for task_id in ("chaos_and", "chaos_or"):
            other = report.executions[requests[task_id].key]
            assert other.result.passed and other.attempts == 1 and not other.degradation

    def test_persistent_raise_quarantines_only_the_poison_unit(self):
        install_faults([FaultSpec("raise", task_id="chaos_and")])
        requests = _requests()
        report = run_checks(
            list(requests.values()), max_workers=1, policy=_fast_policy(max_attempts=2)
        )

        poisoned = report.executions[requests["chaos_and"].key]
        assert poisoned.quarantined
        assert poisoned.attempts == 2
        assert not poisoned.result.passed
        assert "quarantined after 2 attempt(s)" in poisoned.result.failure_summary
        assert report.quarantined() == {requests["chaos_and"].key: poisoned}
        for task_id in ("chaos_xor", "chaos_or"):
            assert report.executions[requests[task_id].key].result.passed

    def test_cooperative_hang_is_cut_by_the_deadline(self):
        install_faults(
            [FaultSpec("hang", task_id="chaos_or", hang_s=30.0, cooperative=True)]
        )
        requests = _requests()
        started = time.monotonic()
        report = run_checks(
            list(requests.values()),
            max_workers=1,
            policy=_fast_policy(timeout_s=0.2, max_attempts=2),
        )
        elapsed = time.monotonic() - started

        # Two attempts of a 0.2s budget each — nowhere near the 30s hang.
        assert elapsed < 5.0
        execution = report.executions[requests["chaos_or"].key]
        assert execution.quarantined and execution.timed_out
        assert "wall-clock budget" in execution.error

    def test_hung_codegen_backed_check_is_quarantined(self):
        """A hang in a codegen-pinned check is cut exactly like an interpreted one.

        The generated settle loops tick ``check_deadline`` per pass (pinned by
        the codegen unit tests); this proves the integration: a cooperative
        hang inside a ``backend="codegen"`` check burns its attempts against
        the same deadline budget and quarantines only the poison unit.
        """
        from dataclasses import replace

        install_faults(
            [FaultSpec("hang", task_id="chaos_and", hang_s=30.0, cooperative=True)]
        )
        requests = {
            task_id: replace(request, backend="codegen")
            for task_id, request in _requests().items()
        }
        started = time.monotonic()
        report = run_checks(
            list(requests.values()),
            max_workers=1,
            policy=_fast_policy(timeout_s=0.2, max_attempts=2),
        )
        elapsed = time.monotonic() - started

        assert elapsed < 5.0
        execution = report.executions[requests["chaos_and"].key]
        assert execution.quarantined and execution.timed_out
        assert "wall-clock budget" in execution.error
        # The healthy codegen-backed checks still settle their real verdicts.
        for task_id in ("chaos_xor", "chaos_or"):
            assert report.executions[requests[task_id].key].result.passed

    def test_deadline_degrades_formal_to_simulation(self):
        # The hang only hits attempt 1: the retry must have dropped the proof.
        install_faults(
            [
                FaultSpec(
                    "hang",
                    task_id="chaos_xor",
                    hang_s=30.0,
                    cooperative=True,
                    max_attempt=1,
                )
            ]
        )
        requests = _requests(mode="formal")
        report = run_checks(
            [requests["chaos_xor"]],
            max_workers=1,
            policy=_fast_policy(timeout_s=0.2),
        )
        execution = report.executions[requests["chaos_xor"].key]
        assert execution.result.passed
        assert execution.attempts == 2
        assert execution.degradation == ("formal->simulation",)


# --------------------------------------------------------------------------- pool faults
class TestPoolFaults:
    def test_worker_crash_rebuilds_pool_and_retries(self, monkeypatch):
        monkeypatch.setenv(
            FAULTS_ENV,
            faults_env_value([FaultSpec("crash", task_id="chaos_xor", max_attempt=1)]),
        )
        requests = _requests()
        report = run_checks(
            list(requests.values()),
            max_workers=2,
            policy=_fast_policy(timeout_s=10.0, backoff_s=0.01),
        )
        assert not report.quarantined()
        for request in requests.values():
            assert report.executions[request.key].result.passed
        # The crashing request needed at least the post-crash attempt; a crash
        # retry must NOT degrade (bit-for-bit parity with fault-free runs).
        crashed = report.executions[requests["chaos_xor"].key]
        assert crashed.attempts >= 2
        assert crashed.degradation == ()

    def test_backlog_deeper_than_workers_keeps_deadlines_honest(self, monkeypatch):
        # Hard deadlines arm at submission time, so the executor must never
        # submit more futures than it has workers: with 3 items on 2 workers,
        # each stalled ~0.5s under a 0.75s budget (+0.15s grace), the item
        # that waits for a free worker would otherwise burn its deadline in
        # the backlog and be falsely swept as a hung worker.
        monkeypatch.setenv(
            FAULTS_ENV,
            faults_env_value([FaultSpec("hang", hang_s=0.5, cooperative=False)]),
        )
        requests = _requests()
        report = run_checks(
            list(requests.values()),
            max_workers=2,
            policy=_fast_policy(timeout_s=0.75, max_attempts=3, hard_grace_s=0.15),
        )
        assert not report.quarantined()
        assert not report.warnings
        for request in requests.values():
            execution = report.executions[request.key]
            assert execution.result.passed
            assert execution.attempts == 1
            assert execution.degradation == ()

    def test_noncooperative_hang_is_killed_and_quarantined(self, monkeypatch):
        monkeypatch.setenv(
            FAULTS_ENV,
            faults_env_value(
                [FaultSpec("hang", task_id="chaos_and", hang_s=30.0, cooperative=False)]
            ),
        )
        requests = _requests()
        started = time.monotonic()
        report = run_checks(
            list(requests.values()),
            max_workers=2,
            policy=_fast_policy(
                timeout_s=0.3, max_attempts=2, backoff_s=0.01, hard_grace_s=0.3
            ),
        )
        elapsed = time.monotonic() - started

        # The worker never returns: only the parent's hard deadline (plus the
        # pool kill) can clear it.  30s of injected hang must not be waited.
        assert elapsed < 10.0
        quarantined = report.quarantined()
        assert set(quarantined) == {requests["chaos_and"].key}
        execution = quarantined[requests["chaos_and"].key]
        assert execution.timed_out
        assert "worker unresponsive" in execution.error
        for task_id in ("chaos_xor", "chaos_or"):
            assert report.executions[requests[task_id].key].result.passed


# --------------------------------------------------------------------------- evaluator chaos
class TestEvaluatorQuarantine:
    def test_quarantine_is_not_memoized_and_reattempts_next_call(self):
        """A transient infra fault must not be permanently scored as a failure."""
        from repro.bench.evaluator import BenchmarkEvaluator

        install_faults([FaultSpec("raise", task_id="chaos_xor")])
        config = EvaluationConfig(
            num_samples=1,
            ks=(1,),
            temperatures=(0.2,),
            max_attempts=1,
            retry_backoff_s=0.001,
        )
        evaluator = BenchmarkEvaluator(config)
        pipeline = HaVenPipeline(SaltedPerfectBackend(), use_sicot=False)
        suite = _chaos_suite()

        poisoned = evaluator.evaluate(pipeline, suite)
        by_task = {result.task_id: result for result in poisoned.task_results}
        assert by_task["chaos_xor"].num_quarantined == 1
        assert by_task["chaos_xor"].num_functional_passes == 0
        assert any(w["category"] == "quarantined" for w in evaluator.warnings)
        # The synthetic failed verdict stays out of the cross-run memo...
        xor_key = _sample_design_key("chaos_xor", 0)
        assert all(key.design_key != xor_key for key in evaluator.memo)

        # ...so once the fault clears, the same evaluator re-attempts the
        # check and the candidate scores on its real behaviour.
        clear_faults()
        recovered = evaluator.evaluate(pipeline, suite)
        by_task = {result.task_id: result for result in recovered.task_results}
        assert by_task["chaos_xor"].num_quarantined == 0
        assert by_task["chaos_xor"].num_functional_passes == 1
        assert any(key.design_key == xor_key for key in evaluator.memo)


# --------------------------------------------------------------------------- engine chaos
class SaltedPerfectBackend(LLMBackend):
    """Reference implementation, salted per sample so every unit is distinct."""

    name = "SaltedPerfect"

    def generate(self, context: GenerationContext, config: GenerationConfig):
        return [
            GeneratedSample(
                code=f"// sample {index}\n{context.reference_source}",
                sample_index=index,
            )
            for index in range(config.num_samples)
        ]


class StubResolver:
    """Resolver over the in-test suite (duck-typed ManifestResolver)."""

    def __init__(self, manifest: RunManifest):
        self.manifest = manifest
        self.config = manifest.config
        self._suite = _chaos_suite()
        self._pipeline = HaVenPipeline(SaltedPerfectBackend(), use_sicot=False)

    def suite(self, spec):
        return self._suite

    def tasks(self, spec):
        return list(self._suite)

    def suite_task_ids(self):
        return {
            spec.suite_id: [task.task_id for task in self._suite]
            for spec in self.manifest.suites
        }

    def pipeline(self, profile_id):
        return self._pipeline

    def pipeline_name(self, profile_id):
        return "stub"


def _chaos_manifest(max_workers: int = 2) -> RunManifest:
    return RunManifest(
        name="chaos",
        experiment="custom",
        scale={},
        config=EvaluationConfig(
            num_samples=2,
            ks=(1,),
            temperatures=(0.2,),
            max_workers=max_workers,
            check_timeout_s=0.4,
            max_attempts=2,
            retry_backoff_s=0.01,
        ),
        profiles=[ProfileSpec(profile_id="stub", kind="baseline", key="stub", display="Stub")],
        suites=[SuiteSpec("machine")],
    )


def _sample_design_key(task_id: str, sample_index: int) -> str:
    reference = next(
        task.reference_source for task in _chaos_suite() if task.task_id == task_id
    )
    return design_key(f"// sample {sample_index}\n{reference}")


class TestEngineChaos:
    def test_kill_and_hang_run_completes_resumes_and_matches_fault_free(
        self, tmp_path, monkeypatch
    ):
        """The acceptance scenario: crash + opaque hang under the run engine."""
        manifest = _chaos_manifest()
        monkeypatch.setenv(
            FAULTS_ENV,
            faults_env_value(
                [
                    # Kill the worker scoring chaos_xor sample 0, once.
                    FaultSpec(
                        "crash",
                        design_key=_sample_design_key("chaos_xor", 0),
                        max_attempt=1,
                    ),
                    # Hang the worker scoring chaos_or sample 1, forever.
                    FaultSpec(
                        "hang",
                        design_key=_sample_design_key("chaos_or", 1),
                        hang_s=30.0,
                        cooperative=False,
                    ),
                ]
            ),
        )

        chaos_store = RunStore(tmp_path / "chaos")
        engine = RunEngine(manifest, chaos_store, resolver=StubResolver(manifest))
        started = time.monotonic()
        stats = engine.run()
        elapsed = time.monotonic() - started

        # 3 tasks × 2 samples: the run completes despite the injected faults,
        # within the deadline budget (not the 30s the hang would cost).
        assert elapsed < 20.0
        assert stats.complete
        assert stats.executed == 5
        assert stats.quarantined == 1
        quarantined = chaos_store.quarantined_records()
        assert len(quarantined) == 1
        assert quarantined[0]["task"] == "chaos_or"
        assert quarantined[0]["sample"] == 1

        # Resume with no faults active: zero units re-execute — the
        # quarantined unit included.
        monkeypatch.delenv(FAULTS_ENV)
        resumed = RunEngine(
            manifest, RunStore(tmp_path / "chaos"), resolver=StubResolver(manifest)
        ).run()
        assert resumed.executed == 0 and resumed.quarantined == 0
        assert resumed.skipped == 6

        # A fault-free, fully serial run of the same manifest must agree
        # bit-for-bit on every non-quarantined unit's verdict.
        clean_store = RunStore(tmp_path / "clean")
        RunEngine(manifest, clean_store, resolver=StubResolver(manifest)).run()

        def verdicts(store):
            table = {}
            for record in store.records():
                if record.get("kind") != "unit":
                    continue
                outcome = dict(record["outcome"])
                outcome.pop("attempts", None)  # retries may differ, verdicts may not
                outcome.pop("degradation", None)
                outcome.pop("duration_s", None)  # wall clock is a measurement
                table[record["key"]] = outcome
            return table

        chaos_verdicts = verdicts(chaos_store)
        clean_verdicts = verdicts(clean_store)
        assert set(clean_verdicts) - set(chaos_verdicts) == {quarantined[0]["key"]}
        for key, outcome in chaos_verdicts.items():
            assert outcome == clean_verdicts[key]

        # The streaming aggregator accounts for the poison unit: the run is
        # complete but not healthy.
        progress = (
            StreamingAggregator(manifest, resolver=StubResolver(manifest))
            .feed_store(chaos_store)
            .progress()
        )
        assert progress.complete
        assert not progress.healthy
        assert progress.quarantined == 1
        assert progress.completed == 5
