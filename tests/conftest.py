"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.bench.verilogeval import SuiteConfig, build_verilogeval_human
from repro.core.dataset.corpus import CorpusConfig, CorpusGenerator
from repro.core.dataset.vanilla import VanillaDatasetGenerator


COUNTER_SOURCE = """
module counter #(parameter WIDTH = 4) (
    input clk,
    input rst,
    input en,
    output reg [WIDTH-1:0] count
);
    always @(posedge clk) begin
        if (rst)
            count <= {WIDTH{1'b0}};
        else if (en)
            count <= count + 1'b1;
    end
endmodule
"""

FSM_SOURCE = """
module two_state_fsm (
    input clk,
    input rst,
    input x,
    output reg out
);
    localparam A = 1'b0;
    localparam B = 1'b1;
    reg state, next_state;

    always @(posedge clk or posedge rst) begin
        if (rst)
            state <= A;
        else
            state <= next_state;
    end

    always @(*) begin
        case (state)
            A: next_state = x ? A : B;
            B: next_state = x ? B : A;
            default: next_state = A;
        endcase
    end

    always @(*) begin
        out = (state == B);
    end
endmodule
"""

ADDER_SOURCE = """
module adder4 (
    input [3:0] a,
    input [3:0] b,
    output [3:0] sum,
    output carry_out
);
    assign {carry_out, sum} = a + b;
endmodule
"""

MUX_SOURCE = """
module mux2 (
    input [7:0] in0,
    input [7:0] in1,
    input sel,
    output [7:0] out
);
    assign out = sel ? in1 : in0;
endmodule
"""

BROKEN_SOURCE = """
def adder_4bit()
    output = a + b
endmodule
"""


@pytest.fixture
def counter_source() -> str:
    return COUNTER_SOURCE


@pytest.fixture
def fsm_source() -> str:
    return FSM_SOURCE


@pytest.fixture
def adder_source() -> str:
    return ADDER_SOURCE


@pytest.fixture
def mux_source() -> str:
    return MUX_SOURCE


@pytest.fixture
def broken_source() -> str:
    return BROKEN_SOURCE


@pytest.fixture(scope="session")
def small_corpus():
    """A small deterministic synthetic corpus shared across dataset tests."""
    return CorpusGenerator(CorpusConfig(num_samples=60, seed=7)).generate()


@pytest.fixture(scope="session")
def small_vanilla_dataset(small_corpus):
    """Vanilla dataset generated from the small corpus."""
    return VanillaDatasetGenerator(seed=7).generate(small_corpus)


@pytest.fixture(scope="session")
def tiny_human_suite():
    """A small VerilogEval-Human style suite for evaluator tests."""
    return build_verilogeval_human(SuiteConfig(num_tasks=12, seed=5))
