"""Tests for the synthetic corpus generator (GitHub-corpus substitute)."""

from __future__ import annotations

from repro.core.dataset.corpus import CorpusConfig, CorpusGenerator
from repro.verilog.analyzer import Topic
from repro.verilog.syntax_checker import SyntaxChecker


class TestGeneration:
    def test_requested_size(self, small_corpus):
        assert len(small_corpus) == 60

    def test_deterministic_for_seed(self):
        first = CorpusGenerator(CorpusConfig(num_samples=20, seed=3)).generate()
        second = CorpusGenerator(CorpusConfig(num_samples=20, seed=3)).generate()
        assert [s.code for s in first] == [s.code for s in second]

    def test_different_seeds_differ(self):
        first = CorpusGenerator(CorpusConfig(num_samples=20, seed=3)).generate()
        second = CorpusGenerator(CorpusConfig(num_samples=20, seed=4)).generate()
        assert [s.code for s in first] != [s.code for s in second]

    def test_paths_look_like_github(self, small_corpus):
        assert all(sample.path.startswith("github/") for sample in small_corpus)
        assert len({sample.path for sample in small_corpus}) == len(small_corpus)

    def test_topic_diversity(self, small_corpus):
        topics = {sample.intended_topic for sample in small_corpus}
        assert len(topics) >= 6

    def test_flaw_rate_close_to_configured(self):
        config = CorpusConfig(num_samples=300, flaw_rate=0.25, seed=1)
        corpus = CorpusGenerator(config).generate()
        flawed = sum(1 for sample in corpus if sample.is_flawed)
        assert 0.15 <= flawed / len(corpus) <= 0.35

    def test_zero_flaw_rate(self):
        config = CorpusConfig(num_samples=40, flaw_rate=0.0, seed=1)
        corpus = CorpusGenerator(config).generate()
        checker = SyntaxChecker()
        assert all(checker.check(sample.code).ok for sample in corpus)

    def test_every_topic_generator_produces_compilable_code(self):
        generator = CorpusGenerator(CorpusConfig(num_samples=1, flaw_rate=0.0, seed=11))
        checker = SyntaxChecker()
        for topic in Topic:
            if topic in (Topic.ENCODER, Topic.MEMORY, Topic.REGISTER, Topic.COMBINATIONAL):
                # encoder/memory are not emitted directly; register/combinational checked below.
                continue
        for index, topic in enumerate(generator.config.topic_weights):
            code = generator._generate_module(topic, index)
            assert checker.check(code).ok, topic

    def test_weights_respected_roughly(self):
        config = CorpusConfig(num_samples=400, seed=5)
        corpus = CorpusGenerator(config).generate()
        counter_share = sum(1 for s in corpus if s.intended_topic is Topic.COUNTER) / len(corpus)
        assert 0.08 <= counter_share <= 0.26
