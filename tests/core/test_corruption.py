"""Tests for the taxonomy-keyed corruption injector."""

from __future__ import annotations

import random

import pytest

from repro.core.llm.corruption import CorruptionInjector
from repro.core.taxonomy import HallucinationSubtype
from repro.verilog.syntax_checker import compiles
from repro.verilog.simulator.testbench import CombinationalGolden, ResetSpec, run_functional_check
from repro.symbolic.state_diagram import parse_state_diagram

AND_MODULE = "module g(input a, input b, output y);\n    assign y = a & b;\nendmodule\n"

SD_TEXT = """A[out=0]--[x=0]->B
A[out=0]--[x=1]->A
B[out=1]--[x=0]->A
B[out=1]--[x=1]->B"""


@pytest.fixture
def injector() -> CorruptionInjector:
    return CorruptionInjector(random.Random(1))


class TestIndividualCorruptions:
    def test_every_subtype_changes_the_code(self, fsm_source, injector):
        for subtype in HallucinationSubtype:
            outcome = CorruptionInjector(random.Random(3)).inject(fsm_source, subtype)
            assert outcome.applied, subtype
            assert outcome.code != fsm_source
            assert outcome.record.subtype is subtype

    def test_syntax_corruption_breaks_compilation(self, counter_source):
        for seed in range(5):
            outcome = CorruptionInjector(random.Random(seed)).inject(
                counter_source, HallucinationSubtype.VERILOG_SYNTAX_MISAPPLICATION
            )
            assert outcome.applied
            assert not compiles(outcome.code)

    def test_operator_flip_still_compiles_but_fails(self, injector):
        outcome = injector.inject(AND_MODULE, HallucinationSubtype.TRUTH_TABLE_MISINTERPRETATION)
        assert outcome.applied
        assert compiles(outcome.code)
        golden = CombinationalGolden(lambda ins: {"y": ins["a"] & ins["b"]})
        stimulus = [{"a": a, "b": b} for a in (0, 1) for b in (0, 1)]
        assert not run_functional_check(outcome.code, golden, stimulus).passed

    def test_state_swap_breaks_fsm_behaviour(self):
        diagram = parse_state_diagram(SD_TEXT)
        reference = diagram.to_verilog(module_name="fsm_ref")
        outcome = CorruptionInjector(random.Random(0)).inject(
            reference, HallucinationSubtype.STATE_DIAGRAM_MISINTERPRETATION
        )
        assert outcome.applied
        assert compiles(outcome.code)
        stimulus = [{"x": bit, "rst": 0} for bit in [0, 1, 1, 0, 0, 1, 0]]
        result = run_functional_check(
            outcome.code, diagram.to_golden_model(), stimulus, reset=ResetSpec(signal="rst")
        )
        assert not result.passed

    def test_attribute_flip_inverts_reset_polarity(self, counter_source, injector):
        outcome = injector.inject(
            counter_source, HallucinationSubtype.VERILOG_ATTRIBUTE_MISUNDERSTANDING
        )
        assert outcome.applied
        assert "if (!rst)" in outcome.code
        assert compiles(outcome.code)

    def test_drop_default_removes_arm(self, fsm_source, injector):
        outcome = injector.inject(fsm_source, HallucinationSubtype.INCORRECT_CORNER_CASE_HANDLING)
        assert outcome.applied
        assert outcome.code.count("default") < fsm_source.count("default")
        assert compiles(outcome.code)

    def test_fsm_convention_break_freezes_state(self, fsm_source, injector):
        outcome = injector.inject(fsm_source, HallucinationSubtype.DESIGN_CONVENTION_MISAPPLICATION)
        assert outcome.applied
        assert "state <= state;" in outcome.code or "state =" in outcome.code
        assert compiles(outcome.code)

    def test_condition_corruption_swaps_logical_operator(self, injector):
        source = (
            "module m(input a, input b, output reg y);\n"
            "    always @(*) begin\n"
            "        if (a == 1'b1 && b == 1'b0) y = 1'b1;\n"
            "        else y = 1'b0;\n"
            "    end\n"
            "endmodule\n"
        )
        outcome = injector.inject(source, HallucinationSubtype.INSTRUCTIONAL_LOGIC_FAILURE)
        assert outcome.applied
        assert "||" in outcome.code
        assert compiles(outcome.code)

    def test_fallback_on_inapplicable_corruption(self, injector):
        # A pure-assign module has no default arm; the injector falls back to a
        # different defect rather than silently returning the original code.
        outcome = injector.inject(AND_MODULE, HallucinationSubtype.INCORRECT_CORNER_CASE_HANDLING)
        assert outcome.applied
        assert outcome.code != AND_MODULE

    def test_deterministic_for_seeded_rng(self, fsm_source):
        first = CorruptionInjector(random.Random(7)).inject(
            fsm_source, HallucinationSubtype.INCORRECT_LOGICAL_EXPRESSION
        )
        second = CorruptionInjector(random.Random(7)).inject(
            fsm_source, HallucinationSubtype.INCORRECT_LOGICAL_EXPRESSION
        )
        assert first.code == second.code


class TestCorruptionVsDetector:
    def test_injected_defects_are_classified_in_same_family(self, fsm_source):
        """Corruptions injected for a sub-type are recognised by the detector as
        hallucinations (usually of the same top-level type)."""
        from repro.core.hallucination_detector import HallucinationDetector
        from repro.core.taxonomy import type_of

        detector = HallucinationDetector()
        prompt = "Implement this FSM with the conventional structure.\n" + SD_TEXT
        agreements = 0
        checked = 0
        for subtype in (
            HallucinationSubtype.VERILOG_SYNTAX_MISAPPLICATION,
            HallucinationSubtype.INCORRECT_CORNER_CASE_HANDLING,
            HallucinationSubtype.STATE_DIAGRAM_MISINTERPRETATION,
        ):
            outcome = CorruptionInjector(random.Random(2)).inject(fsm_source, subtype)
            if not outcome.applied:
                continue
            checked += 1
            report = detector.classify(prompt, outcome.code, functional_passed=False)
            if report.primary is not None and type_of(report.primary.subtype) is type_of(subtype):
                agreements += 1
        assert checked >= 2
        assert agreements >= checked - 1
