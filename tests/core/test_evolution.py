"""Tests for instruction evolution (step 12)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.dataset.evolution import InstructionEvolver

SAMPLE = "Implement the logic below exactly: if a == 1 && b == 0; out = 1; otherwise out = 0."


class TestEvolution:
    def test_deterministic_for_seed(self):
        assert InstructionEvolver(seed=4).evolve(SAMPLE).evolved == InstructionEvolver(seed=4).evolve(SAMPLE).evolved

    def test_word_budget_respected(self):
        for seed in range(20):
            result = InstructionEvolver(seed=seed).evolve(SAMPLE)
            assert result.net_word_change <= 10

    def test_protected_tokens_preserved(self):
        for seed in range(20):
            evolved = InstructionEvolver(seed=seed).evolve(SAMPLE).evolved
            # The logical core (conditions, values, operators) must survive.
            assert "a == 1" in evolved
            assert "b == 0" in evolved
            assert "out = 1" in evolved
            assert "out = 0" in evolved

    def test_numbers_never_change(self):
        text = "When the count reaches 9 wrap to 0 and assert carry."
        for seed in range(10):
            evolved = InstructionEvolver(seed=seed).evolve(text).evolved
            assert "9" in evolved
            assert "0" in evolved

    def test_some_seeds_change_the_text(self):
        results = {InstructionEvolver(seed=seed).evolve(SAMPLE).evolved for seed in range(10)}
        assert len(results) > 1

    def test_evolve_many(self):
        evolver = InstructionEvolver(seed=2)
        results = evolver.evolve_many([SAMPLE, "Design a 4-bit adder."])
        assert len(results) == 2
        assert all(result.evolved for result in results)

    def test_custom_budget(self):
        evolver = InstructionEvolver(seed=1, max_word_change=2)
        result = evolver.evolve(SAMPLE)
        assert result.net_word_change <= 2


@settings(max_examples=40)
@given(st.integers(min_value=0, max_value=10_000))
def test_budget_property(seed):
    """Property: the ±10-word constraint of §III-D holds for every seed."""
    result = InstructionEvolver(seed=seed).evolve(SAMPLE)
    assert result.net_word_change <= 10
    assert result.evolved.strip()
