"""Tests for the curated exemplar library (step 4)."""

from __future__ import annotations

from repro.core.exemplars import EXEMPLAR_LIBRARY, ExemplarLibrary
from repro.verilog.analyzer import Attribute, ModuleAnalyzer, Topic
from repro.verilog.syntax_checker import compiles


class TestLibraryContents:
    def test_library_is_non_trivial(self):
        assert len(EXEMPLAR_LIBRARY) >= 14

    def test_every_exemplar_compiles(self):
        for exemplar in EXEMPLAR_LIBRARY:
            assert compiles(exemplar.code), f"exemplar {exemplar.name} does not compile"

    def test_every_exemplar_has_instruction(self):
        for exemplar in EXEMPLAR_LIBRARY:
            assert len(exemplar.instruction.split()) >= 10

    def test_paper_topics_covered(self):
        """The exemplars cover the module classes §III-C names explicitly."""
        topics = {exemplar.topic for exemplar in EXEMPLAR_LIBRARY}
        for required in (
            Topic.FSM,
            Topic.CLOCK_DIVIDER,
            Topic.COUNTER,
            Topic.SHIFT_REGISTER,
            Topic.ALU,
        ):
            assert required in topics

    def test_paper_attributes_covered(self):
        """Reset/clock-edge/enable attribute variants are all represented."""
        attributes = set()
        for exemplar in EXEMPLAR_LIBRARY:
            attributes |= exemplar.attributes
        for required in (
            Attribute.SYNC_RESET,
            Attribute.ASYNC_RESET,
            Attribute.POSEDGE_CLOCK,
            Attribute.NEGEDGE_CLOCK,
            Attribute.ACTIVE_HIGH_ENABLE,
            Attribute.ACTIVE_LOW_ENABLE,
        ):
            assert required in attributes, required

    def test_exemplar_attributes_match_analysis(self):
        """Declared attributes agree with what the analyzer finds in the code."""
        analyzer = ModuleAnalyzer()
        for exemplar in EXEMPLAR_LIBRARY:
            analysis = analyzer.analyze_source(exemplar.code)
            declared_resets = exemplar.attributes & {Attribute.SYNC_RESET, Attribute.ASYNC_RESET}
            if declared_resets:
                assert declared_resets <= analysis.attributes, exemplar.name

    def test_exemplar_topic_matches_analysis(self):
        analyzer = ModuleAnalyzer()
        matched = 0
        for exemplar in EXEMPLAR_LIBRARY:
            analysis = analyzer.analyze_source(exemplar.code)
            if exemplar.topic in analysis.topics:
                matched += 1
        assert matched >= len(EXEMPLAR_LIBRARY) * 0.8

    def test_unique_names(self):
        names = [exemplar.name for exemplar in EXEMPLAR_LIBRARY]
        assert len(names) == len(set(names))


class TestLibraryQueries:
    def test_by_topic(self):
        library = ExemplarLibrary()
        counters = library.by_topic(Topic.COUNTER)
        assert counters
        assert all(e.topic is Topic.COUNTER for e in counters)

    def test_by_attribute(self):
        library = ExemplarLibrary()
        async_reset = library.by_attribute(Attribute.ASYNC_RESET)
        assert async_reset
        assert all(Attribute.ASYNC_RESET in e.attributes for e in async_reset)

    def test_match_orders_by_attribute_overlap(self):
        library = ExemplarLibrary()
        matched = library.match({Topic.COUNTER}, {Attribute.ASYNC_RESET})
        assert matched
        assert matched[0].topic is Topic.COUNTER
        # The first match shares the async-reset attribute if any counter does.
        if any(Attribute.ASYNC_RESET in e.attributes for e in library.by_topic(Topic.COUNTER)):
            assert Attribute.ASYNC_RESET in matched[0].attributes

    def test_match_empty_for_uncovered_topic(self):
        library = ExemplarLibrary()
        assert library.match({Topic.MEMORY}, set()) == []

    def test_iteration_and_len(self):
        library = ExemplarLibrary()
        assert len(list(library)) == len(library)
