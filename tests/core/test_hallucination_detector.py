"""Tests for hallucination classification, anchored on the Table II examples."""

from __future__ import annotations

import pytest

from repro.core.hallucination_detector import HallucinationDetector, classify_generation
from repro.core.taxonomy import TABLE_II_EXAMPLES, HallucinationSubtype, HallucinationType
from repro.symbolic.detector import SymbolicModality


@pytest.fixture(scope="module")
def detector() -> HallucinationDetector:
    return HallucinationDetector()


class TestTableIIClassification:
    """Each canonical Table II example must be classified with its own sub-type."""

    @pytest.mark.parametrize("example", TABLE_II_EXAMPLES, ids=lambda e: e.subtype.value)
    def test_example_classified_correctly(self, detector, example):
        functional = False if example.subtype is not HallucinationSubtype.VERILOG_SYNTAX_MISAPPLICATION else None
        report = detector.classify(example.prompt, example.incorrect_code, functional_passed=functional)
        assert report.primary is not None, example.subtype
        assert report.primary.subtype is example.subtype

    @pytest.mark.parametrize(
        "example",
        [e for e in TABLE_II_EXAMPLES if e.correct_code],
        ids=lambda e: e.subtype.value,
    )
    def test_corrected_code_is_clean(self, detector, example):
        report = detector.classify(example.prompt, example.correct_code, functional_passed=True)
        assert report.is_clean, report.primary


class TestRequirementExtraction:
    def test_async_reset_requirement(self, detector):
        requirements = detector.extract_requirements("Use an asynchronous reset for this register.")
        assert requirements.wants_async_reset
        assert not requirements.wants_sync_reset

    def test_sync_reset_requirement(self, detector):
        requirements = detector.extract_requirements("The counter has a synchronous reset input.")
        assert requirements.wants_sync_reset

    def test_negedge_requirement(self, detector):
        requirements = detector.extract_requirements("Capture data on the falling edge of the clock.")
        assert requirements.wants_negedge_clock

    def test_enable_polarity_requirement(self, detector):
        requirements = detector.extract_requirements("Include an active-low enable signal.")
        assert requirements.wants_active_low_enable

    def test_fsm_convention_requirement(self, detector):
        requirements = detector.extract_requirements("Implement a digit detector using a conventional FSM.")
        assert requirements.wants_conventional_fsm

    def test_modality_detection(self, detector):
        requirements = detector.extract_requirements(
            "Implement the truth table below\na | b | out\n0|0|0\n1|1|1"
        )
        assert requirements.modality is SymbolicModality.TRUTH_TABLE


class TestStructuralChecks:
    def test_clean_code_produces_no_records(self, detector, counter_source):
        report = detector.classify("Design a counter with synchronous reset.", counter_source, True)
        assert report.is_clean

    def test_syntax_error_detected(self, detector, broken_source):
        report = detector.classify("Implement a 4-bit adder.", broken_source)
        assert report.primary.subtype is HallucinationSubtype.VERILOG_SYNTAX_MISAPPLICATION
        assert report.primary.hallucination_type is HallucinationType.KNOWLEDGE

    def test_sync_reset_when_async_requested(self, detector, counter_source):
        report = detector.classify(
            "Design a counter with an asynchronous reset.", counter_source, True
        )
        assert report.primary is not None
        assert report.primary.subtype is HallucinationSubtype.VERILOG_ATTRIBUTE_MISUNDERSTANDING

    def test_missing_default_flagged(self, detector):
        code = (
            "module m(input a, input b, output reg out);\n"
            "    always @(*) begin\n"
            "        case ({a, b})\n"
            "            2'b11: out = 1'b1;\n"
            "        endcase\n"
            "    end\n"
            "endmodule"
        )
        report = detector.classify("Output 1 only when both inputs are 1, otherwise 0.", code)
        assert report.primary.subtype is HallucinationSubtype.INCORRECT_CORNER_CASE_HANDLING

    def test_full_case_without_default_not_flagged(self, detector):
        code = (
            "module m(input a, output reg out);\n"
            "    always @(*) begin\n"
            "        case (a)\n"
            "            1'b0: out = 1'b0;\n"
            "            1'b1: out = 1'b1;\n"
            "        endcase\n"
            "    end\n"
            "endmodule"
        )
        report = detector.classify("Pass the input through.", code, True)
        assert report.is_clean

    def test_sequential_case_without_default_not_flagged(self, detector, fsm_source):
        # Sequential always blocks may legitimately omit defaults (no latch inferred).
        source = fsm_source.replace("default: next_state = A;", "default: next_state = A;")
        report = detector.classify("Implement the FSM.", source, True)
        assert report.is_clean or report.primary.subtype is not HallucinationSubtype.INCORRECT_CORNER_CASE_HANDLING

    def test_functional_failure_without_modality_is_logical(self, detector):
        code = "module m(input a, input b, input c, output out); assign out = (a + c) & b; endmodule"
        report = detector.classify("Output equals a plus b, then or c.", code, functional_passed=False)
        assert report.primary.hallucination_type is HallucinationType.LOGICAL

    def test_functional_failure_with_instructional_prompt(self, detector):
        prompt = "Implement: if a == 0 && b == 0; out = 0; elif a == 1 && b == 0; out = 0; else out = 1."
        code = "module m(input a, input b, output out); assign out = a | b; endmodule"
        report = detector.classify(prompt, code, functional_passed=False)
        assert report.primary.subtype is HallucinationSubtype.INSTRUCTIONAL_LOGIC_FAILURE

    def test_module_level_convenience(self, broken_source):
        report = classify_generation("Implement a 4-bit adder.", broken_source)
        assert not report.is_clean


class TestCounterexampleSharpening:
    """Formal counterexamples sharpen the symbolic-vs-logical subtype split."""

    TABLE_PROMPT = (
        "Implement the module described by this truth table:\n\n"
        "a | b | out\n"
        "0 | 0 | 0\n"
        "0 | 1 | 1\n"
        "1 | 0 | 1\n"
        "1 | 1 | 0\n"
    )
    XOR = "module top_module(input a, input b, output out); assign out = a ^ b; endmodule"
    AND = "module top_module(input a, input b, output out); assign out = a & b; endmodule"
    OR = "module top_module(input a, input b, output out); assign out = a | b; endmodule"

    def _counterexample(self, dut: str, reference: str):
        from repro.formal import prove_combinational_equivalence

        result = prove_combinational_equivalence(dut, reference)
        assert not result.equivalent
        return result.counterexample

    def test_counterexample_implies_functional_failure(self):
        counterexample = self._counterexample(self.AND, self.XOR)
        report = classify_generation(
            self.TABLE_PROMPT, self.AND, counterexample=counterexample
        )
        assert not report.is_clean  # functional_passed=None is upgraded to False

    def test_table_contradiction_is_symbolic_subtype(self):
        counterexample = self._counterexample(self.AND, self.XOR)
        report = classify_generation(
            self.TABLE_PROMPT, self.AND, False, counterexample=counterexample
        )
        assert report.primary.subtype is HallucinationSubtype.TRUTH_TABLE_MISINTERPRETATION
        assert "table row" in report.primary.evidence
        assert "out=" in report.primary.evidence

    def test_table_agreement_reclassifies_as_logical(self):
        # The DUT follows the prompt's table on the failing row (it IS the xor),
        # but the reference disagrees: the table was read correctly, so the
        # defect is logical, not a misinterpretation of the symbol.
        counterexample = self._counterexample(self.XOR, self.OR)
        report = classify_generation(
            self.TABLE_PROMPT, self.XOR, False, counterexample=counterexample
        )
        assert report.primary.subtype is HallucinationSubtype.INCORRECT_LOGICAL_EXPRESSION
        assert "agrees" in report.primary.evidence

    def test_counterexample_evidence_without_modality(self):
        prompt = "Implement out = a XOR b."
        counterexample = self._counterexample(self.AND, self.XOR)
        report = classify_generation(prompt, self.AND, False, counterexample=counterexample)
        assert report.primary.subtype is HallucinationSubtype.INCORRECT_LOGICAL_EXPRESSION
        assert "expected" in report.primary.evidence

    def test_classification_without_counterexample_unchanged(self):
        report = classify_generation(self.TABLE_PROMPT, self.AND, False)
        assert report.primary.subtype is HallucinationSubtype.TRUTH_TABLE_MISINTERPRETATION
        assert report.primary.evidence == ""

    def test_multi_output_sharpening_judges_only_failing_outputs(self):
        # A correct sibling output (out1) must not short-circuit classification
        # of the genuinely failing one (out2): the table-misread verdict wins.
        prompt = (
            "Implement the module described by this truth table:\n\n"
            "a | b | out1 | out2\n"
            "0 | 0 | 0 | 0\n"
            "0 | 1 | 0 | 1\n"
            "1 | 0 | 0 | 1\n"
            "1 | 1 | 1 | 0\n"
        )
        reference = (
            "module top_module(input a, input b, output out1, output out2);\n"
            "    assign out1 = a & b;\n"
            "    assign out2 = a ^ b;\n"
            "endmodule\n"
        )
        dut = (
            "module top_module(input a, input b, output out1, output out2);\n"
            "    assign out1 = a & b;\n"  # correct, agrees with the table
            "    assign out2 = a | b;\n"  # misreads the out2 column
            "endmodule\n"
        )
        counterexample = self._counterexample(dut, reference)
        assert [name for _, name in counterexample.mismatching_outputs] == ["out2"]
        report = classify_generation(prompt, dut, False, counterexample=counterexample)
        assert report.primary.subtype is HallucinationSubtype.TRUTH_TABLE_MISINTERPRETATION
        assert "out2=" in report.primary.evidence
