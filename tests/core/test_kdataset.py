"""Tests for the K-dataset generation flow (steps 6-8)."""

from __future__ import annotations

import pytest

from repro.core.dataset.kdataset import KDatasetGenerator
from repro.core.dataset.records import PairOrigin
from repro.core.exemplars import ExemplarLibrary
from repro.verilog.syntax_checker import SyntaxChecker


@pytest.fixture(scope="module")
def k_result(small_vanilla_dataset_module):
    return KDatasetGenerator(seed=0).generate(small_vanilla_dataset_module)


@pytest.fixture(scope="module")
def small_vanilla_dataset_module():
    from repro.core.dataset.corpus import CorpusConfig, CorpusGenerator
    from repro.core.dataset.vanilla import VanillaDatasetGenerator

    corpus = CorpusGenerator(CorpusConfig(num_samples=80, seed=13)).generate()
    return VanillaDatasetGenerator(seed=13).generate(corpus)


class TestPipelineStages:
    def test_valid_vanilla_excludes_broken_code(self, k_result):
        checker = SyntaxChecker()
        assert len(k_result.vanilla_dataset) < k_result.stats.corpus_pairs
        for pair in k_result.vanilla_dataset:
            assert pair.verified
            assert checker.check(pair.code).ok

    def test_k_dataset_pairs_are_verified(self, k_result):
        assert len(k_result.k_dataset) > 0
        assert all(pair.verified for pair in k_result.k_dataset)

    def test_k_dataset_origin_and_exemplar(self, k_result):
        for pair in k_result.k_dataset:
            assert pair.origin is PairOrigin.KNOWLEDGE
            assert pair.exemplar_name is not None

    def test_stats_monotonicity(self, k_result):
        stats = k_result.stats
        assert stats.corpus_pairs >= stats.parsable_pairs >= stats.valid_vanilla_pairs
        assert stats.topic_matched_pairs <= stats.valid_vanilla_pairs
        assert stats.verified_pairs <= stats.augmented_pairs

    def test_selection_ratios_resemble_paper(self, k_result):
        """§III-C: 550k corpus → 43k valid vanilla → 14k K pairs.

        At our scale the absolute counts differ, but the same qualitative funnel
        must hold: not everything survives verification, and the K-dataset is a
        strict subset (by code) of the valid vanilla pool, expanded by exemplars.
        """
        stats = k_result.stats
        assert 0.4 <= stats.valid_vanilla_pairs / stats.corpus_pairs <= 0.95
        assert stats.topic_matched_pairs >= stats.corpus_pairs * 0.2

    def test_max_exemplars_per_pair_respected(self, small_vanilla_dataset_module):
        generator = KDatasetGenerator(seed=0, max_exemplars_per_pair=1)
        result = generator.generate(small_vanilla_dataset_module)
        assert len(result.k_dataset) <= result.stats.topic_matched_pairs


class TestInstructionRewriting:
    def test_rewritten_instruction_differs_from_vanilla(self, k_result):
        vanilla_by_code = {pair.code: pair.instruction for pair in k_result.vanilla_dataset}
        changed = 0
        for pair in k_result.k_dataset:
            if pair.code in vanilla_by_code and pair.instruction != vanilla_by_code[pair.code]:
                changed += 1
        assert changed == len(k_result.k_dataset)

    def test_rewritten_instruction_mentions_attributes(self, k_result):
        """HDL-engineer alignment: attribute requirements appear in the instruction."""
        with_attribute_phrases = 0
        for pair in k_result.k_dataset:
            text = pair.instruction.lower()
            if any(
                phrase in text
                for phrase in ("reset", "enable", "clock edge", "parameterized", "conventions")
            ):
                with_attribute_phrases += 1
        assert with_attribute_phrases >= len(k_result.k_dataset) * 0.8

    def test_rewritten_instruction_mentions_interface(self, k_result):
        sample = k_result.k_dataset.pairs[0]
        assert "interface" in sample.instruction.lower() or "inputs" in sample.instruction.lower()

    def test_fsm_pairs_mention_convention(self, k_result):
        fsm_pairs = [p for p in k_result.k_dataset if p.exemplar_name and "fsm" in p.exemplar_name]
        for pair in fsm_pairs:
            assert "next-state" in pair.instruction or "state register" in pair.instruction

    def test_empty_vanilla_dataset(self):
        from repro.core.dataset.records import InstructionDataset

        result = KDatasetGenerator(seed=0).generate(InstructionDataset(name="empty"))
        assert len(result.k_dataset) == 0
        assert len(result.vanilla_dataset) == 0

    def test_custom_exemplar_library(self, small_vanilla_dataset_module):
        library = ExemplarLibrary()
        generator = KDatasetGenerator(exemplars=library, seed=1)
        result = generator.generate(small_vanilla_dataset_module)
        used = {pair.exemplar_name for pair in result.k_dataset}
        assert used <= {exemplar.name for exemplar in library}
