"""Tests for the L-dataset generation flow (steps 9-12)."""

from __future__ import annotations

import pytest

from repro.core.dataset.ldataset import LDatasetConfig, LDatasetGenerator, generate_kl_dataset
from repro.core.dataset.records import InstructionDataset, PairOrigin
from repro.verilog.syntax_checker import SyntaxChecker


@pytest.fixture(scope="module")
def l_result():
    return LDatasetGenerator(LDatasetConfig(num_concise=20, num_faithful=15, seed=3)).generate()


class TestGeneration:
    def test_requested_counts_approximately(self, l_result):
        stats = l_result.stats
        assert stats.concise_pairs + stats.faithful_pairs >= 30
        assert len(l_result.l_dataset) == stats.verified_pairs

    def test_both_categories_present(self, l_result):
        categories = {pair.metadata.get("category") for pair in l_result.l_dataset}
        assert categories == {"concise_expression", "faithful_implementation"}

    def test_all_pairs_compile(self, l_result):
        checker = SyntaxChecker()
        for pair in l_result.l_dataset:
            assert pair.verified
            assert checker.check(pair.code).ok

    def test_origin_is_logical(self, l_result):
        assert all(pair.origin is PairOrigin.LOGICAL for pair in l_result.l_dataset)

    def test_deterministic_for_seed(self):
        config = LDatasetConfig(num_concise=5, num_faithful=5, seed=9)
        first = LDatasetGenerator(config).generate().l_dataset
        second = LDatasetGenerator(config).generate().l_dataset
        assert [p.instruction for p in first] == [p.instruction for p in second]
        assert [p.code for p in first] == [p.code for p in second]

    def test_instructions_embed_io_values(self, l_result):
        """Step 10/11: the generated input-output values appear in the instruction."""
        for pair in l_result.l_dataset:
            if pair.metadata["category"] == "faithful_implementation":
                assert "out = " in pair.instruction or "out=" in pair.instruction

    def test_concise_pairs_use_assign_style(self, l_result):
        concise = [p for p in l_result.l_dataset if p.metadata["category"] == "concise_expression"]
        assert concise
        assert all("assign out" in pair.code for pair in concise)

    def test_faithful_pairs_handle_default(self, l_result):
        faithful = [p for p in l_result.l_dataset if p.metadata["category"] == "faithful_implementation"]
        assert faithful
        for pair in faithful:
            assert "default" in pair.code or "else" in pair.code

    def test_evolution_marks_metadata(self, l_result):
        assert all(pair.metadata.get("evolved") == "true" for pair in l_result.l_dataset)

    def test_evolution_can_be_disabled(self):
        config = LDatasetConfig(num_concise=3, num_faithful=3, seed=1, evolve_instructions=False)
        result = LDatasetGenerator(config).generate()
        assert all("evolved" not in pair.metadata for pair in result.l_dataset)
        assert result.stats.evolved_pairs == 0


class TestKLCombination:
    def test_kl_merge(self, l_result):
        k_like = InstructionDataset(name="k", pairs=list(l_result.l_dataset.pairs[:5]))
        kl = generate_kl_dataset(k_like, l_result.l_dataset, seed=0)
        assert len(kl) == len(k_like) + len(l_result.l_dataset)
        assert kl.name == "kl-dataset"

    def test_kl_merge_is_shuffled(self, l_result):
        k_like = InstructionDataset(name="k", pairs=list(l_result.l_dataset.pairs[:10]))
        kl = generate_kl_dataset(k_like, l_result.l_dataset, seed=1)
        first_codes = [pair.code for pair in kl.pairs[:10]]
        assert first_codes != [pair.code for pair in k_like.pairs]
