"""Tests for profiles, the behavioural CodeGen backend and fine-tuning."""

from __future__ import annotations

import pytest

from repro.core.llm.base import GenerationConfig, GenerationContext, TaskDemands
from repro.core.llm.finetune import DatasetMix, FineTuneConfig, FineTuner
from repro.core.llm.profiles import BASE_MODEL_PROFILES, BASELINE_PROFILES, CapabilityProfile, ProfileRegistry
from repro.core.llm.simulated import (
    MODALITY_DEMAND,
    SimulatedCodeGenLLM,
    success_probability,
)
from repro.core.dataset.records import InstructionCodePair, InstructionDataset, PairOrigin
from repro.core.prompt import ModuleInterface, PortSpec
from repro.symbolic.detector import SymbolicModality
from repro.verilog.analyzer import Attribute, Topic
from repro.verilog.syntax_checker import compiles

AND_MODULE = "module g(input a, input b, output y);\n    assign y = a & b;\nendmodule\n"


def _context(**kwargs) -> GenerationContext:
    defaults = dict(
        prompt_text="Implement an AND gate.",
        interface=ModuleInterface(
            name="g", ports=[PortSpec("a", "input"), PortSpec("b", "input"), PortSpec("y", "output")]
        ),
        reference_source=AND_MODULE,
        demands=TaskDemands(knowledge=0.3, logic=0.3, difficulty=0.3),
        task_id="task-1",
    )
    defaults.update(kwargs)
    return GenerationContext(**defaults)


class TestProfiles:
    def test_registry_contains_paper_baselines(self):
        for key in ("gpt-3.5", "gpt-4", "rtlcoder-deepseek", "origen-deepseek", "autovcoder-codeqwen"):
            assert key in BASELINE_PROFILES

    def test_haven_models_not_predefined(self):
        assert not any("haven" in key.lower() for key in BASELINE_PROFILES)

    def test_base_models_present(self):
        assert set(BASE_MODEL_PROFILES) == {"codellama-7b", "deepseek-coder-6.7b", "codeqwen-7b"}

    def test_skills_in_unit_range(self):
        for profile in BASELINE_PROFILES.values():
            for value in (
                profile.symbolic_skill,
                profile.knowledge_skill,
                profile.logic_skill,
                profile.syntax_skill,
                profile.general_skill,
                profile.chat_alignment,
            ):
                assert 0.0 <= value <= 1.0

    def test_specialist_models_beat_their_bases(self):
        assert (
            BASELINE_PROFILES["rtlcoder-deepseek"].knowledge_skill
            > BASELINE_PROFILES["deepseek-coder-6.7b"].knowledge_skill
        )
        assert (
            BASELINE_PROFILES["origen-deepseek"].knowledge_skill
            > BASELINE_PROFILES["rtlcoder-deepseek"].knowledge_skill
        )

    def test_effective_symbolic_skill(self):
        profile = BASELINE_PROFILES["gpt-4"]
        assert profile.effective_symbolic_skill(True) > profile.effective_symbolic_skill(False)

    def test_registry_lookup_and_register(self):
        registry = ProfileRegistry()
        assert registry.get("gpt-4").name == "GPT-4"
        with pytest.raises(KeyError):
            registry.get("unknown-model")
        custom = registry.get("gpt-4").with_updates(name="Custom")
        registry.register("custom", custom)
        assert registry.get("custom").name == "Custom"

    def test_latent_identity_defaults_to_name(self):
        profile = BASELINE_PROFILES["gpt-4"]
        assert profile.latent_identity() == profile.name


class TestSuccessProbability:
    def test_monotone_in_skill(self):
        assert success_probability(0.8, 0.5) > success_probability(0.4, 0.5)

    def test_half_at_equality(self):
        assert abs(success_probability(0.5, 0.5) - 0.5) < 1e-9

    def test_modality_demand_ordering_matches_table5(self):
        assert MODALITY_DEMAND[SymbolicModality.WAVEFORM] > MODALITY_DEMAND[SymbolicModality.STATE_DIAGRAM]
        assert MODALITY_DEMAND[SymbolicModality.STATE_DIAGRAM] > MODALITY_DEMAND[SymbolicModality.TRUTH_TABLE]


class TestSimulatedBackend:
    def test_generates_requested_number_of_samples(self):
        backend = SimulatedCodeGenLLM(BASELINE_PROFILES["gpt-4"])
        samples = backend.generate(_context(), GenerationConfig(num_samples=6))
        assert len(samples) == 6

    def test_generation_is_deterministic(self):
        backend = SimulatedCodeGenLLM(BASELINE_PROFILES["gpt-4"], seed=1)
        first = backend.generate(_context(), GenerationConfig(num_samples=4, seed=2))
        second = backend.generate(_context(), GenerationConfig(num_samples=4, seed=2))
        assert [s.code for s in first] == [s.code for s in second]

    def test_correct_samples_equal_reference(self):
        backend = SimulatedCodeGenLLM(BASELINE_PROFILES["gpt-4"])
        samples = backend.generate(_context(), GenerationConfig(num_samples=8))
        for sample in samples:
            if sample.is_intended_correct:
                assert sample.code == AND_MODULE
            else:
                assert sample.code != AND_MODULE

    def test_all_samples_are_verilog_text(self):
        backend = SimulatedCodeGenLLM(BASELINE_PROFILES["codellama-7b"])
        samples = backend.generate(_context(), GenerationConfig(num_samples=10))
        assert all(isinstance(sample.code, str) and sample.code.strip() for sample in samples)

    def test_stronger_model_passes_more(self):
        weak = SimulatedCodeGenLLM(BASELINE_PROFILES["codellama-7b"])
        strong = SimulatedCodeGenLLM(BASELINE_PROFILES["origen-deepseek"])
        demands = TaskDemands(knowledge=0.55, logic=0.55, difficulty=0.55)
        weak_passes = strong_passes = 0
        for index in range(40):
            context = _context(demands=demands, task_id=f"t{index}")
            weak_passes += sum(s.is_intended_correct for s in weak.generate(context, GenerationConfig(num_samples=1)))
            strong_passes += sum(s.is_intended_correct for s in strong.generate(context, GenerationConfig(num_samples=1)))
        assert strong_passes > weak_passes

    def test_sicot_refinement_helps_on_symbolic_tasks(self):
        backend = SimulatedCodeGenLLM(BASELINE_PROFILES["gpt-4o-mini"])
        demands = TaskDemands(modality=SymbolicModality.STATE_DIAGRAM, knowledge=0.3, logic=0.3, difficulty=0.3)
        raw = refined = 0
        for index in range(60):
            context_raw = _context(demands=demands, task_id=f"s{index}", prompt_refined=False)
            context_ref = _context(demands=demands, task_id=f"s{index}", prompt_refined=True)
            raw += backend.generate_one(context_raw).is_intended_correct
            refined += backend.generate_one(context_ref).is_intended_correct
        assert refined >= raw

    def test_pass_probability_closed_form(self):
        backend = SimulatedCodeGenLLM(BASELINE_PROFILES["gpt-4"])
        easy = backend.pass_probability(_context(demands=TaskDemands(knowledge=0.1, logic=0.1, difficulty=0.1)))
        hard = backend.pass_probability(_context(demands=TaskDemands(knowledge=0.9, logic=0.9, difficulty=0.9)))
        assert 0.0 <= hard < easy <= 1.0

    def test_spec_to_rtl_penalty_for_unaligned_models(self):
        backend = SimulatedCodeGenLLM(BASELINE_PROFILES["codellama-7b"])
        completion = backend.pass_probability(_context(prompt_style="completion"))
        chat = backend.pass_probability(_context(prompt_style="spec_to_rtl"))
        assert chat < completion

    def test_failed_samples_record_hallucination(self):
        backend = SimulatedCodeGenLLM(BASELINE_PROFILES["codellama-7b"])
        demands = TaskDemands(knowledge=0.95, logic=0.95, difficulty=0.95)
        samples = backend.generate(_context(demands=demands, task_id="hard"), GenerationConfig(num_samples=10))
        failing = [s for s in samples if not s.is_intended_correct]
        assert failing
        assert all(s.injected_hallucinations for s in failing)


class TestFineTuning:
    def _dataset(self, count: int, origin: PairOrigin, category: str | None = None) -> InstructionDataset:
        pairs = []
        for index in range(count):
            metadata = {"category": category} if category else {}
            pairs.append(
                InstructionCodePair(
                    instruction=f"i{index}",
                    code="module m(); endmodule",
                    origin=origin,
                    topics={Topic.COUNTER, Topic.FSM},
                    attributes={Attribute.SYNC_RESET, Attribute.ASYNC_RESET},
                    verified=True,
                    metadata=metadata,
                )
            )
        return InstructionDataset(name=origin.value, pairs=pairs)

    def test_vanilla_raises_general_and_syntax(self):
        base = BASE_MODEL_PROFILES["codeqwen-7b"]
        tuned, report = FineTuner().finetune(base, DatasetMix(vanilla=self._dataset(150, PairOrigin.VANILLA)))
        assert tuned.general_skill > base.general_skill
        assert tuned.syntax_skill > base.syntax_skill
        assert report.dataset_sizes["vanilla"] == 150

    def test_k_dataset_raises_knowledge(self):
        base = BASE_MODEL_PROFILES["codeqwen-7b"]
        tuner = FineTuner()
        with_k, _ = tuner.finetune(base, DatasetMix(k_dataset=self._dataset(120, PairOrigin.KNOWLEDGE)))
        without_k, _ = tuner.finetune(base, DatasetMix())
        assert with_k.knowledge_skill > without_k.knowledge_skill

    def test_l_dataset_raises_logic(self):
        base = BASE_MODEL_PROFILES["codeqwen-7b"]
        tuned, _ = FineTuner().finetune(
            base, DatasetMix(l_dataset=self._dataset(60, PairOrigin.LOGICAL, "concise_expression"))
        )
        assert tuned.logic_skill > base.logic_skill
        assert tuned.knowledge_skill == pytest.approx(base.knowledge_skill)

    def test_gains_saturate(self):
        base = BASE_MODEL_PROFILES["codeqwen-7b"]
        tuner = FineTuner()
        small, _ = tuner.finetune(base, DatasetMix(k_dataset=self._dataset(50, PairOrigin.KNOWLEDGE)))
        large, _ = tuner.finetune(base, DatasetMix(k_dataset=self._dataset(500, PairOrigin.KNOWLEDGE)))
        config = FineTuneConfig()
        assert small.knowledge_skill < large.knowledge_skill <= config.knowledge_cap + 1e-9
        # Diminishing returns: the second 450 pairs add less than the first 50.
        assert (large.knowledge_skill - small.knowledge_skill) < (small.knowledge_skill - base.knowledge_skill) * 9

    def test_more_data_never_hurts(self):
        base = BASE_MODEL_PROFILES["deepseek-coder-6.7b"]
        tuner = FineTuner()
        half, _ = tuner.finetune(base, DatasetMix(k_dataset=self._dataset(60, PairOrigin.KNOWLEDGE)))
        full, _ = tuner.finetune(base, DatasetMix(k_dataset=self._dataset(120, PairOrigin.KNOWLEDGE)))
        assert full.knowledge_skill >= half.knowledge_skill >= base.knowledge_skill

    def test_latent_key_preserved(self):
        base = BASE_MODEL_PROFILES["codeqwen-7b"]
        tuned, _ = FineTuner().finetune(base, DatasetMix(vanilla=self._dataset(10, PairOrigin.VANILLA)), "Tuned")
        assert tuned.latent_identity() == base.latent_identity()
        assert tuned.name == "Tuned"

    def test_symbolic_skill_untouched_without_k(self):
        base = BASE_MODEL_PROFILES["codellama-7b"]
        tuned, _ = FineTuner().finetune(base, DatasetMix(l_dataset=self._dataset(40, PairOrigin.LOGICAL)))
        assert tuned.symbolic_skill == pytest.approx(base.symbolic_skill)

    def test_report_contains_before_after(self):
        base = BASE_MODEL_PROFILES["codeqwen-7b"]
        _, report = FineTuner().finetune(base, DatasetMix(vanilla=self._dataset(30, PairOrigin.VANILLA)))
        assert set(report.skill_before) == set(report.skill_after)
        assert report.skill_after["general"] >= report.skill_before["general"]
