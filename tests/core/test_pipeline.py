"""Tests for the end-to-end HaVen pipeline."""

from __future__ import annotations

from repro.core.llm.base import GenerationConfig, TaskDemands
from repro.core.llm.profiles import BASELINE_PROFILES
from repro.core.llm.simulated import SimulatedCodeGenLLM
from repro.core.pipeline import HaVenPipeline
from repro.core.prompt import DesignPrompt, ModuleInterface, PortSpec
from repro.symbolic.detector import SymbolicModality

SD_PROMPT = """Implement this FSM.
A[out=0]--[x=0]->B
A[out=0]--[x=1]->A
B[out=1]--[x=0]->A
B[out=1]--[x=1]->B"""

FSM_REFERENCE = """module top_module(input clk, input rst, input x, output reg out);
    localparam A = 1'd0;
    localparam B = 1'd1;
    reg state, next_state;
    always @(posedge clk or posedge rst) begin
        if (rst) state <= A;
        else state <= next_state;
    end
    always @(*) begin
        case (state)
            A: next_state = x ? A : B;
            B: next_state = x ? B : A;
            default: next_state = A;
        endcase
    end
    always @(*) out = (state == B);
endmodule
"""

INTERFACE = ModuleInterface(
    name="top_module",
    ports=[
        PortSpec("clk", "input"),
        PortSpec("rst", "input"),
        PortSpec("x", "input"),
        PortSpec("out", "output"),
    ],
)


def _pipeline(use_sicot: bool) -> HaVenPipeline:
    backend = SimulatedCodeGenLLM(BASELINE_PROFILES["deepseek-coder-v2"], seed=0)
    return HaVenPipeline(backend, use_sicot=use_sicot)


class TestPipeline:
    def test_name_reflects_sicot(self):
        assert _pipeline(True).name.endswith("+SI-CoT")
        assert not _pipeline(False).name.endswith("+SI-CoT")

    def test_generation_returns_samples(self):
        result = _pipeline(True).generate(
            prompt=DesignPrompt(text=SD_PROMPT, interface=INTERFACE),
            interface=INTERFACE,
            reference_source=FSM_REFERENCE,
            demands=TaskDemands(modality=SymbolicModality.STATE_DIAGRAM),
            config=GenerationConfig(num_samples=3),
            task_id="pipe-1",
        )
        assert len(result.samples) == 3
        assert len(result.codes) == 3

    def test_sicot_produces_refined_prompt(self):
        result = _pipeline(True).generate(
            prompt=DesignPrompt(text=SD_PROMPT, interface=INTERFACE),
            interface=INTERFACE,
            reference_source=FSM_REFERENCE,
            demands=TaskDemands(modality=SymbolicModality.STATE_DIAGRAM),
            task_id="pipe-2",
        )
        assert result.refined_prompt is not None
        assert result.refined_prompt.modality is SymbolicModality.STATE_DIAGRAM
        assert "transit to state" in result.refined_prompt.text

    def test_without_sicot_prompt_not_refined(self):
        result = _pipeline(False).generate(
            prompt=DesignPrompt(text=SD_PROMPT, interface=INTERFACE),
            interface=INTERFACE,
            reference_source=FSM_REFERENCE,
            task_id="pipe-3",
        )
        assert result.refined_prompt is None

    def test_plain_prompt_with_sicot_not_marked_refined(self):
        pipeline = _pipeline(True)
        result = pipeline.generate(
            prompt=DesignPrompt(text="Design an AND gate.", interface=INTERFACE),
            interface=INTERFACE,
            reference_source=FSM_REFERENCE,
            task_id="pipe-4",
        )
        # SI-CoT ran, but there was no symbolic content to interpret.
        assert result.refined_prompt is not None
        assert result.refined_prompt.modality is SymbolicModality.NONE

    def test_default_config_and_demands(self):
        result = _pipeline(False).generate(
            prompt=DesignPrompt(text="Design the FSM.", interface=INTERFACE),
            interface=INTERFACE,
            reference_source=FSM_REFERENCE,
        )
        assert len(result.samples) == 1
