"""Tests for prompt / module-interface data structures."""

from __future__ import annotations

from repro.core.prompt import DesignPrompt, ModuleInterface, PortSpec
from repro.verilog.parser import parse_source
from repro.verilog.syntax_checker import check_source


class TestModuleInterface:
    def _interface(self) -> ModuleInterface:
        return ModuleInterface(
            name="alu",
            ports=[
                PortSpec("a", "input", 8),
                PortSpec("b", "input", 8),
                PortSpec("op", "input", 2),
                PortSpec("result", "output", 8),
            ],
        )

    def test_port_partitioning(self):
        interface = self._interface()
        assert [p.name for p in interface.input_ports] == ["a", "b", "op"]
        assert [p.name for p in interface.output_ports] == ["result"]

    def test_port_lookup(self):
        interface = self._interface()
        assert interface.port("op").width == 2
        assert interface.port("missing") is None

    def test_module_header_is_parsable_when_closed(self):
        interface = self._interface()
        header = interface.to_module_header()
        assert header.startswith("module alu (")
        source = header + "\n  assign result = a;\nendmodule"
        assert parse_source(source).modules[0].name == "alu"

    def test_module_header_with_reg_outputs(self):
        header = self._interface().to_module_header(output_reg=True)
        assert "output reg [7:0] result" in header

    def test_header_widths(self):
        header = self._interface().to_module_header()
        assert "input [7:0] a" in header
        assert "input [1:0] op" in header

    def test_describe(self):
        description = self._interface().describe()
        assert "alu" in description
        assert "8-bit input a" in description

    def test_single_bit_port_rendering(self):
        port = PortSpec("en", "input", 1)
        assert port.to_verilog() == "input en"


class TestDesignPrompt:
    def test_full_text_without_interface(self):
        prompt = DesignPrompt(text="Build a mux.")
        assert prompt.full_text() == "Build a mux."

    def test_full_text_with_interface(self):
        interface = ModuleInterface(name="mux", ports=[PortSpec("a", "input"), PortSpec("y", "output")])
        prompt = DesignPrompt(text="Build a mux.", interface=interface)
        assert "module mux" in prompt.full_text()
        assert prompt.full_text().startswith("Build a mux.")

    def test_header_compiles_inside_stub_module(self):
        interface = ModuleInterface(
            name="stub", ports=[PortSpec("a", "input", 4), PortSpec("y", "output", 4)]
        )
        source = interface.to_module_header() + "\n    assign y = a;\nendmodule"
        assert check_source(source).ok
