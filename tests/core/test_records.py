"""Tests for dataset record types and dataset operations."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.dataset.records import InstructionCodePair, InstructionDataset, PairOrigin
from repro.verilog.analyzer import Attribute, Topic


def _pair(index: int, origin: PairOrigin = PairOrigin.VANILLA, verified: bool = True) -> InstructionCodePair:
    return InstructionCodePair(
        instruction=f"instruction {index}",
        code=f"module m{index}(); endmodule",
        origin=origin,
        topics={Topic.COUNTER} if index % 2 else {Topic.FSM},
        attributes={Attribute.SYNC_RESET},
        verified=verified,
    )


class TestDataset:
    def test_add_extend_len(self):
        dataset = InstructionDataset(name="d")
        dataset.add(_pair(0))
        dataset.extend([_pair(1), _pair(2)])
        assert len(dataset) == 3

    def test_verified_only(self):
        dataset = InstructionDataset(name="d", pairs=[_pair(0, verified=True), _pair(1, verified=False)])
        assert len(dataset.verified_only()) == 1

    def test_stats(self):
        dataset = InstructionDataset(
            name="d",
            pairs=[_pair(0), _pair(1, origin=PairOrigin.KNOWLEDGE), _pair(2, origin=PairOrigin.LOGICAL)],
        )
        stats = dataset.stats()
        assert stats.total_pairs == 3
        assert stats.verified_pairs == 3
        assert stats.by_origin["knowledge"] == 1
        assert stats.verification_rate == 1.0

    def test_stats_empty(self):
        assert InstructionDataset(name="d").stats().verification_rate == 0.0

    def test_subset_deterministic(self):
        dataset = InstructionDataset(name="d", pairs=[_pair(i) for i in range(20)])
        first = dataset.subset(0.5, seed=1)
        second = dataset.subset(0.5, seed=1)
        assert [p.instruction for p in first] == [p.instruction for p in second]
        assert len(first) == 10

    def test_subset_fraction_bounds(self):
        dataset = InstructionDataset(name="d", pairs=[_pair(i) for i in range(4)])
        assert len(dataset.subset(0.0)) == 0
        assert len(dataset.subset(1.0)) == 4
        try:
            dataset.subset(1.5)
            assert False, "expected ValueError"
        except ValueError:
            pass

    def test_merge_shuffles_and_combines(self):
        a = InstructionDataset(name="a", pairs=[_pair(i) for i in range(5)])
        b = InstructionDataset(name="b", pairs=[_pair(i + 100, PairOrigin.LOGICAL) for i in range(5)])
        merged = a.merged_with(b, name="kl", seed=0)
        assert len(merged) == 10
        assert merged.name == "kl"
        origins = {pair.origin for pair in merged}
        assert origins == {PairOrigin.VANILLA, PairOrigin.LOGICAL}

    def test_jsonl_roundtrip(self):
        dataset = InstructionDataset(name="d", pairs=[_pair(0), _pair(1, PairOrigin.KNOWLEDGE)])
        text = dataset.to_jsonl()
        loaded = InstructionDataset.from_jsonl("d2", text)
        assert len(loaded) == 2
        assert loaded.pairs[1].origin is PairOrigin.KNOWLEDGE
        assert loaded.pairs[0].topics == dataset.pairs[0].topics

    def test_to_dict_serialisable(self):
        import json

        payload = json.dumps(_pair(0).to_dict())
        assert "instruction 0" in payload


@given(st.integers(min_value=0, max_value=40), st.floats(min_value=0.0, max_value=1.0))
def test_subset_size_property(count, fraction):
    dataset = InstructionDataset(name="d", pairs=[_pair(i) for i in range(count)])
    subset = dataset.subset(fraction, seed=0)
    assert len(subset) == round(count * fraction)
