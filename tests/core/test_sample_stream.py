"""Per-unit sample-stream determinism (the run engine's generation contract)."""

from __future__ import annotations

from repro.core.llm.base import GenerationConfig, TaskDemands
from repro.core.llm.profiles import BASELINE_PROFILES
from repro.core.llm.simulated import SimulatedCodeGenLLM, sample_stream_key
from repro.core.pipeline import HaVenPipeline
from repro.core.prompt import DesignPrompt, ModuleInterface, PortSpec
from test_llm import _context

MUX_MODULE = (
    "module g(input a, input b, input s, output y);\n"
    "    assign y = s ? b : a;\nendmodule\n"
)


def backend(key: str = "codellama-7b", seed: int = 0) -> SimulatedCodeGenLLM:
    from repro.core.llm.profiles import BASE_MODEL_PROFILES

    registry = {**BASE_MODEL_PROFILES, **BASELINE_PROFILES}
    return SimulatedCodeGenLLM(registry[key], seed=seed)


class TestGenerateAt:
    def test_matches_serial_generation(self):
        context = _context(reference_source=MUX_MODULE, demands=TaskDemands(logic=0.7, difficulty=0.6))
        config = GenerationConfig(temperature=0.5, num_samples=6, seed=3)
        llm = backend()
        serial = llm.generate(context, config)
        for index in range(6):
            isolated = llm.generate_at(context, config, index)
            assert isolated.code == serial[index].code
            assert isolated.sample_index == index

    def test_independent_of_num_samples(self):
        context = _context(reference_source=MUX_MODULE, demands=TaskDemands(difficulty=0.7))
        llm = backend()
        few = GenerationConfig(temperature=0.2, num_samples=2, seed=0)
        many = GenerationConfig(temperature=0.2, num_samples=10, seed=0)
        assert llm.generate_at(context, few, 1).code == llm.generate(context, many)[1].code

    def test_base_class_fallback_matches(self):
        """The LLMBackend default (generate a prefix and index it) agrees."""
        from repro.core.llm.base import LLMBackend

        context = _context(reference_source=MUX_MODULE, demands=TaskDemands(difficulty=0.6))
        config = GenerationConfig(temperature=0.8, num_samples=4, seed=1)
        llm = backend()
        fallback = LLMBackend.generate_at(llm, context, config, 3)
        assert fallback.code == llm.generate_at(context, config, 3).code


class TestPipelineSampleIndices:
    def test_subset_matches_full_generation(self):
        pipeline = HaVenPipeline(backend("gpt-4"), use_sicot=False)
        prompt = DesignPrompt(text="Implement a 2:1 mux.")
        interface = ModuleInterface(
            name="g",
            ports=[
                PortSpec("a", "input"),
                PortSpec("b", "input"),
                PortSpec("s", "input"),
                PortSpec("y", "output"),
            ],
        )
        config = GenerationConfig(temperature=0.5, num_samples=5, seed=2)
        kwargs = dict(
            prompt=prompt,
            interface=interface,
            reference_source=MUX_MODULE,
            demands=TaskDemands(difficulty=0.6),
            config=config,
            task_id="mux-1",
        )
        full = pipeline.generate(**kwargs)
        subset = pipeline.generate(**kwargs, sample_indices=[4, 1])
        assert [sample.sample_index for sample in subset.samples] == [4, 1]
        assert subset.samples[0].code == full.samples[4].code
        assert subset.samples[1].code == full.samples[1].code


class TestTemperatureKeying:
    def test_distinct_temperatures_never_collide(self):
        context = _context()
        for seed in range(3):
            low = GenerationConfig(temperature=0.2, num_samples=1, seed=seed)
            high = GenerationConfig(temperature=0.8, num_samples=1, seed=seed)
            key_low = sample_stream_key("id", 0, context.task_id, low, 0)
            key_high = sample_stream_key("id", 0, context.task_id, high, 0)
            assert key_low != key_high

    def test_temperature_type_is_canonicalised(self):
        """An int-typed temperature keys identically to its float twin."""
        context = _context()
        as_int = GenerationConfig(temperature=0, num_samples=1, seed=0)
        as_float = GenerationConfig(temperature=0.0, num_samples=1, seed=0)
        assert sample_stream_key("id", 0, context.task_id, as_int, 0) == sample_stream_key(
            "id", 0, context.task_id, as_float, 0
        )
        llm = backend()
        assert (
            llm.generate_at(context, as_int, 0).code
            == llm.generate_at(context, as_float, 0).code
        )

    def test_temperature_changes_sampling(self):
        """Different temperatures draw from genuinely different streams."""
        context = _context(
            reference_source=MUX_MODULE,
            demands=TaskDemands(logic=0.8, difficulty=0.8, knowledge=0.7),
        )
        llm = backend()
        codes_low = [
            llm.generate_at(context, GenerationConfig(temperature=0.2, num_samples=8, seed=s), i).code
            for s in range(4)
            for i in range(8)
        ]
        codes_high = [
            llm.generate_at(context, GenerationConfig(temperature=0.9, num_samples=8, seed=s), i).code
            for s in range(4)
            for i in range(8)
        ]
        assert codes_low != codes_high
