"""Tests for the SI-CoT pipeline (Fig. 1, steps 1-3)."""

from __future__ import annotations

from repro.core.prompt import DesignPrompt, ModuleInterface, PortSpec
from repro.core.sicot import SICoTConfig, SICoTPipeline, infer_interface, refine_prompt
from repro.symbolic.detector import SymbolicModality
from repro.symbolic.state_diagram import StateDiagram

SD_PROMPT = """Implement this FSM with active-high reset.
A[out=0]--[x=0]->B
A[out=0]--[x=1]->A
B[out=1]--[x=0]->A
B[out=1]--[x=1]->B"""

TT_PROMPT = """Implement the truth table below.
a | b | out
0 | 0 | 0
0 | 1 | 0
1 | 0 | 0
1 | 1 | 1"""

WF_PROMPT = """Implement the waveform behaviour.
a: 0 1 0 1
b: 0 0 1 1
out: 0 0 0 1"""


class TestStep1Identification:
    def test_plain_prompt_untouched_except_header(self):
        pipeline = SICoTPipeline(SICoTConfig(add_module_header=False))
        refined = pipeline.refine(DesignPrompt(text="Design a 4-bit adder."))
        assert refined.modality is SymbolicModality.NONE
        assert refined.text == "Design a 4-bit adder."
        assert not refined.was_refined

    def test_symbolic_prompt_identified(self):
        refined = refine_prompt(SD_PROMPT)
        assert refined.modality is SymbolicModality.STATE_DIAGRAM
        assert any("identify symbolic components" in step for step in refined.reasoning_steps)


class TestStep2Interpretation:
    def test_state_diagram_interpreted(self):
        refined = refine_prompt(SD_PROMPT)
        assert "States&Outputs:" in refined.text
        assert "transit to state" in refined.interpretation
        assert isinstance(refined.parsed_component, StateDiagram)
        # The raw arrow notation is replaced by the natural-language description.
        assert "-->" not in refined.text and "]->" not in refined.text

    def test_truth_table_parsed(self):
        refined = refine_prompt(TT_PROMPT)
        assert refined.modality is SymbolicModality.TRUTH_TABLE
        assert "If a=1, b=1, then out=1;" in refined.text

    def test_waveform_parsed(self):
        refined = refine_prompt(WF_PROMPT)
        assert refined.modality is SymbolicModality.WAVEFORM
        assert "When time is 0ns" in refined.text

    def test_prose_retained(self):
        refined = refine_prompt(SD_PROMPT)
        assert "Implement this FSM" in refined.text

    def test_interpretation_disabled_by_config(self):
        pipeline = SICoTPipeline(SICoTConfig(interpret_state_diagrams=False, add_module_header=False))
        refined = pipeline.refine(DesignPrompt(text=SD_PROMPT))
        assert refined.interpretation == ""
        assert refined.text == SD_PROMPT

    def test_keep_original_block_option(self):
        pipeline = SICoTPipeline(SICoTConfig(keep_original_block=True))
        refined = pipeline.refine(DesignPrompt(text=TT_PROMPT))
        assert "|" in refined.text  # original table kept alongside the interpretation


class TestStep3ModuleHeader:
    def test_header_added_from_interface(self):
        interface = ModuleInterface(
            name="adder", ports=[PortSpec("a", "input", 4), PortSpec("y", "output", 4)]
        )
        refined = refine_prompt("Design a 4-bit adder.", interface=interface)
        assert refined.added_module_header
        assert "module adder" in refined.text

    def test_header_inferred_from_state_diagram(self):
        refined = refine_prompt(SD_PROMPT)
        assert refined.added_module_header
        assert "module top_module" in refined.text
        assert "input x" in refined.text
        assert "output out" in refined.text

    def test_header_not_duplicated(self):
        prompt_with_header = "Design an inverter.\nmodule inv(input a, output y);"
        refined = refine_prompt(prompt_with_header)
        assert not refined.added_module_header

    def test_header_step_can_be_disabled(self):
        pipeline = SICoTPipeline(SICoTConfig(add_module_header=False))
        refined = pipeline.refine(DesignPrompt(text=TT_PROMPT))
        assert not refined.added_module_header
        assert "module " not in refined.text

    def test_no_header_when_nothing_to_infer(self):
        refined = refine_prompt("Design something combinational.")
        assert not refined.added_module_header


class TestInterfaceInference:
    def test_from_truth_table(self):
        refined = refine_prompt(TT_PROMPT)
        interface = infer_interface(refined.parsed_component)
        assert [p.name for p in interface.input_ports] == ["a", "b"]
        assert [p.name for p in interface.output_ports] == ["out"]

    def test_from_state_diagram_includes_clock_and_reset(self):
        refined = refine_prompt(SD_PROMPT)
        interface = infer_interface(refined.parsed_component)
        names = [p.name for p in interface.ports]
        assert names[:2] == ["clk", "rst"]

    def test_from_unknown_object(self):
        assert infer_interface(None) is None
        assert infer_interface(42) is None


class TestTable3Examples:
    def test_state_diagram_example_matches_table3(self):
        text = "A[out=0]--[x=0]->B\nA[out=0]--[x=1]->A\nB[out=1]--[x=0]->A\nB[out=1]--[x=1]->B"
        refined = refine_prompt(text)
        assert "1. state A(out=0)" in refined.interpretation
        assert "2. state B(out=1)" in refined.interpretation
        assert "From state A: If x=0, then transit to state B" in refined.interpretation

    def test_truth_table_example_matches_table3(self):
        refined = refine_prompt(TT_PROMPT)
        assert "Variables: 1. a(input); 2. b(input); 3. out(output)" in refined.interpretation
