"""Tests for the hallucination taxonomy (Table II)."""

from __future__ import annotations

from repro.core.taxonomy import (
    SUBTYPE_TO_TYPE,
    TABLE_II_EXAMPLES,
    HallucinationRecord,
    HallucinationSubtype,
    HallucinationType,
    TaxonomySummary,
    subtypes_of,
    type_of,
)
from repro.verilog.syntax_checker import compiles


class TestTaxonomyStructure:
    def test_three_top_level_types(self):
        assert len(HallucinationType) == 3

    def test_nine_subtypes(self):
        assert len(HallucinationSubtype) == 9
        assert len(SUBTYPE_TO_TYPE) == 9

    def test_symbolic_subtypes(self):
        symbolic = subtypes_of(HallucinationType.SYMBOLIC)
        assert set(symbolic) == {
            HallucinationSubtype.STATE_DIAGRAM_MISINTERPRETATION,
            HallucinationSubtype.WAVEFORM_MISINTERPRETATION,
            HallucinationSubtype.TRUTH_TABLE_MISINTERPRETATION,
        }

    def test_knowledge_subtypes(self):
        knowledge = subtypes_of(HallucinationType.KNOWLEDGE)
        assert len(knowledge) == 3
        assert HallucinationSubtype.VERILOG_SYNTAX_MISAPPLICATION in knowledge

    def test_logical_subtypes(self):
        logical = subtypes_of(HallucinationType.LOGICAL)
        assert len(logical) == 3
        assert HallucinationSubtype.INCORRECT_CORNER_CASE_HANDLING in logical

    def test_type_of_consistency(self):
        for subtype in HallucinationSubtype:
            assert type_of(subtype) in HallucinationType

    def test_record_exposes_type(self):
        record = HallucinationRecord(subtype=HallucinationSubtype.INCORRECT_LOGICAL_EXPRESSION)
        assert record.hallucination_type is HallucinationType.LOGICAL


class TestTableIIExamples:
    def test_every_subtype_has_an_example(self):
        covered = {example.subtype for example in TABLE_II_EXAMPLES}
        assert covered == set(HallucinationSubtype)

    def test_examples_have_prompt_code_and_analysis(self):
        for example in TABLE_II_EXAMPLES:
            assert example.prompt.strip()
            assert example.incorrect_code.strip()
            assert example.error_analysis.strip()

    def test_syntax_example_does_not_compile(self):
        example = next(
            e for e in TABLE_II_EXAMPLES
            if e.subtype is HallucinationSubtype.VERILOG_SYNTAX_MISAPPLICATION
        )
        assert not compiles(example.incorrect_code)

    def test_non_syntax_examples_compile(self):
        for example in TABLE_II_EXAMPLES:
            if example.subtype is HallucinationSubtype.VERILOG_SYNTAX_MISAPPLICATION:
                continue
            assert compiles(example.incorrect_code), example.subtype

    def test_correct_code_compiles_where_given(self):
        for example in TABLE_II_EXAMPLES:
            if example.correct_code:
                assert compiles(example.correct_code), example.subtype


class TestSummary:
    def test_counts_by_type(self):
        summary = TaxonomySummary()
        summary.add(HallucinationRecord(subtype=HallucinationSubtype.TRUTH_TABLE_MISINTERPRETATION))
        summary.add(HallucinationRecord(subtype=HallucinationSubtype.TRUTH_TABLE_MISINTERPRETATION))
        summary.add(HallucinationRecord(subtype=HallucinationSubtype.INCORRECT_LOGICAL_EXPRESSION))
        assert summary.total == 3
        assert summary.count(HallucinationType.SYMBOLIC) == 2
        assert summary.count(HallucinationType.LOGICAL) == 1
        assert summary.count(HallucinationType.KNOWLEDGE) == 0
