"""Tests for vanilla instruction generation (the GPT-3.5 describer substitute)."""

from __future__ import annotations

from repro.core.dataset.records import PairOrigin
from repro.core.dataset.vanilla import SimulatedDescriptionWriter, VanillaDatasetGenerator


class TestDescriptionWriter:
    def test_description_mentions_module_name_and_ports(self, counter_source):
        writer = SimulatedDescriptionWriter(seed=0)
        description = writer.describe(counter_source)
        assert "counter" in description
        assert "clk" in description
        assert "count" in description

    def test_description_mentions_topic(self, counter_source):
        description = SimulatedDescriptionWriter(seed=1).describe(counter_source)
        assert "counter" in description.lower()

    def test_description_for_unparsable_code(self, broken_source):
        description = SimulatedDescriptionWriter(seed=0).describe(broken_source)
        assert description
        assert "def adder_4bit" in description

    def test_deterministic_for_seed(self, fsm_source):
        assert (
            SimulatedDescriptionWriter(seed=3).describe(fsm_source)
            == SimulatedDescriptionWriter(seed=3).describe(fsm_source)
        )

    def test_descriptions_are_generic_not_engineer_style(self, counter_source):
        """Vanilla instructions must NOT contain the HDL-engineer attribute phrasing
        that the K-dataset rewriting adds later (that is the whole point of Table I)."""
        description = SimulatedDescriptionWriter(seed=0).describe(counter_source)
        assert "synchronous" not in description.lower()
        assert "active-high" not in description.lower()


class TestVanillaDatasetGenerator:
    def test_one_pair_per_sample(self, small_corpus, small_vanilla_dataset):
        assert len(small_vanilla_dataset) == len(small_corpus)

    def test_pairs_have_origin_and_metadata(self, small_vanilla_dataset):
        for pair in small_vanilla_dataset:
            assert pair.origin is PairOrigin.VANILLA
            assert pair.metadata.get("path", "").startswith("github/")
            assert pair.instruction
            assert pair.code

    def test_parsable_pairs_have_topics(self, small_vanilla_dataset):
        with_topics = [pair for pair in small_vanilla_dataset if pair.topics]
        assert len(with_topics) >= len(small_vanilla_dataset) * 0.5

    def test_unverified_until_k_stage(self, small_vanilla_dataset):
        assert all(not pair.verified for pair in small_vanilla_dataset)
