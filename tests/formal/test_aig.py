"""Tests for the AIG netlist substrate and the logic-layer encoders."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.formal.aig import AIG, FALSE, TRUE, FormalEncodingError, SymVector, concat_sym, negate
from repro.formal.encode import bittable_to_aig, expr_to_aig
from repro.logic.bittable import BitTable
from repro.logic.expr import And, BoolExpr, Const, Not, Or, RandomExpressionGenerator, Var, Xor


class TestAIGBasics:
    def test_constants(self):
        aig = AIG()
        assert aig.const(0) == FALSE
        assert aig.const(1) == TRUE
        assert negate(FALSE) == TRUE

    def test_and_folding(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.AND(a, FALSE) == FALSE
        assert aig.AND(a, TRUE) == a
        assert aig.AND(a, a) == a
        assert aig.AND(a, negate(a)) == FALSE

    def test_hash_consing_shares_structure(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        first = aig.AND(a, b)
        second = aig.AND(b, a)  # operand order is normalised
        assert first == second
        assert aig.num_ands == 1

    def test_duplicate_input_rejected(self):
        aig = AIG()
        aig.add_input("a")
        with pytest.raises(ValueError):
            aig.add_input("a")

    def test_mux_folds_on_constant_select(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        assert aig.MUX(TRUE, a, b) == a
        assert aig.MUX(FALSE, a, b) == b
        assert aig.MUX(a, b, b) == b

    def test_or_all_and_all_empty(self):
        aig = AIG()
        assert aig.and_all([]) == TRUE
        assert aig.or_all([]) == FALSE

    def test_evaluate_truth_table(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        xor = aig.XOR(a, b)
        for va, vb in itertools.product((0, 1), repeat=2):
            assert aig.evaluate([xor], {"a": va, "b": vb}) == [va ^ vb]

    def test_support_and_cone(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        aig.add_input("unused")
        root = aig.OR(a, b)
        assert aig.support([root]) == {"a", "b"}
        cone = aig.cone([root])
        # Topological order: fanins appear before the gates using them.
        positions = {node: index for index, node in enumerate(cone)}
        for node in cone:
            if not aig.is_input(node):
                left, right = aig.fanin(node)
                assert positions[left >> 1] < positions[node]
                assert positions[right >> 1] < positions[node]


class TestSymVector:
    def test_constant_roundtrip(self):
        vector = SymVector.constant(0b1011, 6)
        assert vector.width == 6
        assert vector.constant_value() == 0b1011

    def test_resize_and_slice(self):
        vector = SymVector.constant(0b1011, 4)
        assert vector.resized(2).constant_value() == 0b11
        assert vector.resized(6).constant_value() == 0b1011
        assert vector.slice(3, 2).constant_value() == 0b10

    def test_concat_is_msb_first(self):
        high = SymVector.constant(0b10, 2)
        low = SymVector.constant(0b01, 2)
        assert concat_sym([high, low]).constant_value() == 0b1001

    def test_non_constant_value_is_none(self):
        aig = AIG()
        a = aig.add_input("a")
        assert SymVector((a, TRUE)).constant_value() is None


class TestExprEncoding:
    def test_matches_legacy_evaluate(self):
        generator = RandomExpressionGenerator(seed=5)
        names = ["a", "b", "c", "d"]
        for _ in range(25):
            expression = generator.generate(names, max_depth=4)
            aig = AIG()
            inputs = {name: aig.add_input(name) for name in names}
            literal = expr_to_aig(expression, aig, inputs)
            for bits in itertools.product((0, 1), repeat=len(names)):
                assignment = dict(zip(names, bits))
                assert aig.evaluate([literal], assignment) == [
                    expression.evaluate(assignment)
                ]

    def test_missing_variable_raises(self):
        aig = AIG()
        with pytest.raises(FormalEncodingError):
            expr_to_aig(Var("ghost"), aig, {})

    def test_unknown_subclass_raises(self):
        class Custom(BoolExpr):
            def evaluate(self, assignment):
                return 1

            def _collect_variables(self, accumulator):
                return None

        aig = AIG()
        with pytest.raises(FormalEncodingError):
            expr_to_aig(Custom(), aig, {})

    def test_constants_fold(self):
        aig = AIG()
        assert expr_to_aig(Const(1), aig, {}) == TRUE
        assert expr_to_aig(Not(Const(1)), aig, {}) == FALSE
        assert (
            expr_to_aig(Or(Const(0), And(Const(1), Const(1))), aig, {}) == TRUE
        )


class TestBitTableEncoding:
    def test_matches_table_rows(self):
        rng = random.Random(17)
        for _ in range(20):
            width = rng.randrange(1, 6)
            names = [f"v{i}" for i in range(width)]
            table = BitTable(names, rng.randrange(1 << (1 << width)))
            aig = AIG()
            inputs = {name: aig.add_input(name) for name in names}
            literal = bittable_to_aig(table, aig, inputs)
            for bits in itertools.product((0, 1), repeat=width):
                assignment = dict(zip(names, bits))
                assert aig.evaluate([literal], assignment) == [
                    table.evaluate(assignment)
                ]

    def test_agrees_with_expr_encoding(self):
        expression = Xor(And(Var("a"), Var("b")), Or(Var("c"), Not(Var("a"))))
        table = BitTable.from_expr(expression)
        aig = AIG()
        inputs = {name: aig.add_input(name) for name in table.names}
        from_table = bittable_to_aig(table, aig, inputs)
        from_expr = expr_to_aig(expression, aig, inputs)
        miter = aig.XOR(from_table, from_expr)
        for bits in itertools.product((0, 1), repeat=len(table.names)):
            assignment = dict(zip(table.names, bits))
            assert aig.evaluate([miter], assignment) == [0]

    def test_constant_tables(self):
        aig = AIG()
        inputs = {"a": aig.add_input("a")}
        assert bittable_to_aig(BitTable(["a"], 0), aig, inputs) == FALSE
        assert bittable_to_aig(BitTable(["a"], 0b11), aig, inputs) == TRUE
