"""Differential tests: the symbolic Verilog cone encoder vs the scalar simulator."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.formal.aig import AIG, FormalEncodingError
from repro.formal.cone import SequentialUnroller, build_combinational_cone
from repro.verilog.simulator import ModuleSimulator


def cone_outputs(source: str, assignment: dict[str, int]) -> dict[str, int]:
    """Evaluate a module's cone on one assignment via the AIG."""
    cone = build_combinational_cone(source)
    cone.check_defined()
    bits: dict[str, int] = {}
    for name, vector in cone.inputs.items():
        for position, literal in enumerate(vector.bits):
            bits[cone.aig.input_name(literal >> 1)] = (assignment[name] >> position) & 1
    result: dict[str, int] = {}
    for name, vector in cone.outputs.items():
        values = cone.aig.evaluate(vector.bits, bits)
        result[name] = sum(bit << position for position, bit in enumerate(values))
    return result


def simulator_outputs(source: str, assignment: dict[str, int]) -> dict[str, int]:
    simulator = ModuleSimulator.from_source(source)
    simulator.apply_inputs(dict(assignment))
    outputs: dict[str, int] = {}
    for name, value in simulator.output_values().items():
        assert not value.has_unknown, f"output {name} is x/z in simulation"
        outputs[name] = value.to_int()
    return outputs


def assert_differential(source: str, input_widths: dict[str, int], samples: int = 40, seed: int = 0):
    """Cone evaluation must match the scalar simulator on random stimuli."""
    rng = random.Random(seed)
    total = 1
    for width in input_widths.values():
        total *= 1 << width
    if total <= 256:
        vectors = [
            dict(zip(input_widths, values))
            for values in itertools.product(
                *[range(1 << width) for width in input_widths.values()]
            )
        ]
    else:
        vectors = [
            {name: rng.randrange(1 << width) for name, width in input_widths.items()}
            for _ in range(samples)
        ]
    for vector in vectors:
        assert cone_outputs(source, vector) == simulator_outputs(source, vector), vector


class TestCombinationalCones:
    def test_boolean_operators(self):
        source = """
        module m(input a, input b, input c, output o1, output o2, output o3);
            assign o1 = (a & b) | ~c;
            assign o2 = a ^ b ^ c;
            assign o3 = !(a && (b || c));
        endmodule
        """
        assert_differential(source, {"a": 1, "b": 1, "c": 1})

    def test_arithmetic_and_comparisons(self):
        source = """
        module m(input [3:0] a, input [3:0] b, output [4:0] sum, output [4:0] diff,
                 output eq, output lt, output ge);
            assign sum = a + b;
            assign diff = a - b;
            assign eq = a == b;
            assign lt = a < b;
            assign ge = a >= b;
        endmodule
        """
        assert_differential(source, {"a": 4, "b": 4})

    def test_carry_concat_idiom(self):
        source = """
        module m(input [3:0] a, input [3:0] b, input cin, output [3:0] sum, output cout);
            assign {cout, sum} = a + b + cin;
        endmodule
        """
        assert_differential(source, {"a": 4, "b": 4, "cin": 1})

    def test_multiplication(self):
        source = """
        module m(input [2:0] a, input [2:0] b, output [5:0] prod);
            assign prod = a * b;
        endmodule
        """
        assert_differential(source, {"a": 3, "b": 3})

    def test_shifts_constant_and_symbolic(self):
        source = """
        module m(input [7:0] a, input [2:0] n, output [7:0] l, output [7:0] r,
                 output [7:0] ar, output [7:0] lc);
            assign l = a << n;
            assign r = a >> n;
            assign ar = $signed(a) >>> n;
            assign lc = a << 2;
        endmodule
        """
        assert_differential(source, {"a": 8, "n": 3}, samples=60)

    def test_reductions_and_unary(self):
        source = """
        module m(input [4:0] a, output rand_, output ror_, output rxor_, output [4:0] neg);
            assign rand_ = &a;
            assign ror_ = |a;
            assign rxor_ = ^a;
            assign neg = -a;
        endmodule
        """
        assert_differential(source, {"a": 5})

    def test_ternary_concat_replication(self):
        source = """
        module m(input sel, input [1:0] a, input [1:0] b, output [3:0] o, output [5:0] rep);
            assign o = sel ? {a, b} : {b, a};
            assign rep = {3{a}};
        endmodule
        """
        assert_differential(source, {"sel": 1, "a": 2, "b": 2})

    def test_bit_and_part_selects(self):
        source = """
        module m(input [7:0] bus, input [1:0] idx, output low, output [3:0] mid, output dyn);
            assign low = bus[0];
            assign mid = bus[5:2];
            assign dyn = bus[idx];
        endmodule
        """
        assert_differential(source, {"bus": 8, "idx": 2}, samples=60)

    def test_always_with_case(self):
        source = """
        module m(input [1:0] op, input [3:0] a, input [3:0] b, output reg [3:0] y);
            always @(*) begin
                case (op)
                    2'b00: y = a & b;
                    2'b01: y = a | b;
                    2'b10: y = a ^ b;
                    default: y = ~a;
                endcase
            end
        endmodule
        """
        assert_differential(source, {"op": 2, "a": 4, "b": 4}, samples=60)

    def test_casez_wildcards(self):
        source = """
        module m(input [3:0] req, output reg [1:0] grant);
            always @(*) begin
                casez (req)
                    4'b???1: grant = 2'd0;
                    4'b??10: grant = 2'd1;
                    4'b?100: grant = 2'd2;
                    4'b1000: grant = 2'd3;
                    default: grant = 2'd0;
                endcase
            end
        endmodule
        """
        assert_differential(source, {"req": 4})

    def test_for_loop_ripple_adder(self):
        source = """
        module m(input [5:0] a, input [5:0] b, output reg [6:0] sum);
            integer i;
            reg carry;
            always @(*) begin
                carry = 1'b0;
                for (i = 0; i < 6; i = i + 1) begin
                    sum[i] = a[i] ^ b[i] ^ carry;
                    carry = (a[i] & b[i]) | (carry & (a[i] ^ b[i]));
                end
                sum[6] = carry;
            end
        endmodule
        """
        assert_differential(source, {"a": 6, "b": 6}, samples=60)

    def test_user_function(self):
        source = """
        module m(input [3:0] a, input [3:0] b, output [3:0] y);
            function [3:0] pick_max;
                input [3:0] x;
                input [3:0] z;
                begin
                    pick_max = (x > z) ? x : z;
                end
            endfunction
            assign y = pick_max(a, b);
        endmodule
        """
        assert_differential(source, {"a": 4, "b": 4})

    def test_parameters_resolve(self):
        source = """
        module m #(parameter W = 4, parameter STEP = 3) (input [W-1:0] a, output [W:0] y);
            assign y = a + STEP;
        endmodule
        """
        assert_differential(source, {"a": 4})

    def test_intermediate_wires_settle(self):
        source = """
        module m(input a, input b, output o);
            wire t1, t2;
            assign o = t2 ^ a;
            assign t2 = t1 | b;
            assign t1 = a & b;
        endmodule
        """
        # Processes are listed in use-before-def order: needs fixpoint settling.
        assert_differential(source, {"a": 1, "b": 1})


class TestRejections:
    def test_sequential_module_rejected(self):
        source = "module m(input clk, input d, output reg q); always @(posedge clk) q <= d; endmodule"
        with pytest.raises(FormalEncodingError):
            build_combinational_cone(source)

    def test_latch_rejected(self):
        source = """
        module m(input en, input d, output reg q);
            always @(*) begin
                if (en)
                    q = d;
            end
        endmodule
        """
        with pytest.raises(FormalEncodingError):
            cone = build_combinational_cone(source)
            cone.check_defined()

    def test_undriven_output_rejected(self):
        source = "module m(input a, output o, output p); assign o = a; endmodule"
        cone = build_combinational_cone(source)
        with pytest.raises(FormalEncodingError):
            cone.check_defined(["p"])
        cone.check_defined(["o"])  # the driven output is fine

    def test_data_dependent_division_rejected(self):
        source = "module m(input [3:0] a, input [3:0] b, output [3:0] q); assign q = a / b; endmodule"
        with pytest.raises(FormalEncodingError):
            build_combinational_cone(source)

    def test_x_literal_rejected(self):
        source = "module m(input a, output o); assign o = a ? 1'bx : 1'b0; endmodule"
        with pytest.raises(FormalEncodingError):
            build_combinational_cone(source)


class TestSequentialUnroller:
    COUNTER = """
    module m(input clk, input rst, input en, output reg [3:0] count);
        always @(posedge clk) begin
            if (rst)
                count <= 4'd0;
            else if (en)
                count <= count + 4'd1;
        end
    endmodule
    """

    def test_unrolled_steps_match_scalar_simulation(self):
        rng = random.Random(3)
        aig = AIG()
        unroller = SequentialUnroller(self.COUNTER, aig)
        steps = 6
        step_inputs = unroller.make_step_inputs(steps)
        outputs, undefs = unroller.unroll(step_inputs)
        assert not undefs

        sequence = [{"en": rng.randrange(2)} for _ in range(steps)]
        bits: dict[str, int] = {}
        for step, inputs in enumerate(step_inputs):
            for name, vector in inputs.items():
                for position, literal in enumerate(vector.bits):
                    bits[aig.input_name(literal >> 1)] = (
                        sequence[step][name] >> position
                    ) & 1

        simulator = ModuleSimulator.from_source(self.COUNTER)
        simulator.apply_inputs({"rst": 1})
        for _ in range(2):
            simulator.apply_inputs({"clk": 1})
            simulator.apply_inputs({"clk": 0})
        simulator.apply_inputs({"rst": 0})
        for step in range(steps):
            simulator.clock_cycle("clk", dict(sequence[step]))
            expected = simulator.get("count").to_int()
            values = aig.evaluate(outputs[step]["count"].bits, bits)
            got = sum(bit << position for position, bit in enumerate(values))
            assert got == expected, f"step {step}"

    def test_reset_detection(self):
        aig = AIG()
        unroller = SequentialUnroller(self.COUNTER, aig)
        assert unroller.reset == "rst"
        assert not unroller.reset_active_low
        active_low = self.COUNTER.replace("rst", "rst_n").replace(
            "if (rst_n)", "if (!rst_n)"
        )
        unroller = SequentialUnroller(active_low, AIG())
        assert unroller.reset == "rst_n"
        assert unroller.reset_active_low

    def test_mixed_clock_edges_rejected(self):
        source = """
        module m(input clk, input d, output reg q, output reg p);
            always @(posedge clk) q <= d;
            always @(negedge clk) p <= d;
        endmodule
        """
        with pytest.raises(FormalEncodingError):
            SequentialUnroller(source, AIG())

    def test_unclocked_sequential_rejected(self):
        source = """
        module m(input clk, input other, input d, output reg q);
            always @(posedge other) q <= d;
        endmodule
        """
        with pytest.raises(FormalEncodingError):
            SequentialUnroller(source, AIG())
