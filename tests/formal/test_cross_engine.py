"""Cross-engine agreement: SAT miters vs bit-table sweeps vs batched simulation.

The property under test: for random ``BoolExpr`` pairs rendered to Verilog
(through :mod:`repro.logic.synth` and a :class:`repro.verilog.writer`
round-trip), all three equivalence engines must return the same verdict —

* the **SAT miter** (:func:`prove_combinational_equivalence`),
* the **bit-parallel truth table** (:meth:`BitTable.equivalent`),
* the **batched simulation sweep** (:func:`batch_equivalence_mismatches`,
  exhaustive at these widths),

and every SAT counterexample must reproduce as a *real* mismatch on the
batched simulator (the differential-oracle requirement of the formal layer).
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.bench.golden import batch_equivalence_mismatches
from repro.formal import prove_combinational_equivalence, prove_expr_equivalence
from repro.logic.bittable import BitTable
from repro.logic.expr import RandomExpressionGenerator
from repro.logic.synth import STYLES, SynthesisRequest, expression_to_module
from repro.verilog.parser import parse_source
from repro.verilog.writer import write_source

VARIABLES = ["a", "b", "c", "d"]


def render(expression, style: str) -> str:
    """BoolExpr → Verilog source → AST → writer round-trip."""
    source = expression_to_module(
        expression, SynthesisRequest(module_name="dut", style=style)
    )
    return write_source(parse_source(source))


def generate_full_support(generator: RandomExpressionGenerator, max_depth: int):
    """A random expression *functionally* depending on every variable.

    Keeps both rendered modules on the same port list (so the batched sweep can
    drive identical stimulus into DUT and reference) even after QM
    minimisation, which drops functionally irrelevant variables.
    """
    from repro.logic.minimize import minimize_expression

    while True:
        candidate = generator.generate_nontrivial(VARIABLES, max_depth=max_depth)
        if candidate.variables() != VARIABLES:
            continue
        minimised = minimize_expression(candidate)
        if minimised.variables() == VARIABLES:
            return candidate, minimised


def exhaustive_vectors(names):
    return [
        dict(zip(names, bits)) for bits in itertools.product((0, 1), repeat=len(names))
    ]


class TestCrossEngineAgreement:
    @pytest.mark.formal
    def test_three_engines_agree_on_random_pairs(self):
        generator = RandomExpressionGenerator(seed=23)
        rng = random.Random(23)
        verdicts = {True: 0, False: 0}
        for trial in range(30):
            left, minimised = generate_full_support(generator, max_depth=4)
            if trial % 2 == 0:
                # Equivalent-by-construction pair: the minimised cover of
                # ``left`` is a structurally different, equal function.
                right = minimised
            else:
                right, _ = generate_full_support(generator, max_depth=4)
            style_left = rng.choice(STYLES)
            style_right = rng.choice(STYLES)
            dut = render(left, style_left)
            reference = render(right, style_right)

            table_verdict = BitTable.from_expr(left, variables=VARIABLES).equivalent(
                BitTable.from_expr(right, variables=VARIABLES)
            )
            sat_result = prove_combinational_equivalence(dut, reference)
            sweep = batch_equivalence_mismatches(
                dut, reference, exhaustive_vectors(VARIABLES)
            )
            context = (trial, style_left, style_right, left.to_verilog(), right.to_verilog())
            assert sat_result.equivalent == table_verdict, context
            assert (not sweep) == table_verdict, context
            verdicts[table_verdict] += 1

            if not sat_result.equivalent:
                # The SAT counterexample must be a real mismatch on the batched
                # simulator (not just a formal-model artefact).
                counterexample = sat_result.counterexample
                replayed = batch_equivalence_mismatches(
                    dut, reference, [counterexample.inputs]
                )
                assert len(replayed) == 1, context
                assert replayed[0].inputs == counterexample.inputs
                # And the sweep must list the very same assignment among its
                # mismatching lanes.
                mismatching_assignments = [mismatch.inputs for mismatch in sweep]
                assert counterexample.inputs in mismatching_assignments, context
        # The random sample must exercise both verdicts to mean anything.
        assert verdicts[True] > 0 and verdicts[False] > 0, verdicts

    @pytest.mark.formal
    def test_expr_and_verilog_miters_agree(self):
        generator = RandomExpressionGenerator(seed=31)
        for trial in range(15):
            left, _ = generate_full_support(generator, max_depth=3)
            right, _ = generate_full_support(generator, max_depth=3)
            expr_verdict = prove_expr_equivalence(left, right).equivalent
            verilog_verdict = prove_combinational_equivalence(
                render(left, "assign"), render(right, "assign")
            ).equivalent
            assert expr_verdict == verilog_verdict, (trial, left, right)

    def test_equivalent_to_auto_matches_sat(self):
        generator = RandomExpressionGenerator(seed=37)
        for _ in range(20):
            left = generator.generate(VARIABLES, max_depth=4)
            right = generator.generate(VARIABLES, max_depth=4)
            assert left.equivalent_to(right) == left.equivalent_to(right, method="sat")
