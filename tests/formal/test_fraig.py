"""Tests for simulation-guided fraiging (AIG preprocessing)."""

from __future__ import annotations

import random

import pytest

from repro.formal import AIG, fraig_reduce
from repro.formal.aig import negate


def _random_cone(seed: int, num_inputs: int = 6, num_gates: int = 60) -> tuple[AIG, list[int]]:
    """A random AIG with deliberately redundant structure."""
    rng = random.Random(seed)
    aig = AIG()
    literals = [aig.add_input(f"i{n}") for n in range(num_inputs)]
    for _ in range(num_gates):
        a = rng.choice(literals) ^ rng.randint(0, 1)
        b = rng.choice(literals) ^ rng.randint(0, 1)
        literals.append(aig.AND(a, b))
    roots = [rng.choice(literals) ^ rng.randint(0, 1) for _ in range(3)]
    return aig, roots


def _eval_roots(aig: AIG, roots: list[int], assignment: dict[str, int]) -> list[int]:
    return aig.evaluate(roots, assignment)


@pytest.mark.parametrize("seed", range(10))
def test_reduction_preserves_root_functions(seed):
    aig, roots = _random_cone(seed)
    new_roots, stats = fraig_reduce(aig, roots, rows=32, seed=seed)
    assert stats.cone_nodes > 0
    rng = random.Random(seed * 31 + 7)
    names = [aig.input_name(n) for n in aig.cone(roots) if aig.is_input(n)]
    for _ in range(64):
        assignment = {name: rng.randint(0, 1) for name in names}
        assert _eval_roots(aig, roots, assignment) == _eval_roots(
            aig, new_roots, assignment
        ), f"fraig changed a root function (seed {seed}, inputs {assignment})"


def test_merges_functionally_equal_structures():
    aig = AIG()
    a = aig.add_input("a")
    b = aig.add_input("b")
    # Two XOR encodings with no shared structure: (a&~b)|(~a&b) vs ~((a&b)|(~a&~b))
    xor1 = negate(aig.AND(negate(aig.AND(a, negate(b))), negate(aig.AND(negate(a), b))))
    xor2 = aig.AND(negate(aig.AND(a, b)), negate(aig.AND(negate(a), negate(b))))
    (left, right), stats = fraig_reduce(aig, [xor1, xor2], rows=16, seed=3)
    assert left == right  # proven equal and merged onto one representative
    assert stats.merges >= 1
    assert stats.sat_checks >= 1


def test_complement_signatures_merge_through_phase():
    aig = AIG()
    a = aig.add_input("a")
    b = aig.add_input("b")
    conj = aig.AND(a, b)
    # ~(a & b) rebuilt from scratch through De Morgan redundancy.
    nand = negate(aig.AND(negate(negate(a)), negate(negate(b))))
    (x, y), _ = fraig_reduce(aig, [conj, nand], rows=16, seed=5)
    assert x == negate(y)


def test_refinement_splits_spurious_classes():
    # With a single simulation row, many nodes collide into one class; the
    # SAT disproofs must refine signatures instead of merging unequal nodes.
    aig = AIG()
    inputs = [aig.add_input(f"i{n}") for n in range(4)]
    gates = [aig.AND(inputs[i], inputs[(i + 1) % 4]) for i in range(4)]
    roots = [aig.AND(gates[i], gates[(i + 2) % 4]) for i in range(4)]
    new_roots, stats = fraig_reduce(aig, roots, rows=1, seed=0)
    rng = random.Random(11)
    for _ in range(64):
        assignment = {f"i{n}": rng.randint(0, 1) for n in range(4)}
        assert _eval_roots(aig, roots, assignment) == _eval_roots(
            aig, new_roots, assignment
        )


def test_pluggable_prover_is_consulted():
    aig = AIG()
    a = aig.add_input("a")
    b = aig.add_input("b")
    xor1 = negate(aig.AND(negate(aig.AND(a, negate(b))), negate(aig.AND(negate(a), b))))
    xor2 = aig.AND(negate(aig.AND(a, b)), negate(aig.AND(negate(a), negate(b))))
    calls = []

    def refuse_everything(x, y):
        calls.append((x, y))
        return False, None  # disproof without a witness: skip, no refinement

    (left, right), stats = fraig_reduce(
        aig, [xor1, xor2], rows=16, seed=3, prove_equal=refuse_everything
    )
    assert calls, "custom equality oracle was never consulted"
    assert stats.sat_merges == 0  # every merge attempt was refused
