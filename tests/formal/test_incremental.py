"""Differential parity suite for the incremental equivalence session.

The session must be *observably identical* to the fresh-solver provers: same
verdict on every candidate, and every refutation carries a counterexample that
reproduces as a real mismatch on the simulation engines.  Candidates are
randomized (correct rewrites and injected bugs alike) and round-tripped
through the Verilog writer before proving, so the sweep exercises the same
parse → write → parse surface the generation pipeline does.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.golden import batch_equivalence_mismatches
from repro.formal import (
    ConflictLimitExceeded,
    EquivalenceSession,
    prove_combinational_equivalence,
    proof_stats,
    reset_proof_stats,
)
from repro.verilog.parser import parse_module
from repro.verilog.writer import write_module


def _roundtrip(source: str) -> str:
    """Writer round-trip: the candidate text the pipeline would re-emit."""
    return write_module(parse_module(source))


REFERENCE = """
module refmod(input [3:0] a, input [3:0] b, input c, output [4:0] s, output p);
    assign s = a + b + c;
    assign p = ^(a ^ b);
endmodule
"""

#: Correct rewrites of the reference (distinct structure, same function).
GOOD_TEMPLATES = [
    "assign s = b + a + c;\n    assign p = (^a) ^ (^b);",
    "assign s = (a + c) + b;\n    assign p = ^{a, b};",
    "assign s = a + (b + c);\n    assign p = a[0]^a[1]^a[2]^a[3]^b[0]^b[1]^b[2]^b[3];",
]

#: Buggy rewrites: off-by-one sums, dropped carry, inverted parity.
BAD_TEMPLATES = [
    "assign s = a + b;\n    assign p = ^(a ^ b);",
    "assign s = a + b + c + 1;\n    assign p = ^(a ^ b);",
    "assign s = a + b + c;\n    assign p = ~(^(a ^ b));",
    "assign s = a - b + c;\n    assign p = ^(a ^ b);",
]


def _candidate(body: str) -> str:
    return _roundtrip(
        "module refmod(input [3:0] a, input [3:0] b, input c, "
        f"output [4:0] s, output p);\n    {body}\nendmodule"
    )


def _random_sweep(seed: int, length: int = 24) -> list[tuple[str, bool]]:
    """(candidate source, expected equivalent) pairs, randomized and repeated."""
    rng = random.Random(seed)
    pool = [(_candidate(body), True) for body in GOOD_TEMPLATES]
    pool += [(_candidate(body), False) for body in BAD_TEMPLATES]
    pool.append((_roundtrip(REFERENCE), True))
    return [pool[rng.randrange(len(pool))] for _ in range(length)]


@pytest.mark.parametrize("seed", range(4))
def test_session_matches_fresh_prover_on_randomized_sweeps(seed):
    session = EquivalenceSession(_roundtrip(REFERENCE))
    for code, expected in _random_sweep(seed):
        fresh = prove_combinational_equivalence(code, REFERENCE)
        incremental = session.prove(code)
        assert fresh.equivalent == incremental.equivalent == expected, code
        if not expected:
            # Both engines must produce *replayable* counterexamples: the
            # decoded assignment has to reproduce as a real mismatch on the
            # batched simulator (the differential oracle the bench uses).
            for result in (fresh, incremental):
                assert result.counterexample is not None
                assert batch_equivalence_mismatches(
                    code, REFERENCE, [result.counterexample.inputs]
                ), f"counterexample did not replay: {result.counterexample.inputs}"


def test_session_without_fraig_matches_fresh_prover():
    session = EquivalenceSession(REFERENCE, fraig=False)
    for code, expected in _random_sweep(99, length=12):
        assert session.prove(code).equivalent == expected


def test_missing_output_verdict_matches_fresh_prover():
    partial = _roundtrip(
        "module refmod(input [3:0] a, input [3:0] b, input c, output [4:0] s);\n"
        "    assign s = a + b + c;\nendmodule"
    )
    fresh = prove_combinational_equivalence(partial, REFERENCE)
    incremental = EquivalenceSession(REFERENCE).prove(partial)
    assert not fresh.equivalent and not incremental.equivalent
    assert incremental.counterexample.missing_outputs == ["p"]
    assert fresh.counterexample.missing_outputs == ["p"]


def test_repeat_candidates_reuse_the_encoded_cone():
    session = EquivalenceSession(REFERENCE)
    code = _candidate(GOOD_TEMPLATES[0])
    first = session.prove(code)
    again = session.prove(code)
    assert first.equivalent and again.equivalent
    assert session.proofs == 2
    # The cone is cached by content address, so the re-proof encodes nothing
    # new — but it still runs a genuine solve (no verdict memoization).
    assert again.method in ("sat", "structural")


def test_conflict_budget_is_per_proof_not_per_session():
    """Regression: candidate #N gets the same budget candidate #1 got.

    Before the incremental engine, each proof owned a fresh solver, so
    ``formal_conflict_limit`` was trivially per-proof.  The shared session
    must keep that contract: a budget that covers the *most expensive single
    proof* must never trip on a later candidate merely because the session's
    cumulative conflicts crossed it.
    """
    candidates = [_candidate(body) for body in GOOD_TEMPLATES] + [
        _roundtrip(REFERENCE)
    ]
    # Per-proof cost ceiling, measured on fresh sessions (fraig off so every
    # proof is a real CDCL search, not a structural fold).
    costs = []
    for code in candidates:
        fresh = EquivalenceSession(REFERENCE, fraig=False)
        costs.append(fresh.prove(code).stats.conflicts)
    assert max(costs) > 0, "workload no longer exercises the SAT search"
    budget = max(costs) + 5

    session = EquivalenceSession(REFERENCE, fraig=False, conflict_limit=budget)
    total = 0
    for _ in range(4):  # sweep the pool repeatedly to accumulate conflicts
        for code in candidates:
            result = session.prove(code)  # must never raise ConflictLimitExceeded
            assert result.equivalent
            total += result.stats.conflicts
    assert total == session.total_conflicts
    # The point of the regression: the session as a whole burned more
    # conflicts than any single proof's budget, yet no proof tripped it.
    if total <= budget:
        pytest.skip("sweep too cheap to distinguish per-proof from cumulative")


def test_conflict_limit_still_enforced_per_proof():
    session = EquivalenceSession(REFERENCE, fraig=False)
    with pytest.raises(ConflictLimitExceeded):
        session.prove(_candidate(GOOD_TEMPLATES[2]), conflict_limit=1)
    # The session survives an exhausted budget: later proofs run normally.
    assert session.prove(_candidate(GOOD_TEMPLATES[0])).equivalent


def test_proof_registry_records_session_verdicts():
    reset_proof_stats()
    try:
        session = EquivalenceSession(REFERENCE)
        session.prove(_candidate(GOOD_TEMPLATES[0]))
        session.prove(_candidate(BAD_TEMPLATES[0]))
        stats = proof_stats()
        assert stats["total"] == 2
        assert stats["results"]["equivalent"] == 1
        assert stats["results"]["counterexample"] == 1
    finally:
        reset_proof_stats()


def test_result_carries_sat_and_fraig_accounting():
    session = EquivalenceSession(REFERENCE)
    result = session.prove(_candidate(GOOD_TEMPLATES[1]))
    assert result.equivalent
    stats = result.stats
    assert stats.propagations >= 0 and stats.decisions >= 0
    assert result.fraig_merges >= 0
    # Width-mismatched shared inputs are rejected exactly like the fresh path.
    wide = _candidate(GOOD_TEMPLATES[0]).replace("input [3:0] a", "input [4:0] a")
    from repro.formal import FormalEncodingError

    with pytest.raises(FormalEncodingError):
        session.prove(wide)
