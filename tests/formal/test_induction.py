"""k-induction tests: unbounded sequential proofs, gated against simulation.

Every verdict is differentially checked against long-horizon scalar
simulation: a design pair the induction proves equivalent must never mismatch
over a random stimulus horizon far beyond the unrolling depth, and a refuted
pair must actually mismatch when its counterexample (or any long sweep) is
replayed.
"""

from __future__ import annotations

import random

import pytest

from repro.formal import InductionInconclusive, prove_sequential_by_induction
from repro.formal.cone import apply_reset_pulse
from repro.verilog.simulator import ModuleSimulator

COUNTER_REF = """
module counter(input clk, input rst, output reg [3:0] count);
    always @(posedge clk) begin
        if (rst) count <= 4'd0;
        else count <= count + 4'd1;
    end
endmodule
"""

#: Structurally different but equivalent: increments via two nibble adds.
COUNTER_DUT = """
module counter(input clk, input rst, output reg [3:0] count);
    always @(posedge clk) begin
        if (rst) count <= 4'd0;
        else count <= count + 4'd2 - 4'd1;
    end
endmodule
"""

#: Off-by-one bug: skips every other value.
COUNTER_BAD = COUNTER_DUT.replace("4'd2 - 4'd1", "4'd2")

#: One-hot ring counter: equivalent to the mod-3 reference from reset, but
#: NOT k-inductive at any depth (the dead state 3'b000 is unreachable yet
#: self-sustaining, so the inductive step always finds a spurious run).
RING = """
module ring(input clk, input rst, output out);
    reg [2:0] s;
    always @(posedge clk) begin
        if (rst) s <= 3'b001;
        else s <= {s[1:0], s[2]};
    end
    assign out = s[0];
endmodule
"""

MOD3 = """
module ring(input clk, input rst, output out);
    reg [1:0] r;
    always @(posedge clk) begin
        if (rst) r <= 2'd0;
        else r <= (r == 2'd2) ? 2'd0 : r + 2'd1;
    end
    assign out = (r == 2'd0);
endmodule
"""


def _long_horizon_mismatch(
    dut_source: str,
    reference_source: str,
    outputs: list[str],
    cycles: int = 64,
    seed: int = 0,
    inputs: dict[str, int] | None = None,
) -> bool:
    """Drive both designs from reset for ``cycles``; True iff any output differs."""
    rng = random.Random(seed)
    widths = dict(inputs or {})
    dut = ModuleSimulator.from_source(dut_source)
    reference = ModuleSimulator.from_source(reference_source)
    for simulator in (dut, reference):
        apply_reset_pulse(simulator, clock="clk", reset="rst")
    for _ in range(cycles):
        stimulus = {name: rng.randrange(1 << width) for name, width in widths.items()}
        stimulus["rst"] = 0
        dut.clock_cycle("clk", dict(stimulus))
        reference.clock_cycle("clk", dict(stimulus))
        for name in outputs:
            expected = reference.get(name)
            actual = dut.get(name)
            if expected.has_unknown or actual.has_unknown:
                continue
            if expected.to_int() != actual.to_int():
                return True
    return False


def test_equivalent_counters_proven_unbounded():
    result = prove_sequential_by_induction(
        COUNTER_DUT, COUNTER_REF, depth=2, reset="rst"
    )
    assert result.equivalent
    assert result.method == "induction"
    assert result.sequential_steps == 2
    # Differential gate: the unbounded verdict must agree with a simulation
    # horizon 32x deeper than the unrolling.
    assert not _long_horizon_mismatch(COUNTER_DUT, COUNTER_REF, ["count"])


def test_buggy_counter_refuted_with_real_counterexample():
    result = prove_sequential_by_induction(
        COUNTER_BAD, COUNTER_REF, depth=3, reset="rst"
    )
    assert not result.equivalent
    assert result.counterexample is not None
    assert _long_horizon_mismatch(COUNTER_BAD, COUNTER_REF, ["count"])


def test_non_inductive_pair_is_inconclusive_never_wrong():
    # Equivalent from reset (the simulators agree over a long horizon) …
    assert not _long_horizon_mismatch(RING, MOD3, ["out"], cycles=96)
    # … but the inductive step fails from the unreachable dead state, so the
    # engine must refuse to answer rather than refute.
    with pytest.raises(InductionInconclusive):
        prove_sequential_by_induction(RING, MOD3, depth=2, reset="rst")


def test_inconclusive_induction_falls_back_to_bounded_proof():
    from repro.bench.golden import formal_equivalence_check

    result = formal_equivalence_check(
        RING,
        MOD3,
        reset="rst",
        induction_depth=2,
        sequential_steps=8,
    )
    assert result.equivalent  # bounded 8-cycle proof from reset
    assert result.method != "induction"
    assert result.sequential_steps == 8


def test_depth_must_be_positive():
    with pytest.raises(ValueError):
        prove_sequential_by_induction(COUNTER_DUT, COUNTER_REF, depth=0, reset="rst")


def test_enable_counter_with_data_inputs():
    ref = """
    module c(input clk, input rst, input en, output reg [3:0] q);
        always @(posedge clk) begin
            if (rst) q <= 4'd0;
            else if (en) q <= q + 4'd1;
        end
    endmodule
    """
    dut = ref.replace("q + 4'd1", "q - 4'hF")
    result = prove_sequential_by_induction(dut, ref, depth=2, reset="rst")
    assert result.equivalent and result.method == "induction"
    assert not _long_horizon_mismatch(dut, ref, ["q"], inputs={"en": 1})


def test_registry_counts_induction_verdicts():
    from repro.formal import proof_stats, reset_proof_stats

    reset_proof_stats()
    try:
        prove_sequential_by_induction(COUNTER_DUT, COUNTER_REF, depth=2, reset="rst")
        prove_sequential_by_induction(COUNTER_BAD, COUNTER_REF, depth=2, reset="rst")
        with pytest.raises(InductionInconclusive):
            prove_sequential_by_induction(RING, MOD3, depth=1, reset="rst")
        stats = proof_stats()
        assert stats["total"] == 3
        assert stats["results"] == {
            "equivalent": 1,
            "counterexample": 1,
            "unknown": 1,
        }
    finally:
        reset_proof_stats()
