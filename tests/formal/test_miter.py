"""Tests for miter construction, equivalence proofs and counterexamples."""

from __future__ import annotations

import random

import pytest

from repro.bench.golden import (
    VerilogGolden,
    batch_equivalence_mismatches,
    formal_equivalence_check,
)
from repro.formal import (
    FormalEncodingError,
    prove_combinational_equivalence,
    prove_expr_equivalence,
    prove_sequential_equivalence,
)
from repro.logic.expr import RandomExpressionGenerator, reference_equivalent


class TestExprEquivalence:
    def test_differential_against_legacy_oracle(self):
        generator = RandomExpressionGenerator(seed=13)
        names = ["a", "b", "c", "d"]
        disagreements = 0
        for _ in range(60):
            left = generator.generate(names, max_depth=4)
            right = generator.generate(names, max_depth=4)
            result = prove_expr_equivalence(left, right)
            assert result.equivalent == reference_equivalent(left, right)
            if not result.equivalent:
                disagreements += 1
                assignment = result.counterexample.inputs
                union = set(left.variables()) | set(right.variables())
                full = {name: assignment.get(name, 0) for name in union}
                assert left.evaluate(full) != right.evaluate(full)
        assert disagreements > 0  # the sample must exercise the SAT branch

    @pytest.mark.formal
    def test_wide_equivalence_beyond_bit_table_sweet_spot(self):
        from repro.logic.expr import Var, Xor, and_all, or_all

        # 24 variables: the 2**24-bit table would be 2 MiB of bitmask per
        # compile; the SAT proof is near-instant.
        wide = [Var(f"v{i}") for i in range(24)]
        left = or_all(wide)
        right = or_all(list(reversed(wide)))
        assert prove_expr_equivalence(left, right).equivalent
        result = prove_expr_equivalence(left, and_all(wide))
        assert not result.equivalent


EQUIVALENT_PAIRS = [
    (
        "module m(input a, input b, output o); assign o = a ^ b; endmodule",
        """
        module m(input a, input b, output o);
            assign o = (a & ~b) | (~a & b);
        endmodule
        """,
    ),
    (
        """
        module m(input [3:0] a, input [3:0] b, output [4:0] s);
            assign s = a + b;
        endmodule
        """,
        """
        module m(input [3:0] a, input [3:0] b, output reg [4:0] s);
            integer i;
            reg c;
            always @(*) begin
                c = 1'b0;
                for (i = 0; i < 4; i = i + 1) begin
                    s[i] = a[i] ^ b[i] ^ c;
                    c = (a[i] & b[i]) | (c & (a[i] ^ b[i]));
                end
                s[4] = c;
            end
        endmodule
        """,
    ),
]


class TestCombinationalMiters:
    @pytest.mark.parametrize("dut, reference", EQUIVALENT_PAIRS)
    def test_equivalent_pairs_prove_unsat(self, dut, reference):
        result = prove_combinational_equivalence(dut, reference)
        assert result.equivalent
        assert result.counterexample is None

    def test_counterexample_replays_on_batch_simulator(self):
        dut = "module m(input a, input b, input c, output o); assign o = a & (b | c); endmodule"
        reference = "module m(input a, input b, input c, output o); assign o = a & b | c; endmodule"
        result = prove_combinational_equivalence(dut, reference)
        assert not result.equivalent
        counterexample = result.counterexample
        assert counterexample.mismatching_outputs == [(0, "o")]
        replayed = batch_equivalence_mismatches(dut, reference, [counterexample.inputs])
        assert len(replayed) == 1
        assert replayed[0].expected["o"] == counterexample.reference_outputs[0]["o"]
        assert replayed[0].actual["o"] == counterexample.dut_outputs[0]["o"]

    def test_missing_output_reported(self):
        dut = "module m(input a, output o); assign o = a; endmodule"
        reference = "module m(input a, output o, output p); assign o = a; assign p = ~a; endmodule"
        result = prove_combinational_equivalence(dut, reference)
        assert not result.equivalent
        assert result.method == "missing-output"
        assert result.counterexample.missing_outputs == ["p"]

    def test_width_mismatch_raises(self):
        dut = "module m(input [3:0] a, output o); assign o = |a; endmodule"
        reference = "module m(input [7:0] a, output o); assign o = |a; endmodule"
        with pytest.raises(FormalEncodingError):
            prove_combinational_equivalence(dut, reference)

    def test_multi_output_checks_subset(self):
        dut = "module m(input a, output good, output bad); assign good = a; assign bad = a; endmodule"
        reference = "module m(input a, output good, output bad); assign good = a; assign bad = ~a; endmodule"
        assert prove_combinational_equivalence(dut, reference, outputs=["good"]).equivalent
        assert not prove_combinational_equivalence(dut, reference).equivalent

    @pytest.mark.formal
    def test_wide_adder_miter_proof(self):
        # 24 primary inputs: an exhaustive 2**24 sweep is gated out of the
        # simulation engines; the SAT miter proves it outright.
        dut = """
        module m(input [11:0] a, input [11:0] b, output [12:0] s);
            wire [5:0] lo_a, lo_b, hi_a, hi_b;
            assign lo_a = a[5:0];
            assign lo_b = b[5:0];
            assign hi_a = a[11:6];
            assign hi_b = b[11:6];
            wire [6:0] lo_sum;
            wire [6:0] hi_sum0, hi_sum1;
            assign lo_sum = lo_a + lo_b;
            assign hi_sum0 = hi_a + hi_b;
            assign hi_sum1 = hi_a + hi_b + 6'd1;
            assign s = {(lo_sum[6] ? hi_sum1 : hi_sum0), lo_sum[5:0]};
        endmodule
        """
        reference = """
        module m(input [11:0] a, input [11:0] b, output [12:0] s);
            assign s = a + b;
        endmodule
        """
        result = prove_combinational_equivalence(dut, reference)
        assert result.equivalent


class TestSequentialMiters:
    COUNTER = """
    module m(input clk, input rst, input en, output reg [3:0] count);
        always @(posedge clk) begin
            if (rst)
                count <= 4'd0;
            else if (en)
                count <= count + 4'd1;
        end
    endmodule
    """

    def test_equivalent_rewrites(self):
        rewritten = self.COUNTER.replace(
            "else if (en)\n                count <= count + 4'd1;",
            "else\n                count <= en ? (count + 4'd1) : count;",
        )
        assert rewritten != self.COUNTER
        result = prove_sequential_equivalence(self.COUNTER, rewritten, steps=5)
        assert result.equivalent
        assert result.sequential_steps == 5

    @pytest.mark.formal
    def test_deep_difference_found_at_sufficient_depth(self):
        modulo_ten = self.COUNTER.replace(
            "count <= count + 4'd1;",
            "count <= (count == 4'd9) ? 4'd0 : (count + 4'd1);",
        )
        # The designs agree until the counter first reaches ten...
        assert prove_sequential_equivalence(modulo_ten, self.COUNTER, steps=9).equivalent
        # ...and an 11-step unrolling must find the enable-heavy run to ten.
        result = prove_sequential_equivalence(modulo_ten, self.COUNTER, steps=11)
        assert not result.equivalent
        counterexample = result.counterexample
        enables = sum(step.get("en", 0) for step in counterexample.steps)
        assert enables >= 10

    def test_async_vs_sync_reset_equivalent_after_pulse(self):
        asynchronous = self.COUNTER.replace(
            "always @(posedge clk)", "always @(posedge clk or posedge rst)"
        )
        assert prove_sequential_equivalence(asynchronous, self.COUNTER, steps=4).equivalent


class TestGoldenIntegration:
    def test_formal_equivalence_check_replays_counterexample(self):
        dut = "module m(input a, input b, output o); assign o = a | b; endmodule"
        reference = "module m(input a, input b, output o); assign o = a ^ b; endmodule"
        result = formal_equivalence_check(dut, reference)
        assert not result.equivalent
        # Replay already ran inside the call; the counterexample must be real.
        assert batch_equivalence_mismatches(dut, reference, [result.counterexample.inputs])

    def test_verilog_golden_prove_equivalent(self):
        reference = "module m(input a, input b, output o); assign o = ~(a & b); endmodule"
        golden = VerilogGolden(source=reference)
        nand_demorgan = "module m(input a, input b, output o); assign o = ~a | ~b; endmodule"
        assert golden.prove_equivalent(nand_demorgan).equivalent
        assert not golden.prove_equivalent(
            "module m(input a, input b, output o); assign o = a & b; endmodule"
        ).equivalent

    def test_sequential_golden_requires_steps(self):
        golden = VerilogGolden(
            source=TestSequentialMiters.COUNTER.replace("module m", "module m")
        )
        with pytest.raises(ValueError):
            golden.prove_equivalent(TestSequentialMiters.COUNTER)
        assert golden.prove_equivalent(
            TestSequentialMiters.COUNTER, sequential_steps=3
        ).equivalent

    def test_unprovable_design_raises_encoding_error(self):
        dut = "module m(input [3:0] a, input [3:0] b, output [3:0] q); assign q = a / b; endmodule"
        with pytest.raises(FormalEncodingError):
            formal_equivalence_check(dut, dut)
