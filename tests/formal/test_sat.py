"""Tests for the CDCL SAT solver: unit cases, classics and a brute-force oracle."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.formal.aig import AIG
from repro.formal.cnf import tseitin
from repro.formal.sat import ConflictLimitExceeded, SatSolver, check_model, luby, solve_cnf


def brute_force_satisfiable(clauses: list[list[int]], num_vars: int) -> bool:
    for assignment in range(1 << num_vars):
        model = {var + 1: bool((assignment >> var) & 1) for var in range(num_vars)}
        if check_model(clauses, model):
            return True
    return False


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_one_based(self):
        with pytest.raises(ValueError):
            luby(0)


class TestSolverBasics:
    def test_trivial_sat(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        result = solver.solve()
        assert result.satisfiable
        assert check_model([[1, 2]], result.model)

    def test_unit_propagation_chain(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        result = solver.solve()
        assert result.satisfiable
        assert result.model[1] and result.model[2] and result.model[3]

    def test_empty_clause_is_unsat(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([])
        assert not solver.solve().satisfiable

    def test_contradicting_units(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert not solver.solve().satisfiable

    def test_tautology_is_dropped(self):
        solver = SatSolver()
        solver.add_clause([1, -1])
        assert solver.solve().satisfiable

    def test_all_binary_unsat(self):
        solver = SatSolver()
        for clause in ([1, 2], [-1, 2], [1, -2], [-1, -2]):
            solver.add_clause(clause)
        assert not solver.solve().satisfiable

    def test_zero_literal_rejected(self):
        solver = SatSolver()
        with pytest.raises(ValueError):
            solver.add_clause([0])


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[-1])
        assert result.satisfiable
        assert not result.model[1] and result.model[2]

    def test_unsat_under_assumptions_only(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert not solver.solve(assumptions=[-1, -2]).satisfiable
        # The problem itself stays satisfiable afterwards.
        assert solver.solve().satisfiable

    def test_conflicting_assumptions(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert not solver.solve(assumptions=[1, -1]).satisfiable


class TestClassics:
    def test_pigeonhole_4_into_3_unsat(self):
        solver = SatSolver()

        def var(pigeon: int, hole: int) -> int:
            return pigeon * 3 + hole + 1

        for pigeon in range(4):
            solver.add_clause([var(pigeon, hole) for hole in range(3)])
        for hole in range(3):
            for p1, p2 in itertools.combinations(range(4), 2):
                solver.add_clause([-var(p1, hole), -var(p2, hole)])
        result = solver.solve()
        assert not result.satisfiable
        assert result.stats.conflicts > 0  # needs real search, not propagation

    def test_xor_chain_parity_unsat(self):
        # x1 ^ x2 = 1, x2 ^ x3 = 1, x3 ^ x1 = 1 has odd cycle parity: UNSAT.
        solver = SatSolver()
        for a, b in ((1, 2), (2, 3), (3, 1)):
            solver.add_clause([a, b])
            solver.add_clause([-a, -b])
        assert not solver.solve().satisfiable

    def test_conflict_limit_raises(self):
        solver = SatSolver()

        def var(pigeon: int, hole: int) -> int:
            return pigeon * 5 + hole + 1

        for pigeon in range(6):
            solver.add_clause([var(pigeon, hole) for hole in range(5)])
        for hole in range(5):
            for p1, p2 in itertools.combinations(range(6), 2):
                solver.add_clause([-var(p1, hole), -var(p2, hole)])
        with pytest.raises(ConflictLimitExceeded):
            solver.solve(conflict_limit=5)


class TestDifferential:
    def test_random_3sat_vs_brute_force(self):
        rng = random.Random(2025)
        for _ in range(150):
            num_vars = rng.randrange(3, 9)
            num_clauses = rng.randrange(2, 32)
            clauses = []
            for _ in range(num_clauses):
                size = min(3, num_vars)
                chosen = rng.sample(range(1, num_vars + 1), k=size)
                clauses.append(
                    [v if rng.random() < 0.5 else -v for v in chosen]
                )
            solver = SatSolver()
            for clause in clauses:
                solver.add_clause(clause)
            result = solver.solve()
            assert result.satisfiable == brute_force_satisfiable(clauses, num_vars)
            if result.satisfiable:
                assert check_model(clauses, result.model)

    def test_deterministic_models(self):
        clauses = [[1, 2, 3], [-1, 2], [-2, 3], [1, -3]]
        models = []
        for _ in range(3):
            solver = SatSolver()
            for clause in clauses:
                solver.add_clause(clause)
            models.append(solver.solve().model)
        assert models[0] == models[1] == models[2]


class TestTseitin:
    def test_cnf_equisatisfiable_with_aig(self):
        rng = random.Random(9)
        for _ in range(30):
            aig = AIG()
            names = ["a", "b", "c"]
            literals = [aig.add_input(name) for name in names]
            # Random small network.
            pool = list(literals)
            for _ in range(rng.randrange(1, 8)):
                left = rng.choice(pool) ^ rng.randrange(2)
                right = rng.choice(pool) ^ rng.randrange(2)
                pool.append(aig.AND(left, right))
            root = pool[-1]
            cnf, (root_literal,) = tseitin(aig, [root])
            solver = SatSolver.from_cnf(cnf)
            solver.add_clause([root_literal])
            sat = solver.solve()
            brute = any(
                aig.evaluate([root], dict(zip(names, bits)))[0]
                for bits in itertools.product((0, 1), repeat=3)
            )
            assert sat.satisfiable == brute
            if sat.satisfiable:
                assignment = cnf.decode_inputs(sat.model)
                assert aig.evaluate([root], assignment) == [1]

    def test_constant_roots(self):
        aig = AIG()
        cnf, (true_literal,) = tseitin(aig, [1])
        solver = SatSolver.from_cnf(cnf)
        solver.add_clause([true_literal])
        assert solver.solve().satisfiable
        cnf, (false_literal,) = tseitin(aig, [0])
        solver = SatSolver.from_cnf(cnf)
        solver.add_clause([false_literal])
        assert not solver.solve().satisfiable

    def test_dimacs_render(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        cnf, _ = tseitin(aig, [aig.AND(a, b)])
        text = cnf.to_dimacs()
        assert text.startswith(f"p cnf {cnf.num_vars} {len(cnf.clauses)}")
        assert text.strip().endswith("0")
