"""Differential tests: the bit-parallel engine vs the legacy evaluate oracle.

The legacy per-assignment ``BoolExpr.evaluate`` walk is the ground truth; every
whole-table result produced by :mod:`repro.logic.bittable` must be bit-exact
against it, for random expressions over 1-8 variables.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.logic.bittable import BitTable, clear_caches, iter_bits, variable_column
from repro.logic.expr import (
    And,
    BoolExpr,
    Const,
    Not,
    Or,
    RandomExpressionGenerator,
    Var,
    Xor,
    and_all,
    expr_from_minterms,
    or_all,
    reference_equivalent,
    reference_minterms,
)
from repro.logic.minimize import Implicant, minimize_minterms, prime_implicants

import pytest

_NAMES = ["a", "b", "c", "d", "e", "f", "g", "h"]


def _expressions(num_variables: int, max_leaves: int = 20):
    names = _NAMES[:num_variables]
    leaves = st.one_of(
        st.sampled_from([Var(name) for name in names]),
        st.builds(Const, st.integers(min_value=0, max_value=1)),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.builds(Not, children),
            st.builds(And, children, children),
            st.builds(Or, children, children),
            st.builds(Xor, children, children),
        ),
        max_leaves=max_leaves,
    )


# --------------------------------------------------------------------------- primitives
class TestPrimitives:
    def test_variable_column_matches_definition(self):
        for width in range(1, 9):
            for bit in range(width):
                expected = sum(
                    1 << index for index in range(1 << width) if (index >> bit) & 1
                )
                assert variable_column(bit, width) == expected

    def test_variable_column_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            variable_column(3, 3)

    def test_iter_bits(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b1011)) == [0, 1, 3]
        sparse = (1 << 200) | (1 << 64) | 1
        assert list(iter_bits(sparse)) == [0, 64, 200]

    def test_iter_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            list(iter_bits(-1))

    def test_from_minterms_roundtrip(self):
        table = BitTable.from_minterms(["a", "b", "c"], [0, 5, 7])
        assert table.minterms() == [0, 5, 7]
        assert table.ones() == 3
        assert table.values() == [1, 0, 0, 0, 0, 1, 0, 1]
        assert table.value_at(5) == 1
        assert table.value_at(1) == 0

    def test_evaluate_msb_convention(self):
        # First name is the most-significant index bit, like BoolExpr.minterms.
        table = BitTable.from_expr(And(Var("a"), Not(Var("b"))))
        assert table.evaluate({"a": 1, "b": 0}) == 1
        assert table.evaluate({"a": 0, "b": 1}) == 0
        assert table.minterms() == [2]

    def test_unknown_variable_raises_keyerror(self):
        with pytest.raises(KeyError):
            BitTable.from_expr(Var("z"), variables=["a", "b"])

    def test_constant_tables(self):
        assert BitTable.from_expr(Const(1)).bits == 1
        assert BitTable.from_expr(Const(0)).bits == 0
        assert BitTable.from_expr(Const(1), variables=["a", "b"]).ones() == 4

    def test_fallback_for_custom_nodes(self):
        class Nand(BoolExpr):
            def __init__(self, left, right):
                self.left, self.right = left, right

            def evaluate(self, assignment):
                return 1 - (self.left.evaluate(assignment) & self.right.evaluate(assignment))

            def _collect_variables(self, accumulator):
                self.left._collect_variables(accumulator)
                self.right._collect_variables(accumulator)

            def __hash__(self):
                return hash((Nand, self.left, self.right))

            def __eq__(self, other):
                return self is other

        nand = Nand(Var("a"), Var("b"))
        assert BitTable.from_expr(nand, variables=["a", "b"]).minterms() == [0, 1, 2]

    def test_fallback_for_unhashable_custom_nodes(self):
        class UnhashableNot(BoolExpr):
            __hash__ = None  # e.g. a non-frozen dataclass subclass

            def __init__(self, operand):
                self.operand = operand

            def evaluate(self, assignment):
                return 1 - self.operand.evaluate(assignment)

            def _collect_variables(self, accumulator):
                self.operand._collect_variables(accumulator)

        table = BitTable.from_expr(UnhashableNot(Var("a")), variables=["a", "b"])
        assert table.minterms() == [0, 1]

    def test_from_minterms_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            BitTable.from_minterms(["a"], [0, 4])
        with pytest.raises(ValueError):
            BitTable.from_minterms(["a", "b"], [-1])

    def test_expanded_and_equivalent_across_variable_sets(self):
        narrow = BitTable.from_expr(Var("a"))
        wide = narrow.expanded(["a", "b"])
        assert wide.minterms() == [2, 3]
        assert narrow.equivalent(wide)
        assert not narrow.equivalent(BitTable.from_expr(Var("b")))

    def test_clear_caches_keeps_results_stable(self):
        expression = Xor(Var("a"), Var("b"))
        before = BitTable.from_expr(expression).bits
        clear_caches()
        assert BitTable.from_expr(expression).bits == before


# --------------------------------------------------------------------------- differential
@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=1, max_value=8), st.data())
def test_minterms_match_legacy_oracle(num_variables, data):
    expression = data.draw(_expressions(num_variables))
    names = _NAMES[:num_variables]
    assert BitTable.from_expr(expression, variables=names).minterms() == reference_minterms(
        expression, names
    )


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.data())
def test_equivalence_matches_legacy_oracle(num_variables, data):
    left = data.draw(_expressions(num_variables, max_leaves=12))
    right = data.draw(_expressions(num_variables, max_leaves=12))
    assert left.equivalent_to(right) == reference_equivalent(left, right)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.data())
def test_truth_table_rows_match_evaluate(num_variables, data):
    expression = data.draw(_expressions(num_variables, max_leaves=12))
    for assignment, value in expression.truth_table_rows():
        assert value == expression.evaluate(assignment)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=8), st.data())
def test_minimization_preserves_onset_bit_exact(num_variables, data):
    """minimize_minterms output must stay equivalent to its input on-set."""
    size = 1 << num_variables
    minterms = data.draw(
        st.lists(st.integers(min_value=0, max_value=size - 1), min_size=1, max_size=size, unique=True)
    )
    names = _NAMES[:num_variables]
    minimized = minimize_minterms(names, minterms)
    assert BitTable.from_expr(minimized, variables=names) == BitTable.from_minterms(
        names, minterms
    )


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.data())
def test_cover_mask_matches_covers(num_variables, data):
    size = 1 << num_variables
    minterms = data.draw(
        st.lists(st.integers(min_value=0, max_value=size - 1), min_size=1, max_size=size, unique=True)
    )
    for prime in prime_implicants(minterms, num_variables):
        expected = sum(1 << m for m in range(size) if prime.covers(m))
        assert prime.cover_mask() == expected


def test_implicant_cover_mask_explicit():
    implicant = Implicant(values=0b10, mask=0b01, width=2)  # "1-"
    assert implicant.cover_mask() == (1 << 0b10) | (1 << 0b11)


# --------------------------------------------------------------------------- combinators
class TestBalancedCombinators:
    def test_depth_is_logarithmic(self):
        terms = [Var(f"v{i}") for i in range(64)]
        assert and_all(terms).depth() == 6
        assert or_all(terms).depth() == 6

    def test_semantics_unchanged(self):
        terms = [Var("a"), Var("b"), Var("c"), Var("d"), Var("e")]
        chain_and = terms[0]
        chain_or = terms[0]
        for term in terms[1:]:
            chain_and = And(chain_and, term)
            chain_or = Or(chain_or, term)
        assert and_all(terms).equivalent_to(chain_and)
        assert or_all(terms).equivalent_to(chain_or)

    def test_empty_identities(self):
        assert and_all([]).evaluate({}) == 1
        assert or_all([]).evaluate({}) == 0

    def test_dense_minterm_expression_stays_shallow(self):
        names = _NAMES  # 8 variables, dense on-set of 255 minterms
        dense = expr_from_minterms(names, list(range(255)))
        assert dense.depth() <= 4 + 8 + 1  # ceil(log2(255)) + per-term literals + slack
        assert dense.minterms() == list(range(255))


# --------------------------------------------------------------------------- generator fix
class TestGenerateNontrivial:
    def test_nontrivial_over_declared_variables(self):
        for seed in range(20):
            generator = RandomExpressionGenerator(seed=seed)
            names = ["a", "b", "c"]
            expression = generator.generate_nontrivial(names)
            ones = BitTable.from_expr(expression, variables=names).ones()
            assert 0 < ones < 8

    def test_fallback_total_with_zero_attempts(self):
        generator = RandomExpressionGenerator(seed=0)
        assert generator.generate_nontrivial(["a"], attempts=0).equivalent_to(Var("a"))
        fallback = generator.generate_nontrivial(["a", "b"], attempts=0)
        assert fallback.equivalent_to(And(Var("a"), Var("b")))

    def test_empty_variables_raise(self):
        with pytest.raises(ValueError):
            RandomExpressionGenerator(seed=0).generate_nontrivial([], attempts=0)
