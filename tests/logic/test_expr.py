"""Tests for the boolean expression substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.logic.expr import (
    And,
    Const,
    Not,
    Or,
    RandomExpressionGenerator,
    Var,
    Xor,
    and_all,
    expr_from_minterms,
    or_all,
)


class TestEvaluation:
    def test_variable(self):
        assert Var("a").evaluate({"a": 1}) == 1
        assert Var("a").evaluate({"a": 0}) == 0

    def test_constants(self):
        assert Const(1).evaluate({}) == 1
        assert Const(0).evaluate({}) == 0

    def test_gates(self):
        env = {"a": 1, "b": 0}
        assert And(Var("a"), Var("b")).evaluate(env) == 0
        assert Or(Var("a"), Var("b")).evaluate(env) == 1
        assert Xor(Var("a"), Var("b")).evaluate(env) == 1
        assert Not(Var("b")).evaluate(env) == 1

    def test_nested_expression(self):
        expression = Or(And(Var("a"), Var("b")), Not(Var("c")))
        assert expression.evaluate({"a": 1, "b": 1, "c": 1}) == 1
        assert expression.evaluate({"a": 0, "b": 1, "c": 1}) == 0
        assert expression.evaluate({"a": 0, "b": 0, "c": 0}) == 1

    def test_variables_sorted_unique(self):
        expression = And(Var("b"), Or(Var("a"), Var("b")))
        assert expression.variables() == ["a", "b"]

    def test_depth(self):
        assert Var("a").depth() == 0
        assert And(Var("a"), Not(Var("b"))).depth() == 2


class TestTruthTables:
    def test_truth_table_rows_complete(self):
        expression = And(Var("a"), Var("b"))
        rows = expression.truth_table_rows()
        assert len(rows) == 4
        assert rows[-1] == ({"a": 1, "b": 1}, 1)

    def test_minterms_of_and(self):
        assert And(Var("a"), Var("b")).minterms() == [3]

    def test_minterms_of_or(self):
        assert Or(Var("a"), Var("b")).minterms() == [1, 2, 3]

    def test_expr_from_minterms_roundtrip(self):
        original = Xor(Var("a"), Var("b"))
        rebuilt = expr_from_minterms(["a", "b"], original.minterms())
        assert original.equivalent_to(rebuilt)

    def test_expr_from_minterms_empty(self):
        assert expr_from_minterms(["a"], []).evaluate({"a": 1}) == 0

    def test_expr_from_minterms_requires_variables(self):
        with pytest.raises(ValueError):
            expr_from_minterms([], [0])


class TestRendering:
    def test_to_verilog(self):
        expression = Or(And(Var("a"), Var("b")), Var("c"))
        assert expression.to_verilog() == "((a & b) | c)"

    def test_to_text(self):
        assert And(Var("a"), Var("b")).to_text() == "(a and b)"
        assert Not(Var("a")).to_text() == "not a"

    def test_constant_verilog(self):
        assert Const(1).to_verilog() == "1'b1"
        assert Const(0).to_verilog() == "1'b0"


class TestCombinators:
    def test_and_all_empty_is_true(self):
        assert and_all([]).evaluate({}) == 1

    def test_or_all_empty_is_false(self):
        assert or_all([]).evaluate({}) == 0

    def test_and_all_chain(self):
        expression = and_all([Var("a"), Var("b"), Var("c")])
        assert expression.evaluate({"a": 1, "b": 1, "c": 1}) == 1
        assert expression.evaluate({"a": 1, "b": 0, "c": 1}) == 0


class TestRandomGeneration:
    def test_deterministic_for_seed(self):
        first = RandomExpressionGenerator(seed=5).generate(["a", "b", "c"])
        second = RandomExpressionGenerator(seed=5).generate(["a", "b", "c"])
        assert first.equivalent_to(second)
        assert first.to_verilog() == second.to_verilog()

    def test_different_seeds_differ_eventually(self):
        expressions = {
            RandomExpressionGenerator(seed=seed).generate_nontrivial(["a", "b", "c"]).to_verilog()
            for seed in range(8)
        }
        assert len(expressions) > 1

    def test_nontrivial_is_not_constant(self):
        for seed in range(10):
            expression = RandomExpressionGenerator(seed=seed).generate_nontrivial(["a", "b"])
            minterms = expression.minterms()
            size = 2 ** len(expression.variables())
            assert 0 < len(minterms) < size

    def test_requires_variables(self):
        with pytest.raises(ValueError):
            RandomExpressionGenerator().generate([])


@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=8, unique=True))
def test_expr_from_minterms_matches_spec(minterms):
    expression = expr_from_minterms(["a", "b", "c"], minterms)
    assert sorted(expression.minterms()) == sorted(minterms)


@given(st.integers(min_value=0, max_value=200))
def test_random_expression_evaluation_total(seed):
    """Random expressions always evaluate to 0/1 on every assignment."""
    expression = RandomExpressionGenerator(seed=seed).generate(["a", "b", "c"], max_depth=4)
    for assignment, value in expression.truth_table_rows():
        assert value in (0, 1)
        assert set(assignment) == set(expression.variables())
