"""Tests for the Karnaugh-map representation."""

from __future__ import annotations

import pytest

from repro.logic.expr import And, Var, Xor
from repro.logic.kmap import KarnaughMap, random_kmap


class TestConstruction:
    def test_from_minterms(self):
        kmap = KarnaughMap.from_minterms(["a", "b"], [3], dont_cares=[0])
        assert kmap.minterms() == [3]
        assert kmap.dont_cares() == [0]
        assert kmap.cells[1] == 0

    def test_from_expression(self):
        kmap = KarnaughMap.from_expression(And(Var("a"), Var("b")))
        assert kmap.minterms() == [3]

    def test_invalid_variable_count(self):
        with pytest.raises(ValueError):
            KarnaughMap(variables=["a"])
        with pytest.raises(ValueError):
            KarnaughMap(variables=list("abcde"))

    def test_value_at(self):
        kmap = KarnaughMap.from_minterms(["a", "b"], [2])
        assert kmap.value_at({"a": 1, "b": 0}) == 1
        assert kmap.value_at({"a": 0, "b": 0}) == 0


class TestMinimization:
    def test_simple_map_minimises(self):
        kmap = KarnaughMap.from_minterms(["a", "b"], [2, 3])
        expression = kmap.minimized_expression()
        assert expression.equivalent_to(Var("a"))

    def test_xor_map(self):
        kmap = KarnaughMap.from_expression(Xor(Var("a"), Var("b")))
        assert kmap.minimized_expression().equivalent_to(Xor(Var("a"), Var("b")))

    def test_dont_cares_allow_simplification(self):
        # On-set {3}, don't care {2}: with the don't care, the function reduces to "a".
        kmap = KarnaughMap.from_minterms(["a", "b"], [3], dont_cares=[2])
        expression = kmap.minimized_expression()
        # Must still match the defined cells.
        assert expression.evaluate({"a": 1, "b": 1}) == 1
        assert expression.evaluate({"a": 0, "b": 0}) == 0
        assert expression.evaluate({"a": 0, "b": 1}) == 0

    def test_consistency_check(self):
        kmap = KarnaughMap.from_minterms(["a", "b", "c"], [1, 3, 5, 7])
        expression = kmap.minimized_expression()
        for index in range(8):
            assignment = {"a": (index >> 2) & 1, "b": (index >> 1) & 1, "c": index & 1}
            assert expression.evaluate(assignment) == (1 if index in kmap.minterms() else 0)


class TestRendering:
    def test_render_contains_gray_order_labels(self):
        kmap = KarnaughMap.from_minterms(["a", "b", "c", "d"], [0, 5, 10])
        rendered = kmap.render()
        assert "ab\\cd" in rendered
        assert "00" in rendered and "01" in rendered and "11" in rendered and "10" in rendered

    def test_render_marks_dont_cares(self):
        kmap = KarnaughMap.from_minterms(["a", "b"], [1], dont_cares=[2])
        assert "d" in kmap.render()

    def test_describe_lists_rules(self):
        kmap = KarnaughMap.from_minterms(["a", "b"], [3])
        description = kmap.describe()
        assert "Variables:" in description
        assert "If a=1, b=1, then out=1;" in description

    def test_describe_skips_dont_cares(self):
        kmap = KarnaughMap.from_minterms(["a", "b"], [3], dont_cares=[0])
        assert "out=d" not in kmap.describe()


class TestRandomKmap:
    def test_deterministic(self):
        first = random_kmap(["a", "b", "c"], seed=3)
        second = random_kmap(["a", "b", "c"], seed=3)
        assert first.minterms() == second.minterms()

    def test_never_empty(self):
        for seed in range(10):
            assert random_kmap(["a", "b"], seed=seed).minterms()

    def test_dont_care_probability(self):
        kmap = random_kmap(["a", "b", "c", "d"], seed=1, dont_care_probability=0.5)
        assert kmap.dont_cares()
