"""Tests for Quine-McCluskey minimisation."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.logic.expr import And, Not, Or, Var, Xor, expr_from_minterms
from repro.logic.minimize import (
    Implicant,
    literal_cost,
    minimal_cover,
    minimize_expression,
    minimize_minterms,
    prime_implicants,
)


class TestImplicant:
    def test_covers(self):
        implicant = Implicant(values=0b10, mask=0b01, width=2)  # "1-"
        assert implicant.covers(0b10)
        assert implicant.covers(0b11)
        assert not implicant.covers(0b00)

    def test_literal_count(self):
        assert Implicant(values=0b10, mask=0b01, width=2).literal_count() == 1
        assert Implicant(values=0b11, mask=0b00, width=2).literal_count() == 2

    def test_to_expr(self):
        implicant = Implicant(values=0b10, mask=0b01, width=2)
        expression = implicant.to_expr(["a", "b"])
        assert expression.evaluate({"a": 1, "b": 0}) == 1
        assert expression.evaluate({"a": 1, "b": 1}) == 1
        assert expression.evaluate({"a": 0, "b": 0}) == 0

    def test_full_dont_care_is_constant_one(self):
        implicant = Implicant(values=0, mask=0b11, width=2)
        assert implicant.to_expr(["a", "b"]).evaluate({"a": 0, "b": 0}) == 1


class TestPrimeImplicants:
    def test_pair_merges(self):
        primes = prime_implicants([0b00, 0b01], 2)
        assert len(primes) == 1
        assert primes[0].mask == 0b01

    def test_xor_has_two_primes(self):
        primes = prime_implicants([0b01, 0b10], 2)
        assert len(primes) == 2

    def test_full_cover_single_prime(self):
        primes = prime_implicants([0, 1, 2, 3], 2)
        assert len(primes) == 1
        assert primes[0].mask == 0b11

    def test_cover_selects_essentials(self):
        minterms = [0, 1, 3]
        primes = prime_implicants(minterms, 2)
        cover = minimal_cover(minterms, primes)
        covered = {m for m in minterms if any(p.covers(m) for p in cover)}
        assert covered == set(minterms)


class TestMinimization:
    def test_classic_example(self):
        # f(a,b) with minterms {2,3} reduces to just "a".
        expression = minimize_minterms(["a", "b"], [2, 3])
        assert expression.equivalent_to(Var("a"))
        assert literal_cost(expression) == 1

    def test_empty_onset_is_zero(self):
        expression = minimize_minterms(["a", "b"], [])
        assert all(value == 0 for _, value in expression.truth_table_rows()) or expression.evaluate({"a": 0, "b": 0}) == 0

    def test_full_onset_is_one(self):
        expression = minimize_minterms(["a", "b"], [0, 1, 2, 3])
        assert expression.evaluate({"a": 0, "b": 1}) == 1
        assert literal_cost(expression) == 0

    def test_minimization_never_increases_cost(self):
        original = Or(And(Var("a"), Var("b")), And(Var("a"), Not(Var("b"))))
        minimized = minimize_expression(original)
        assert minimized.equivalent_to(original)
        assert literal_cost(minimized) <= literal_cost(original)
        assert minimized.equivalent_to(Var("a"))

    def test_xor_cannot_be_simplified_below_four_literals(self):
        expression = minimize_expression(Xor(Var("a"), Var("b")))
        assert expression.equivalent_to(Xor(Var("a"), Var("b")))
        assert literal_cost(expression) == 4

    def test_three_variable_consensus(self):
        # ab + a'c + bc  minimises to ab + a'c (consensus term dropped).
        minterms = sorted(
            index
            for index, bits in enumerate(
                [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]
            )
            if (bits[0] and bits[1]) or ((not bits[0]) and bits[2]) or (bits[1] and bits[2])
        )
        expression = minimize_minterms(["a", "b", "c"], minterms)
        assert sorted(expression.minterms()) == minterms
        assert literal_cost(expression) <= 4

    def test_expression_without_variables_passthrough(self):
        from repro.logic.expr import Const

        assert minimize_expression(Const(1)).evaluate({}) == 1


@settings(max_examples=60)
@given(
    st.integers(min_value=2, max_value=4),
    st.data(),
)
def test_minimization_preserves_function(num_variables, data):
    """Property: the minimised expression computes exactly the same function."""
    size = 2**num_variables
    minterms = data.draw(
        st.lists(st.integers(min_value=0, max_value=size - 1), min_size=1, max_size=size, unique=True)
    )
    variables = ["a", "b", "c", "d"][:num_variables]
    original = expr_from_minterms(variables, minterms)
    minimized = minimize_minterms(variables, minterms)
    assert minimized.equivalent_to(original)
    assert literal_cost(minimized) <= literal_cost(original)
