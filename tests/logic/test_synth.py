"""Tests for expression → Verilog synthesis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic.expr import And, Or, RandomExpressionGenerator, Var, expr_from_minterms
from repro.logic.synth import STYLES, SynthesisRequest, expression_to_module, truth_table_to_module
from repro.verilog.syntax_checker import check_source
from repro.verilog.simulator.simulator import simulate_combinational


def _verify_against_expression(source: str, expression, module_name: str) -> None:
    """Simulate the module exhaustively and compare with the expression."""
    variables = expression.variables()
    vectors = [
        {name: (index >> position) & 1 for position, name in enumerate(variables)}
        for index in range(1 << len(variables))
    ]
    results = simulate_combinational(source, vectors, module_name)
    for vector, outputs in zip(vectors, results):
        assert outputs["out"].to_int() == expression.evaluate(vector)


class TestStyles:
    @pytest.mark.parametrize("style", STYLES)
    def test_all_styles_compile_and_match(self, style):
        expression = Or(And(Var("a"), Var("b")), Var("c"))
        source = expression_to_module(expression, SynthesisRequest(module_name="logic_unit", style=style))
        assert check_source(source).ok
        _verify_against_expression(source, expression, "logic_unit")

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            expression_to_module(Var("a"), SynthesisRequest(style="netlist"))

    def test_expression_without_variables_rejected(self):
        from repro.logic.expr import Const

        with pytest.raises(ValueError):
            expression_to_module(Const(1))

    def test_custom_module_and_output_names(self):
        source = expression_to_module(
            Var("a"), SynthesisRequest(module_name="my_logic", output_name="result")
        )
        assert "module my_logic" in source
        assert "result" in source
        assert check_source(source).ok


class TestTruthTableModule:
    def test_explicit_rows(self):
        source = truth_table_to_module(["a", "b"], {3: 1}, SynthesisRequest(module_name="tt"))
        assert check_source(source).ok
        results = simulate_combinational(
            source, [{"a": a, "b": b} for a in (0, 1) for b in (0, 1)], "tt"
        )
        assert [r["out"].to_int() for r in results] == [0, 0, 0, 1]

    def test_default_arm_present(self):
        source = truth_table_to_module(["a", "b"], {0: 1})
        assert "default" in source

    def test_without_default_arm(self):
        source = truth_table_to_module(
            ["a", "b"], {0: 1}, SynthesisRequest(include_default=False)
        )
        assert "default" not in source
        # Still compiles, but uncovered inputs latch (x) — that is the corner-case
        # hallucination the paper describes.
        assert check_source(source).ok


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=500))
def test_random_expressions_synthesise_correctly(seed):
    """Property: synthesised modules implement exactly the generating expression."""
    generator = RandomExpressionGenerator(seed=seed)
    expression = generator.generate_nontrivial(["a", "b", "c"])
    style = STYLES[seed % len(STYLES)]
    source = expression_to_module(expression, SynthesisRequest(module_name="rand_logic", style=style))
    assert check_source(source).ok
    _verify_against_expression(source, expression, "rand_logic")


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=7, unique=True))
def test_truth_table_module_matches_rows(minterms):
    rows = {m: 1 for m in minterms}
    source = truth_table_to_module(["a", "b", "c"], rows)
    expression = expr_from_minterms(["a", "b", "c"], minterms)
    _verify_against_expression(source, expression, "logic_unit")
