"""``python -m repro.runs`` exit codes: the scriptable health probe.

``status`` distinguishes the states automation cares about: 0 (complete and
healthy), 2 (store/manifest error), 3 (incomplete), 4 (quarantined units
present, even if the sweep otherwise finished).
"""

from __future__ import annotations

import json

import pytest

from repro.runs.cli import main
from repro.runs.engine import RunEngine
from repro.runs.store import RunStore
from test_manifest import tiny_manifest


@pytest.fixture()
def planned(tmp_path):
    """A run directory holding a tiny manifest, nothing executed yet."""
    store = RunStore(tmp_path)
    manifest = tiny_manifest()
    store.write_manifest(manifest)
    return tmp_path, manifest, store


class TestStatusExitCodes:
    def test_missing_manifest_is_a_store_error(self, tmp_path):
        assert main(["--run-dir", str(tmp_path), "status"]) == 2

    def test_missing_run_dir_is_a_store_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_DIR", raising=False)
        assert main(["status"]) == 2

    def test_incomplete_run_exits_3(self, planned, capsys):
        run_dir, _, _ = planned
        assert main(["--run-dir", str(run_dir), "status"]) == 3
        assert "0.0% complete" in capsys.readouterr().out

    def test_partially_executed_run_still_exits_3(self, planned):
        run_dir, _, _ = planned
        assert main(["--run-dir", str(run_dir), "run", "--max-units", "1"]) == 0
        assert main(["--run-dir", str(run_dir), "status"]) == 3

    def test_complete_healthy_run_exits_0(self, planned, capsys):
        run_dir, _, _ = planned
        assert main(["--run-dir", str(run_dir), "run"]) == 0
        assert main(["--run-dir", str(run_dir), "status"]) == 0
        assert "100.0% complete" in capsys.readouterr().out

    def test_quarantined_unit_exits_4_even_when_complete(self, planned, capsys):
        run_dir, manifest, store = planned
        # Poison one unit up front (as the engine would after burning every
        # attempt), then let the sweep finish around it.
        poison = RunEngine(manifest, store).units()[0]
        store.record_quarantine(poison, attempts=3, error="worker died")
        assert main(["--run-dir", str(run_dir), "run"]) == 0
        assert main(["--run-dir", str(run_dir), "status"]) == 4
        captured = capsys.readouterr()
        assert (
            f"quarantined: {poison.task_id} sample {poison.sample_index}"
            f" after 3 attempt(s): worker died" in captured.out
        )
        assert "1 unit(s) quarantined" in captured.err

    def test_warnings_are_reported(self, planned, capsys):
        run_dir, _, store = planned
        store.record_warning("serial-fallback", "2 of 6 requests do not pickle")
        main(["--run-dir", str(run_dir), "status"])
        assert (
            "warning [serial-fallback]: 2 of 6 requests do not pickle"
            in capsys.readouterr().out
        )


class TestStatusJson:
    """``status --json``: one machine-readable object, same exit codes."""

    def _payload(self, capsys) -> dict:
        return json.loads(capsys.readouterr().out)

    def test_incomplete_run(self, planned, capsys):
        run_dir, manifest, _ = planned
        assert main(["--run-dir", str(run_dir), "status", "--json"]) == 3
        payload = self._payload(capsys)
        assert payload["manifest_hash"] == manifest.manifest_hash
        assert payload["exit_code"] == 3
        assert payload["completed_units"] == 0
        assert payload["total_units"] > 0
        assert payload["percent_complete"] == 0.0
        assert not payload["complete"]

    def test_complete_healthy_run(self, planned, capsys):
        run_dir, _, _ = planned
        assert main(["--run-dir", str(run_dir), "run"]) == 0
        capsys.readouterr()
        assert main(["--run-dir", str(run_dir), "status", "--json"]) == 0
        payload = self._payload(capsys)
        assert payload["complete"] and payload["healthy"]
        assert payload["exit_code"] == 0
        assert payload["percent_complete"] == 100.0
        assert payload["completed_units"] == payload["total_units"]
        assert payload["quarantined"] == []

    def test_quarantined_run_carries_details(self, planned, capsys):
        run_dir, manifest, store = planned
        poison = RunEngine(manifest, store).units()[0]
        store.record_quarantine(poison, attempts=3, error="worker died")
        store.record_warning("serial-fallback", "1 of 6 requests do not pickle")
        assert main(["--run-dir", str(run_dir), "run"]) == 0
        capsys.readouterr()
        assert main(["--run-dir", str(run_dir), "status", "--json"]) == 4
        payload = self._payload(capsys)
        assert payload["exit_code"] == 4
        assert payload["complete"] and not payload["healthy"]
        assert payload["quarantined"] == [
            {
                "key": poison.key,
                "task": poison.task_id,
                "sample": poison.sample_index,
                "attempts": 3,
                "error": "worker died",
            }
        ]
        assert payload["warnings"] == [
            {
                "category": "serial-fallback",
                "message": "1 of 6 requests do not pickle",
            }
        ]
