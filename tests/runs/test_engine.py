"""RunEngine execution semantics: resume, sharding, crash recovery."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale
from repro.runs.aggregate import StreamingAggregator
from repro.runs.engine import RunEngine
from repro.runs.presets import table4_manifest
from repro.runs.store import JOURNAL_FILENAME, RunStore


@pytest.fixture(scope="module")
def manifest():
    return table4_manifest(
        ExperimentScale.tiny(), baseline_keys=["gpt-4"], include_haven=False
    )


@pytest.fixture(scope="module")
def reference_rows(manifest):
    """Rows of one uninterrupted in-memory run (the parity oracle)."""
    store = RunStore.ephemeral()
    engine = RunEngine(manifest, store)
    stats = engine.run()
    assert stats.complete and stats.skipped == 0
    return StreamingAggregator(manifest, resolver=engine.resolver).feed_store(store).table4_rows()


def rows_for(manifest, store):
    return StreamingAggregator(manifest).feed_store(store).table4_rows()


class TestExecution:
    def test_full_run_covers_every_unit(self, manifest, tmp_path):
        store = RunStore(tmp_path / "run")
        engine = RunEngine(manifest, store)
        stats = engine.run()
        assert stats.executed == stats.total_units == len(engine.units())
        done, total = engine.progress()
        assert done == total

    def test_completed_run_reexecutes_zero_units(self, manifest, tmp_path):
        store = RunStore(tmp_path / "run")
        RunEngine(manifest, store).run()
        stats = RunEngine(manifest, RunStore(tmp_path / "run")).run()
        assert stats.executed == 0
        assert stats.skipped == stats.total_units

    def test_resume_after_partial_run_matches_uninterrupted(
        self, manifest, tmp_path, reference_rows
    ):
        directory = tmp_path / "run"
        partial = RunEngine(manifest, RunStore(directory)).run(max_units=11)
        assert partial.executed == 11 and not partial.complete

        resumed_store = RunStore(directory)
        assert len(resumed_store) == 11
        stats = RunEngine(manifest, resumed_store).run()
        assert stats.skipped == 11
        assert stats.executed == stats.total_units - 11
        assert rows_for(manifest, RunStore(directory)) == reference_rows

    def test_truncated_journal_resumes_to_identical_rows(
        self, manifest, tmp_path, reference_rows
    ):
        """Kill -9 mid-sweep: truncate the journal mid-suite and re-invoke."""
        directory = tmp_path / "run"
        RunEngine(manifest, RunStore(directory)).run()
        journal = directory / JOURNAL_FILENAME
        lines = journal.read_text().splitlines()
        assert len(lines) > 10
        # Keep the first third plus a torn trailing line (the crash signature).
        journal.write_text("\n".join(lines[: len(lines) // 3]) + "\n" + lines[-1][: 25])

        store = RunStore(directory)
        assert store.recovered_lines == 1
        stats = RunEngine(manifest, store).run()
        assert stats.skipped == len(lines) // 3
        assert stats.executed == stats.total_units - len(lines) // 3
        assert rows_for(manifest, RunStore(directory)) == reference_rows

    def test_two_shards_fill_one_store_bit_for_bit(self, manifest, tmp_path, reference_rows):
        directory = tmp_path / "run"
        first = RunEngine(manifest, RunStore(directory)).run(shard_index=0, shard_count=2)
        second = RunEngine(manifest, RunStore(directory)).run(shard_index=1, shard_count=2)
        total = len(RunEngine(manifest, RunStore(directory)).units())
        assert first.executed + second.executed == total
        assert first.total_units + second.total_units == total
        assert rows_for(manifest, RunStore(directory)) == reference_rows

    def test_shard_units_are_disjoint_and_exhaustive(self, manifest):
        engine = RunEngine(manifest, RunStore.ephemeral())
        all_keys = {unit.key for unit in engine.units()}
        shard_keys = [
            {unit.key for unit in engine.shard_units(index, 3)} for index in range(3)
        ]
        assert set().union(*shard_keys) == all_keys
        assert sum(len(keys) for keys in shard_keys) == len(all_keys)

    def test_invalid_shard_rejected(self, manifest):
        engine = RunEngine(manifest, RunStore.ephemeral())
        with pytest.raises(ValueError):
            engine.shard_units(2, 2)
        with pytest.raises(ValueError):
            engine.shard_units(0, 0)


class TestStreamingAggregation:
    def test_partial_journal_renders_partial_report(self, manifest, tmp_path):
        directory = tmp_path / "run"
        RunEngine(manifest, RunStore(directory)).run(max_units=9)
        aggregator = StreamingAggregator(manifest).feed_store(RunStore(directory))
        progress = aggregator.progress()
        assert progress.completed == 9 and not progress.complete
        assert 0.0 < progress.percent < 100.0
        # A report renders from the partial journal without raising.
        text = aggregator.report()
        assert "GPT-4" in text

    def test_streaming_feed_matches_batch_feed(self, manifest, tmp_path):
        directory = tmp_path / "run"
        RunEngine(manifest, RunStore(directory)).run()
        store = RunStore(directory)
        incremental = StreamingAggregator(manifest)
        for record in store.records():
            incremental.feed(record)
        batch = StreamingAggregator(manifest).feed_store(store)
        assert incremental.table4_rows() == batch.table4_rows()

    def test_foreign_manifest_records_ignored(self, manifest, tmp_path):
        directory = tmp_path / "run"
        RunEngine(manifest, RunStore(directory)).run(max_units=4)
        aggregator = StreamingAggregator(manifest)
        store = RunStore(directory)
        for record in store.records():
            altered = dict(record)
            altered["manifest"] = "f" * 64
            assert not aggregator.feed(altered)
        assert aggregator.progress().completed == 0
