"""Deterministic fault injection (`repro.runs.faults`) — matching and firing.

Real crash/hang behaviour under the executor lives in ``tests/chaos``; these
are the fast contract tests for spec selection and activation channels.
"""

from __future__ import annotations

import time

import pytest

from repro.deadline import CheckTimeout, deadline_scope
from repro.runs.faults import (
    FAULTS_ENV,
    FaultSpec,
    InjectedFault,
    active_faults,
    clear_faults,
    faults_env_value,
    install_faults,
    maybe_inject,
)


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    clear_faults()
    yield
    clear_faults()


class TestFaultSpec:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("explode")

    def test_empty_selectors_match_anything(self):
        spec = FaultSpec("raise")
        assert spec.matches("any_task", "d" * 64, 1)
        assert spec.matches("other", "", 99)

    def test_task_id_is_exact_match(self):
        spec = FaultSpec("raise", task_id="adder")
        assert spec.matches("adder", "", 1)
        assert not spec.matches("adder2", "", 1)

    def test_design_key_is_prefix_match(self):
        spec = FaultSpec("raise", design_key="abc1")
        assert spec.matches("t", "abc123" + "0" * 58, 1)
        assert not spec.matches("t", "abd" + "0" * 61, 1)

    def test_max_attempt_models_transient_faults(self):
        transient = FaultSpec("raise", max_attempt=1)
        assert transient.matches("t", "", 1)
        assert not transient.matches("t", "", 2)
        persistent = FaultSpec("raise")  # max_attempt=0: every attempt
        assert persistent.matches("t", "", 5)

    def test_dict_round_trip(self):
        spec = FaultSpec(
            "hang", task_id="t", design_key="ab", max_attempt=2, hang_s=1.5, cooperative=True
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestActivation:
    def test_no_plan_is_inert(self):
        assert active_faults() == ()
        maybe_inject("task", "d" * 64, 1)  # no-op

    def test_installed_plan_fires_and_clears(self):
        install_faults([FaultSpec("raise", task_id="t")])
        with pytest.raises(InjectedFault):
            maybe_inject("t", "", 1)
        maybe_inject("other", "", 1)  # selector mismatch: no fire
        clear_faults()
        maybe_inject("t", "", 1)  # plan gone

    def test_env_plan_round_trips(self, monkeypatch):
        plan = [
            FaultSpec("crash", task_id="a", max_attempt=1),
            FaultSpec("hang", design_key="ff", hang_s=2.0, cooperative=True),
        ]
        monkeypatch.setenv(FAULTS_ENV, faults_env_value(plan))
        assert list(active_faults()) == plan

    def test_env_cache_tracks_variable_changes(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, faults_env_value([FaultSpec("raise")]))
        assert [spec.action for spec in active_faults()] == ["raise"]
        monkeypatch.setenv(
            FAULTS_ENV, faults_env_value([FaultSpec("hang"), FaultSpec("raise")])
        )
        assert [spec.action for spec in active_faults()] == ["hang", "raise"]
        monkeypatch.delenv(FAULTS_ENV)
        assert active_faults() == ()

    def test_installed_plan_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, faults_env_value([FaultSpec("raise")]))
        install_faults([])
        maybe_inject("t", "", 1)  # empty installed plan wins: nothing fires

    def test_first_matching_spec_wins(self):
        install_faults(
            [FaultSpec("raise", task_id="other"), FaultSpec("raise", task_id="t")]
        )
        with pytest.raises(InjectedFault):
            maybe_inject("t", "", 1)


class TestFiring:
    def test_crash_in_parent_degrades_to_injected_fault(self):
        # os._exit is reserved for pool workers; in-process the plan must
        # never be able to kill the run itself.
        install_faults([FaultSpec("crash", task_id="t")])
        with pytest.raises(InjectedFault, match="serial execution"):
            maybe_inject("t", "", 1)

    def test_cooperative_hang_honors_the_deadline(self):
        install_faults([FaultSpec("hang", hang_s=30.0, cooperative=True)])
        started = time.monotonic()
        with deadline_scope(0.05):
            with pytest.raises(CheckTimeout):
                maybe_inject("t", "", 1)
        assert time.monotonic() - started < 5.0

    def test_short_hang_completes(self):
        install_faults([FaultSpec("hang", hang_s=0.02)])
        started = time.monotonic()
        maybe_inject("t", "", 1)  # returns after the injected stall
        assert time.monotonic() - started >= 0.02
