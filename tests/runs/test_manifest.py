"""Manifest hashing, expansion and round-trip serialization."""

from __future__ import annotations

import pytest

from repro.bench.evaluator import EvaluationConfig
from repro.experiments import ExperimentScale
from repro.runs.manifest import ProfileSpec, RunManifest, SuiteSpec, WorkUnit


def tiny_manifest(temperatures=(0.2,), num_samples=2) -> RunManifest:
    return RunManifest(
        name="test",
        experiment="custom",
        scale=ExperimentScale.tiny().to_dict(),
        config=EvaluationConfig(num_samples=num_samples, ks=(1,), temperatures=temperatures),
        profiles=[
            ProfileSpec(profile_id="baseline:gpt-4", kind="baseline", key="gpt-4", display="GPT-4"),
            ProfileSpec(
                profile_id="baseline:gpt-3.5", kind="baseline", key="gpt-3.5", display="GPT-3.5"
            ),
        ],
        suites=[SuiteSpec("machine"), SuiteSpec("human")],
    )


class TestManifestHash:
    def test_round_trip_preserves_hash(self):
        manifest = tiny_manifest()
        clone = RunManifest.from_dict(manifest.to_dict())
        assert clone.manifest_hash == manifest.manifest_hash

    def test_hash_changes_with_config(self):
        assert (
            tiny_manifest(temperatures=(0.2,)).manifest_hash
            != tiny_manifest(temperatures=(0.5,)).manifest_hash
        )

    def test_hash_changes_with_profiles(self):
        manifest = tiny_manifest()
        manifest.profiles = manifest.profiles[:1]
        assert manifest.manifest_hash != tiny_manifest().manifest_hash

    def test_profile_lookup(self):
        manifest = tiny_manifest()
        assert manifest.profile("baseline:gpt-4").key == "gpt-4"
        with pytest.raises(KeyError):
            manifest.profile("nope")


class TestExpansion:
    def test_unit_count_and_order(self):
        manifest = tiny_manifest(temperatures=(0.2, 0.5), num_samples=3)
        task_ids = {"machine": ["m0", "m1"], "human": ["h0"]}
        units = manifest.expand(task_ids)
        # profiles × (machine 2 + human 1 tasks) × 2 temperatures × 3 samples
        assert len(units) == 2 * 3 * 2 * 3
        first = units[0]
        assert (first.profile_id, first.suite_id, first.task_id) == (
            "baseline:gpt-4",
            "machine",
            "m0",
        )
        assert first.temperature == 0.2 and first.sample_index == 0
        # Sample index varies fastest, then temperature, then task.
        assert [u.sample_index for u in units[:6]] == [0, 1, 2, 0, 1, 2]
        assert [u.temperature for u in units[:6]] == [0.2] * 3 + [0.5] * 3

    def test_unit_keys_unique_and_temperature_sensitive(self):
        manifest = tiny_manifest(temperatures=(0.2, 0.5), num_samples=2)
        units = manifest.expand({"machine": ["m0"], "human": ["h0"]})
        keys = [unit.key for unit in units]
        assert len(set(keys)) == len(keys)
        a = WorkUnit("h", "p", "s", "t", 0.2, 0)
        b = WorkUnit("h", "p", "s", "t", 0.5, 0)
        assert a.key != b.key

    def test_unit_key_canonicalises_temperature_type(self):
        # An int-typed temperature is the same draw as its float twin.
        assert WorkUnit("h", "p", "s", "t", 0, 0).key == WorkUnit("h", "p", "s", "t", 0.0, 0).key
