"""Bit-for-bit parity: the run engine vs the old monolithic in-memory path.

The pre-refactor ``run_table4``/``run_table6`` logic (shared
``BenchmarkEvaluator`` over the built suites) is replicated inline here as the
oracle; the refactored drivers must reproduce it exactly — including the
per-task sample/pass counts and the capped failure-example strings.
"""

from __future__ import annotations

import pytest

from repro.bench.evaluator import BenchmarkEvaluator, EvaluationConfig, SuiteResult, TaskResult
from repro.bench.jobs import CheckOutcome
from repro.bench.reporting import table4_row_from_results
from repro.core.llm.profiles import BASELINE_PROFILES
from repro.experiments import (
    TABLE4_BASELINES,
    ExperimentScale,
    baseline_pipeline,
    build_suites,
    run_table4,
    run_table6,
)
from repro.runs.aggregate import StreamingAggregator
from repro.runs.engine import RunEngine
from repro.runs.presets import table4_manifest
from repro.runs.store import RunStore

BASELINES = ["gpt-4", "rtlcoder-deepseek"]


@pytest.fixture(scope="module")
def scale():
    return ExperimentScale.tiny()


@pytest.fixture(scope="module")
def legacy_results(scale):
    """The old in-memory driver, replicated verbatim (without HaVen rows)."""
    suites = build_suites(scale)
    evaluator = BenchmarkEvaluator(scale.evaluation_config())
    results = {}
    rows = []
    for key in BASELINES:
        profile = BASELINE_PROFILES[key]
        pipeline = baseline_pipeline(key, use_sicot=False, seed=scale.seed)
        by_suite = {name: evaluator.evaluate(pipeline, suite) for name, suite in suites.items()}
        results[key] = by_suite
        rows.append(
            table4_row_from_results(
                model=profile.name,
                group=TABLE4_BASELINES.get(key, "General LLM"),
                open_source=profile.open_source,
                model_size=profile.model_size,
                machine=by_suite["machine"],
                human=by_suite["human"],
                rtllm=by_suite["rtllm"],
                v2=by_suite["v2"],
            )
        )
    return results, rows


class TestTable4Parity:
    def test_rows_bit_for_bit(self, scale, legacy_results):
        _, legacy_rows = legacy_results
        new_rows = run_table4(scale, baseline_keys=BASELINES, include_haven=False)
        assert new_rows == legacy_rows

    def test_suite_results_bit_for_bit(self, scale, legacy_results):
        """The aggregated SuiteResults equal the evaluator's, task by task."""
        legacy, _ = legacy_results
        manifest = table4_manifest(scale, baseline_keys=BASELINES, include_haven=False)
        store = RunStore.ephemeral()
        engine = RunEngine(manifest, store)
        engine.run()
        aggregator = StreamingAggregator(manifest, resolver=engine.resolver).feed_store(store)
        for key in BASELINES:
            for suite_id in ("machine", "human", "rtllm", "v2"):
                rebuilt = aggregator.suite_result(f"baseline:{key}", suite_id)
                oracle = legacy[key][suite_id]
                assert rebuilt.suite_name == oracle.suite_name
                assert rebuilt.model_name == oracle.model_name
                assert rebuilt.ks == oracle.ks
                assert rebuilt.task_results == oracle.task_results

    def test_sharded_run_matches_in_memory(self, scale, legacy_results, tmp_path):
        _, legacy_rows = legacy_results
        manifest = table4_manifest(scale, baseline_keys=BASELINES, include_haven=False)
        directory = tmp_path / "sharded"
        RunEngine(manifest, RunStore(directory)).run(shard_index=1, shard_count=2)
        RunEngine(manifest, RunStore(directory)).run(shard_index=0, shard_count=2)
        rows = StreamingAggregator(manifest).feed_store(RunStore(directory)).table4_rows()
        assert rows == legacy_rows


class TestTable6Parity:
    def test_rows_bit_for_bit(self, scale):
        from repro.bench.symbolic_suite import build_symbolic_suite
        from repro.bench.verilogeval import SuiteConfig
        from repro.experiments import TABLE6_MODELS

        suite = build_symbolic_suite(
            SuiteConfig(num_tasks=scale.human_tasks, seed=scale.seed + 11)
        )
        evaluator = BenchmarkEvaluator(scale.evaluation_config())
        legacy = {}
        for key in TABLE6_MODELS:
            with_cot = evaluator.evaluate(
                baseline_pipeline(key, use_sicot=True, seed=scale.seed), suite
            )
            without_cot = evaluator.evaluate(
                baseline_pipeline(key, use_sicot=False, seed=scale.seed), suite
            )
            legacy[BASELINE_PROFILES[key].name] = (
                with_cot.functional_percentages()[1],
                without_cot.functional_percentages()[1],
            )
        assert run_table6(scale, full_subset=False) == legacy


class TestSerializationRoundTrips:
    def test_check_outcome(self):
        outcome = CheckOutcome(
            sample_index=3,
            temperature=0.5,
            syntax_ok=True,
            functional_passed=False,
            failure_summary="step 0: output 'q' expected 1 got 0 (inputs {'a': 1})",
            total_checks=12,
            design_key="ab" * 32,
        )
        assert CheckOutcome.from_dict(outcome.to_dict()) == outcome

    def test_task_and_suite_result(self):
        task = TaskResult(
            task_id="t",
            category="truth_table",
            num_samples=4,
            num_functional_passes=2,
            num_syntax_passes=3,
            temperature=0.2,
            failure_examples=["syntax error", "mismatch"],
        )
        suite = SuiteResult(
            suite_name="s", model_name="m", task_results=[task], ks=(1, 5)
        )
        rebuilt = SuiteResult.from_dict(suite.to_dict())
        assert rebuilt == suite
        assert rebuilt.functional_pass_at_k() == suite.functional_pass_at_k()

    def test_evaluation_config(self):
        config = EvaluationConfig(
            num_samples=7,
            ks=(1, 5),
            temperatures=(0.2, 0.8),
            seed=3,
            max_tasks=9,
            mode="formal",
            formal_conflict_limit=None,
            max_workers=4,
            memoize_results=False,
        )
        assert EvaluationConfig.from_dict(config.to_dict()) == config

    def test_experiment_scale(self):
        scale = ExperimentScale.paper()
        assert ExperimentScale.from_dict(scale.to_dict()) == scale
