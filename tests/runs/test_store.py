"""RunStore journal semantics: persistence, recovery, idempotence."""

from __future__ import annotations

import json

import pytest

from repro.bench.jobs import CheckOutcome
from repro.runs.manifest import WorkUnit
from repro.runs.store import JOURNAL_FILENAME, RunStore, RunStoreError
from test_manifest import tiny_manifest


def unit(sample_index: int = 0, temperature: float = 0.2) -> WorkUnit:
    return WorkUnit(
        manifest_hash="m" * 64,
        profile_id="baseline:gpt-4",
        suite_id="machine",
        task_id="t0",
        temperature=temperature,
        sample_index=sample_index,
    )


def outcome(sample_index: int = 0) -> CheckOutcome:
    return CheckOutcome(
        sample_index=sample_index,
        temperature=0.2,
        syntax_ok=True,
        functional_passed=True,
        total_checks=7,
        design_key="d" * 64,
    )


class TestJournal:
    def test_round_trip_across_reopen(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.record(unit(0), outcome(0))
        assert store.record(unit(1), outcome(1))

        reopened = RunStore(tmp_path)
        assert len(reopened) == 2
        assert unit(0).key in reopened
        restored = reopened.outcome_for(unit(1).key)
        assert restored == outcome(1)

    def test_record_is_idempotent(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.record(unit(), outcome())
        assert not store.record(unit(), outcome())
        assert len(RunStore(tmp_path)) == 1

    def test_corrupted_trailing_line_is_dropped(self, tmp_path):
        store = RunStore(tmp_path)
        store.record(unit(0), outcome(0))
        store.record(unit(1), outcome(1))
        journal = tmp_path / JOURNAL_FILENAME
        with open(journal, "a") as handle:
            handle.write('{"kind": "unit", "key": "tr')  # torn mid-write

        recovered = RunStore(tmp_path)
        assert recovered.recovered_lines == 1
        assert len(recovered) == 2
        # The store stays appendable after recovery.
        assert recovered.record(unit(2), outcome(2))
        assert len(RunStore(tmp_path)) == 3

    def test_non_record_json_line_is_dropped(self, tmp_path):
        store = RunStore(tmp_path)
        store.record(unit(0), outcome(0))
        journal = tmp_path / JOURNAL_FILENAME
        with open(journal, "a") as handle:
            handle.write('"just a string"\n')
        recovered = RunStore(tmp_path)
        assert recovered.recovered_lines == 1
        assert len(recovered) == 1

    def test_ephemeral_store_has_no_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        store = RunStore.ephemeral()
        store.record(unit(), outcome())
        assert unit().key in store
        assert not any(tmp_path.iterdir())


class TestManifestHandling:
    def test_manifest_round_trip(self, tmp_path):
        manifest = tiny_manifest()
        store = RunStore(tmp_path)
        store.write_manifest(manifest)
        loaded = RunStore(tmp_path).load_manifest()
        assert loaded is not None
        assert loaded.manifest_hash == manifest.manifest_hash

    def test_mismatched_manifest_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        store.write_manifest(tiny_manifest())
        other = tiny_manifest(temperatures=(0.8,))
        with pytest.raises(RunStoreError):
            RunStore(tmp_path).write_manifest(other)

    def test_same_manifest_accepted(self, tmp_path):
        RunStore(tmp_path).write_manifest(tiny_manifest())
        RunStore(tmp_path).write_manifest(tiny_manifest())  # no raise


class TestOpen:
    def test_open_uses_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "env-run"))
        store = RunStore.open()
        assert store.persistent
        assert store.directory == tmp_path / "env-run"

    def test_open_without_directory_fails(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_DIR", raising=False)
        with pytest.raises(RunStoreError):
            RunStore.open()

    def test_journal_lines_are_valid_json(self, tmp_path):
        store = RunStore(tmp_path)
        store.record(unit(0), outcome(0))
        lines = (tmp_path / JOURNAL_FILENAME).read_text().splitlines()
        record = json.loads(lines[0])
        assert record["kind"] == "unit"
        assert record["outcome"]["functional_passed"] is True
