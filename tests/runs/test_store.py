"""RunStore journal semantics: persistence, recovery, idempotence."""

from __future__ import annotations

import json
import multiprocessing
import time
from pathlib import Path

import pytest

from repro.bench.jobs import CheckOutcome
from repro.runs.manifest import WorkUnit
from repro.runs.store import JOURNAL_FILENAME, RunStore, RunStoreError
from test_manifest import tiny_manifest


def unit(sample_index: int = 0, temperature: float = 0.2) -> WorkUnit:
    return WorkUnit(
        manifest_hash="m" * 64,
        profile_id="baseline:gpt-4",
        suite_id="machine",
        task_id="t0",
        temperature=temperature,
        sample_index=sample_index,
    )


def outcome(sample_index: int = 0) -> CheckOutcome:
    return CheckOutcome(
        sample_index=sample_index,
        temperature=0.2,
        syntax_ok=True,
        functional_passed=True,
        total_checks=7,
        design_key="d" * 64,
    )


class TestJournal:
    def test_round_trip_across_reopen(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.record(unit(0), outcome(0))
        assert store.record(unit(1), outcome(1))

        reopened = RunStore(tmp_path)
        assert len(reopened) == 2
        assert unit(0).key in reopened
        restored = reopened.outcome_for(unit(1).key)
        assert restored == outcome(1)

    def test_record_is_idempotent(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.record(unit(), outcome())
        assert not store.record(unit(), outcome())
        assert len(RunStore(tmp_path)) == 1

    def test_corrupted_trailing_line_is_dropped(self, tmp_path):
        store = RunStore(tmp_path)
        store.record(unit(0), outcome(0))
        store.record(unit(1), outcome(1))
        journal = tmp_path / JOURNAL_FILENAME
        with open(journal, "a") as handle:
            handle.write('{"kind": "unit", "key": "tr')  # torn mid-write

        recovered = RunStore(tmp_path)
        assert recovered.recovered_lines == 1
        assert len(recovered) == 2
        # The store stays appendable after recovery.
        assert recovered.record(unit(2), outcome(2))
        assert len(RunStore(tmp_path)) == 3

    def test_non_record_json_line_is_dropped(self, tmp_path):
        store = RunStore(tmp_path)
        store.record(unit(0), outcome(0))
        journal = tmp_path / JOURNAL_FILENAME
        with open(journal, "a") as handle:
            handle.write('"just a string"\n')
        recovered = RunStore(tmp_path)
        assert recovered.recovered_lines == 1
        assert len(recovered) == 1

    def test_torn_write_mid_multibyte_utf8_recovers(self, tmp_path):
        """A crash can tear an append in the middle of a UTF-8 sequence."""
        store = RunStore(tmp_path)
        store.record(unit(0), outcome(0))
        record = {
            "kind": "unit",
            "key": "x" * 64,
            "manifest": "m" * 64,
            "profile": "baseline:gpt-4",
            "suite": "machine",
            "task": "t1",
            "temperature": 0.2,
            "sample": 9,
            "outcome": CheckOutcome(
                sample_index=9,
                temperature=0.2,
                syntax_ok=False,
                syntax_error="erreur de compilation — ligne 3 ✓",
            ).to_dict(),
        }
        encoded = (json.dumps(record, ensure_ascii=False) + "\n").encode("utf-8")
        marker = "✓".encode("utf-8")
        cut = encoded.index(marker) + 1  # one byte into the 3-byte codepoint
        with open(tmp_path / JOURNAL_FILENAME, "ab") as handle:
            handle.write(encoded[:cut])

        recovered = RunStore(tmp_path)
        assert recovered.recovered_lines == 1
        assert len(recovered) == 1
        # The store stays appendable and the torn unit simply re-runs.
        assert recovered.record(unit(1), outcome(1))
        assert len(RunStore(tmp_path)) == 2

    def test_crlf_separated_records_load(self, tmp_path):
        """Journals that passed through CRLF translation still load cleanly."""
        store = RunStore(tmp_path)
        store.record(unit(0), outcome(0))
        store.record(unit(1), outcome(1))
        journal = tmp_path / JOURNAL_FILENAME
        journal.write_bytes(journal.read_bytes().replace(b"\n", b"\r\n"))

        recovered = RunStore(tmp_path)
        assert recovered.recovered_lines == 0
        assert len(recovered) == 2
        assert recovered.outcome_for(unit(1).key) == outcome(1)

    def test_schema_invalid_trailing_records_dropped(self, tmp_path):
        """Valid JSON is not enough: records must carry a usable payload."""
        store = RunStore(tmp_path)
        store.record(unit(0), outcome(0))
        with open(tmp_path / JOURNAL_FILENAME, "a") as handle:
            # A unit record whose outcome lost its required fields (e.g. two
            # torn appends fused into one parseable line) ...
            handle.write(
                json.dumps(
                    {"kind": "unit", "key": "k" * 64, "outcome": {"sample_index": 1}}
                )
                + "\n"
            )
            # ... and a record of a kind this store does not know.
            handle.write(json.dumps({"kind": "mystery", "key": "q" * 64}) + "\n")

        recovered = RunStore(tmp_path)
        assert recovered.recovered_lines == 2
        assert len(recovered) == 1
        assert "k" * 64 not in recovered

    def test_ephemeral_store_has_no_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        store = RunStore.ephemeral()
        store.record(unit(), outcome())
        assert unit().key in store
        assert not any(tmp_path.iterdir())


class TestQuarantineAndWarnings:
    def test_quarantine_claims_unit_key(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.record_quarantine(
            unit(0), attempts=3, error="worker died", degradation=["batch->scalar"]
        )
        # Resume sees the unit as done, but it carries no scored outcome.
        assert unit(0).key in store
        assert store.outcome_for(unit(0).key) is None
        # The poison claim wins: a later verdict for the same unit is refused.
        assert not store.record(unit(0), outcome(0))

        reopened = RunStore(tmp_path)
        records = reopened.quarantined_records()
        assert len(records) == 1
        assert records[0]["quarantine"]["attempts"] == 3
        assert records[0]["quarantine"]["error"] == "worker died"
        assert records[0]["quarantine"]["degradation"] == ["batch->scalar"]

    def test_warnings_dedup_by_content(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.record_warning("serial-fallback", "2 of 4 do not pickle")
        assert not store.record_warning("serial-fallback", "2 of 4 do not pickle")
        assert store.record_warning("serial-fallback", "3 of 4 do not pickle")
        assert len(RunStore(tmp_path).warning_records()) == 2


class TestManifestHandling:
    def test_manifest_round_trip(self, tmp_path):
        manifest = tiny_manifest()
        store = RunStore(tmp_path)
        store.write_manifest(manifest)
        loaded = RunStore(tmp_path).load_manifest()
        assert loaded is not None
        assert loaded.manifest_hash == manifest.manifest_hash

    def test_mismatched_manifest_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        store.write_manifest(tiny_manifest())
        other = tiny_manifest(temperatures=(0.8,))
        with pytest.raises(RunStoreError):
            RunStore(tmp_path).write_manifest(other)

    def test_same_manifest_accepted(self, tmp_path):
        RunStore(tmp_path).write_manifest(tiny_manifest())
        RunStore(tmp_path).write_manifest(tiny_manifest())  # no raise


def _race_complete(broker_dir, run_id, lease_payload, barrier, results):
    """Child process: execute the leased unit for real, then race to journal it."""
    from repro.runs.engine import RunEngine
    from repro.service.broker import FileBroker, Lease

    broker = FileBroker(broker_dir)
    lease = Lease(
        run_id=run_id,
        unit=WorkUnit.from_dict(lease_payload["unit"]),
        worker_id=lease_payload["worker_id"],
        expires_at=lease_payload["expires_at"],
        path=Path(lease_payload["path"]),
    )
    engine = RunEngine(broker.manifest(run_id), broker.store(run_id))
    [result] = engine.execute_units([lease.unit])
    barrier.wait()  # both racers have a verdict in hand: now race the lock
    recorded = broker.complete(lease, result.outcome)
    results.put((lease.worker_id, recorded, result.outcome.to_dict()))


class TestConcurrentCompletion:
    def test_two_processes_racing_one_unit_journal_exactly_once(self, tmp_path):
        """The at-least-once lease overlap after a requeue collapses to one record.

        Worker A leases a unit and goes silent; the lease expires and worker B
        re-leases the same unit.  Both then hold a (stale, fresh) lease pair for
        identical work.  Each racer executes the unit independently and both
        call ``complete`` at the same instant from separate processes: the
        journal must end up with exactly one record, and — because verdicts are
        deterministic — both racers must have computed the same outcome.
        """
        from repro.service.broker import FileBroker

        broker = FileBroker(tmp_path / "broker", lease_ttl_s=0.2)
        receipt = broker.submit(tiny_manifest())
        run_id = receipt.run_id
        stale = broker.lease(run_id, "racer-a", limit=1)[0]
        time.sleep(0.3)  # the TTL passes with no heartbeat
        fresh = broker.lease(run_id, "racer-b", limit=1)[0]
        assert fresh.unit == stale.unit

        context = multiprocessing.get_context()
        barrier = context.Barrier(2)
        results = context.Queue()
        racers = [
            context.Process(
                target=_race_complete,
                args=(
                    str(tmp_path / "broker"),
                    run_id,
                    {
                        "unit": lease.unit.to_dict(),
                        "worker_id": lease.worker_id,
                        "expires_at": lease.expires_at,
                        "path": str(lease.path),
                    },
                    barrier,
                    results,
                ),
            )
            for lease in (stale, fresh)
        ]
        for racer in racers:
            racer.start()
        outcomes = [results.get(timeout=120) for _ in racers]
        for racer in racers:
            racer.join(timeout=30)
            assert racer.exitcode == 0

        # Exactly one racer journaled; the other saw a duplicate.
        assert sorted(recorded for _, recorded, _ in outcomes) == [False, True]
        # Deterministic execution: both racers computed the same verdict
        # (wall-clock duration is a measurement, not part of the verdict).
        verdicts = []
        for _, _, payload in outcomes:
            payload.pop("duration_s", None)
            verdicts.append(payload)
        assert verdicts[0] == verdicts[1]

        journal = broker.store_dir(run_id) / JOURNAL_FILENAME
        records = [json.loads(line) for line in journal.read_text().splitlines()]
        assert [record["key"] for record in records] == [fresh.unit.key]
        journaled = records[0]["outcome"]
        journaled.pop("duration_s", None)
        assert journaled == verdicts[0]


class TestOpen:
    def test_open_uses_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "env-run"))
        store = RunStore.open()
        assert store.persistent
        assert store.directory == tmp_path / "env-run"

    def test_open_without_directory_fails(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_DIR", raising=False)
        with pytest.raises(RunStoreError):
            RunStore.open()

    def test_journal_lines_are_valid_json(self, tmp_path):
        store = RunStore(tmp_path)
        store.record(unit(0), outcome(0))
        lines = (tmp_path / JOURNAL_FILENAME).read_text().splitlines()
        record = json.loads(lines[0])
        assert record["kind"] == "unit"
        assert record["outcome"]["functional_passed"] is True
