"""Shared helpers for the service-layer tests."""

from __future__ import annotations

import pytest

from repro.bench.evaluator import EvaluationConfig
from repro.experiments import ExperimentScale
from repro.runs.manifest import ProfileSpec, RunManifest, SuiteSpec


def small_manifest(num_samples: int = 2, max_tasks: int | None = 3) -> RunManifest:
    """One profile × one suite, a handful of units — fast to really execute."""
    return RunManifest(
        name="service-test",
        experiment="custom",
        scale=ExperimentScale.tiny().to_dict(),
        config=EvaluationConfig(
            num_samples=num_samples, ks=(1,), temperatures=(0.2,), max_tasks=max_tasks
        ),
        profiles=[
            ProfileSpec(
                profile_id="baseline:gpt-4", kind="baseline", key="gpt-4", display="GPT-4"
            )
        ],
        suites=[SuiteSpec("machine")],
    )


class FakeClock:
    """A hand-cranked clock for deterministic lease-expiry tests."""

    def __init__(self, now: float = 1_000.0):
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()
