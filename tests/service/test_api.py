"""HTTP API contract: routes, status codes, rate limiting, admission, parity.

A real ``ThreadingHTTPServer`` on an ephemeral port, driven with ``urllib``
— no mocked transport.  The flagship assertion: a run submitted over HTTP
and drained by an in-process worker renders a report identical to a serial
``RunEngine`` run of the same manifest.
"""

from __future__ import annotations

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro.runs.aggregate import StreamingAggregator
from repro.runs.engine import RunEngine
from repro.runs.store import RunStore
from repro.service import FileBroker, ServiceWorker
from repro.service.api import ReproServiceServer, ServiceConfig
from conftest import small_manifest


@pytest.fixture()
def server(tmp_path):
    broker = FileBroker(tmp_path / "broker", lease_ttl_s=10.0)
    instance = ReproServiceServer(
        ServiceConfig(rate_per_s=1000.0, burst=1000.0), broker
    )
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()
    thread.join(timeout=5)


def request(server, path, *, data=None, headers=None):
    """(status, headers, body-bytes) — errors return their response, not raise."""
    req = urllib.request.Request(
        server.url + path, data=data, headers=dict(headers or {})
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def submit(server, manifest, **kwargs):
    return request(
        server, "/runs", data=json.dumps(manifest.to_dict()).encode(), **kwargs
    )


class TestRoutes:
    def test_healthz(self, server):
        code, _, body = request(server, "/healthz")
        assert (code, body) == (200, b"ok\n")

    def test_readyz_lists_runs_with_exit_codes(self, server):
        manifest = small_manifest()
        submit(server, manifest)
        code, _, body = request(server, "/readyz")
        payload = json.loads(body)
        assert code == 200 and payload["ready"]
        entry = payload["runs"][manifest.manifest_hash[:12]]
        assert entry == {"exit_code": 3, "complete": False, "healthy": False}

    def test_unknown_run_is_404(self, server):
        code, _, body = request(server, "/runs/" + "0" * 64)
        assert code == 404
        assert "error" in json.loads(body)

    def test_unknown_route_is_404(self, server):
        assert request(server, "/nope")[0] == 404
        assert request(server, "/nope", data=b"x")[0] == 404

    def test_bad_manifest_is_400(self, server):
        assert request(server, "/runs", data=b"{not json")[0] == 400
        assert request(server, "/runs", data=b'{"name": "x"}')[0] == 400

    def test_missing_body_is_400(self, server):
        assert request(server, "/runs", data=b"")[0] == 400


class TestSubmission:
    def test_submit_then_resubmit(self, server):
        manifest = small_manifest()
        code, _, body = submit(server, manifest)
        receipt = json.loads(body)
        assert code == 201 and receipt["created"]
        assert receipt["run_id"] == manifest.manifest_hash
        assert receipt["total_units"] > 0

        code, _, body = submit(server, manifest)
        again = json.loads(body)
        assert code == 200 and not again["created"]
        assert again["run_id"] == receipt["run_id"]

    def test_status_route_tracks_progress(self, server):
        manifest = small_manifest()
        _, _, body = submit(server, manifest)
        receipt = json.loads(body)
        code, _, body = request(server, receipt["status_url"])
        status = json.loads(body)
        assert code == 200
        assert status["pending_units"] == receipt["total_units"]
        assert not status["complete"]

    def test_admission_control_is_503(self, tmp_path):
        broker = FileBroker(tmp_path / "broker")
        instance = ReproServiceServer(
            ServiceConfig(max_queued_units=1, rate_per_s=1000.0, burst=1000.0), broker
        )
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        try:
            code, _, body = submit(instance, small_manifest())
            payload = json.loads(body)
            assert code == 503
            assert payload["limit"] == 1
            assert payload["submitted_units"] > 1
            assert broker.run_ids() == []
            metrics = request(instance, "/metrics")[2].decode()
            assert "repro_admission_rejected_total 1" in metrics
        finally:
            instance.shutdown()
            instance.server_close()


class TestRateLimiting:
    @pytest.fixture()
    def throttled(self, tmp_path):
        broker = FileBroker(tmp_path / "broker")
        instance = ReproServiceServer(
            ServiceConfig(rate_per_s=0.001, burst=2.0), broker
        )
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        yield instance
        instance.shutdown()
        instance.server_close()

    def test_burst_then_429_with_retry_after(self, throttled):
        headers = {"X-Client-Id": "impatient"}
        assert request(throttled, "/runs", headers=headers)[0] == 200
        assert request(throttled, "/runs", headers=headers)[0] == 200
        code, resp_headers, _ = request(throttled, "/runs", headers=headers)
        assert code == 429
        assert float(resp_headers["Retry-After"]) > 0

    def test_clients_are_isolated(self, throttled):
        for _ in range(3):
            request(throttled, "/runs", headers={"X-Client-Id": "greedy"})
        assert request(throttled, "/runs", headers={"X-Client-Id": "other"})[0] == 200

    def test_probes_and_scrapes_are_exempt(self, throttled):
        headers = {"X-Client-Id": "prometheus"}
        for _ in range(10):
            assert request(throttled, "/healthz", headers=headers)[0] == 200
            assert request(throttled, "/metrics", headers=headers)[0] == 200


SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.e+Ee-]+$"
)


class TestEndToEnd:
    def test_worker_drains_run_and_report_matches_serial(self, server, tmp_path):
        manifest = small_manifest()
        _, _, body = submit(server, manifest)
        run_id = json.loads(body)["run_id"]

        worker = ServiceWorker(
            server.broker, "api-test-worker", lease_limit=8, exit_when_idle=True
        )
        stats = worker.run_forever()
        assert stats.completed == json.loads(body)["total_units"]
        assert stats.quarantined == 0

        code, _, body = request(server, f"/runs/{run_id}")
        status = json.loads(body)
        assert status["complete"] and status["healthy"]
        assert status["exit_code"] == 0

        # The service-run report must match a serial run of the same manifest.
        serial_store = RunStore(tmp_path / "serial")
        serial_store.write_manifest(manifest)
        RunEngine(manifest, serial_store).run()
        serial_report = (
            StreamingAggregator(manifest).feed_store(serial_store).report()
        )
        code, headers, body = request(server, f"/runs/{run_id}/report")
        assert code == 200
        assert headers["Content-Type"].startswith("text/plain")
        service_report = body.decode()
        assert service_report.startswith(serial_report)
        assert "100.0% complete" in service_report

    def test_metrics_are_parseable_prometheus_text(self, server):
        manifest = small_manifest()
        _, _, body = submit(server, manifest)
        run_id = json.loads(body)["run_id"]
        ServiceWorker(
            server.broker, "metrics-worker", lease_limit=8, exit_when_idle=True
        ).run_forever()

        code, headers, body = request(server, "/metrics")
        assert code == 200
        text = body.decode()
        names = set()
        for line in text.splitlines():
            if line.startswith("# HELP "):
                continue
            if line.startswith("# TYPE "):
                names.add(line.split()[2])
                continue
            assert SAMPLE_LINE.match(line), f"unparseable sample: {line!r}"
        assert {
            "repro_queue_depth",
            "repro_units_completed_total",
            "repro_lease_requeues_total",
            "repro_units_per_second",
            "repro_check_latency_seconds",
            "repro_http_requests_total",
        } <= names
        label = run_id[:12]
        assert f'repro_units_completed_total{{run="{label}"}}' in text
        assert 'repro_check_latency_seconds{quantile="0.5"}' in text
        assert 'repro_check_latency_seconds{quantile="0.99"}' in text
        assert "repro_queue_depth 0" in text
        assert "repro_codegen_fallback_total" in text

    def test_codegen_fallbacks_surface_in_metrics(self, server):
        from repro.verilog import codegen
        from repro.verilog.simulator import BatchSimulator

        codegen.reset_fallback_stats()
        try:
            BatchSimulator.from_source(
                "module slow(input [3:0] a, input [3:0] b, output [3:0] y);"
                " assign y = a % b; endmodule",
                lanes=4,
                backend="auto",
            )
            text = request(server, "/metrics")[2].decode()
            assert 'repro_codegen_fallback_total{reason="mul-div-mod"} 1' in text
            assert 'reason="mul-div-mod"' in text
            assert "repro_codegen_design_fallback_total{" in text
        finally:
            codegen.reset_fallback_stats()

    def test_formal_proofs_surface_in_metrics(self, server):
        from repro.formal import record_proof, reset_proof_stats

        reset_proof_stats()
        try:
            record_proof("equivalent", 17)
            record_proof("counterexample", 4)
            text = request(server, "/metrics")[2].decode()
            assert 'repro_formal_proofs_total{result="equivalent"} 1' in text
            assert 'repro_formal_proofs_total{result="counterexample"} 1' in text
            assert "repro_formal_conflicts_total 21" in text
        finally:
            reset_proof_stats()

    def test_formal_counters_present_when_idle(self, server):
        from repro.formal import reset_proof_stats

        reset_proof_stats()
        try:
            text = request(server, "/metrics")[2].decode()
            assert "repro_formal_proofs_total 0" in text
            assert "repro_formal_conflicts_total 0" in text
        finally:
            reset_proof_stats()
