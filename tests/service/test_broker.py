"""FileBroker lease protocol: exclusivity, expiry, heartbeats, exactly-once.

The broker promises at-least-once *delivery* (a unit may be leased again
after its holder goes silent) but exactly-one *journal record* per unit.
These tests drive both halves with a hand-cranked clock so expiry is
deterministic.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.jobs import CheckOutcome
from repro.runs.store import JOURNAL_FILENAME
from repro.service.broker import AdmissionError, BrokerError, FileBroker
from conftest import small_manifest


def outcome(unit) -> CheckOutcome:
    return CheckOutcome(
        sample_index=unit.sample_index,
        temperature=unit.temperature,
        syntax_ok=True,
        functional_passed=True,
        total_checks=5,
        design_key="d" * 64,
        duration_s=0.25,
    )


@pytest.fixture()
def broker(tmp_path, clock) -> FileBroker:
    return FileBroker(tmp_path / "broker", lease_ttl_s=10.0, clock=clock)


@pytest.fixture()
def queued(broker):
    """A submitted small manifest: (run_id, units in expansion order)."""
    receipt = broker.submit(small_manifest())
    return receipt.run_id, broker.units(receipt.run_id)


class TestSubmit:
    def test_run_id_is_manifest_hash(self, broker):
        manifest = small_manifest()
        receipt = broker.submit(manifest)
        assert receipt.run_id == manifest.manifest_hash
        assert receipt.created
        assert receipt.total_units == len(broker.units(receipt.run_id))
        assert receipt.total_units > 0

    def test_resubmission_is_idempotent(self, broker):
        manifest = small_manifest()
        first = broker.submit(manifest)
        second = broker.submit(manifest)
        assert not second.created
        assert second.run_id == first.run_id
        assert broker.run_ids().count(first.run_id) == 1

    def test_admission_limit_rejects_before_writing(self, broker):
        with pytest.raises(AdmissionError) as excinfo:
            broker.submit(small_manifest(), admission_limit=1)
        assert excinfo.value.limit == 1
        assert excinfo.value.incoming > 1
        assert broker.run_ids() == []

    def test_resubmission_bypasses_admission(self, broker):
        receipt = broker.submit(small_manifest())
        again = broker.submit(small_manifest(), admission_limit=0)
        assert not again.created
        assert again.run_id == receipt.run_id

    def test_unknown_run_raises(self, broker):
        with pytest.raises(BrokerError):
            broker.manifest("0" * 64)
        with pytest.raises(BrokerError):
            broker.units("0" * 64)


class TestLeasing:
    def test_leases_are_exclusive_and_in_order(self, broker, queued):
        run_id, units = queued
        first = broker.lease(run_id, "worker-a", limit=2)
        second = broker.lease(run_id, "worker-b", limit=len(units))
        assert [lease.unit for lease in first] == units[:2]
        assert [lease.unit for lease in second] == units[2:]
        held = {lease.unit.key for lease in first} & {
            lease.unit.key for lease in second
        }
        assert held == set()
        # Everything is out: nothing left to lease.
        assert broker.lease(run_id, "worker-c", limit=1) == []

    def test_expired_lease_requeues_with_event(self, broker, queued, clock):
        run_id, units = queued
        stale = broker.lease(run_id, "worker-a", limit=1)[0]
        done = broker.lease(run_id, "worker-b", limit=1)[0]
        assert done.unit == units[1]
        broker.complete(done, outcome(done.unit))

        clock.advance(11.0)  # past the 10s TTL: worker-a went silent
        reclaimed = broker.lease(run_id, "worker-b", limit=1)
        assert reclaimed[0].unit == stale.unit
        requeues = [e for e in broker.events(run_id) if e["event"] == "requeue"]
        assert len(requeues) == 1
        assert requeues[0]["worker"] == "worker-a"
        assert broker.run_status(run_id).requeues == 1

    def test_heartbeat_extends_the_lease(self, broker, queued, clock):
        run_id, _ = queued
        lease = broker.lease(run_id, "worker-a", limit=1)[0]
        clock.advance(8.0)
        assert broker.heartbeat(lease)
        clock.advance(8.0)  # 16s after claim, but only 8s after the beat
        assert broker.run_status(run_id).leased == 1
        assert all(e["event"] != "requeue" for e in broker.events(run_id))

    def test_heartbeat_reports_a_lost_lease(self, broker, queued, clock):
        run_id, _ = queued
        lease = broker.lease(run_id, "worker-a", limit=1)[0]
        clock.advance(11.0)
        broker.sweep_expired(run_id)
        assert not broker.heartbeat(lease)

    def test_release_requeues_immediately(self, broker, queued):
        run_id, units = queued
        lease = broker.lease(run_id, "worker-a", limit=1)[0]
        broker.release(lease)
        assert broker.lease(run_id, "worker-b", limit=1)[0].unit == units[0]


class TestCompletion:
    def test_complete_journals_and_frees_the_lease(self, broker, queued):
        run_id, units = queued
        lease = broker.lease(run_id, "worker-a", limit=1)[0]
        assert broker.complete(lease, outcome(lease.unit))
        status = broker.run_status(run_id)
        assert status.completed == 1
        assert status.leased == 0
        assert status.pending == len(units) - 1
        store = broker.store(run_id)
        assert store.outcome_for(lease.unit.key) == outcome(lease.unit)

    def test_duplicate_completion_is_exactly_once(self, broker, queued, clock):
        """Two workers racing one requeued unit yield one journal record."""
        run_id, units = queued
        stale = broker.lease(run_id, "worker-a", limit=1)[0]
        clock.advance(11.0)
        fresh = broker.lease(run_id, "worker-b", limit=1)[0]
        assert fresh.unit == stale.unit

        assert broker.complete(fresh, outcome(fresh.unit))
        assert not broker.complete(stale, outcome(stale.unit))

        journal = broker.store_dir(run_id) / JOURNAL_FILENAME
        records = [json.loads(line) for line in journal.read_text().splitlines()]
        assert [r["key"] for r in records] == [fresh.unit.key]
        assert broker.run_status(run_id).completed == 1

    def test_journaled_unit_is_never_leased_again(self, broker, queued, clock):
        run_id, units = queued
        lease = broker.lease(run_id, "worker-a", limit=1)[0]
        broker.complete(lease, outcome(lease.unit))
        clock.advance(100.0)
        leased = broker.lease(run_id, "worker-b", limit=len(units))
        assert units[0] not in [entry.unit for entry in leased]

    def test_quarantine_counts_toward_completion_but_not_health(self, broker, queued):
        run_id, units = queued
        for lease in broker.lease(run_id, "worker-a", limit=len(units)):
            if lease.unit == units[0]:
                assert broker.complete_quarantine(
                    lease, attempts=3, error="worker died", degradation=("pool->serial",)
                )
            else:
                assert broker.complete(lease, outcome(lease.unit))
        status = broker.run_status(run_id)
        assert status.complete
        assert not status.healthy
        assert status.quarantined == 1
        assert status.exit_code == 4

    def test_complete_run_exit_code_zero(self, broker, queued):
        run_id, units = queued
        for lease in broker.lease(run_id, "worker-a", limit=len(units)):
            broker.complete(lease, outcome(lease.unit))
        status = broker.run_status(run_id)
        assert status.complete and status.healthy
        assert status.exit_code == 0
        assert status.percent == pytest.approx(100.0)


class TestQueueDepth:
    def test_depth_sums_pending_across_runs(self, broker):
        first = broker.submit(small_manifest(num_samples=2))
        second = broker.submit(small_manifest(num_samples=3))
        total = first.total_units + second.total_units
        assert broker.queue_depth() == total
        lease = broker.lease(first.run_id, "worker-a", limit=1)[0]
        assert broker.queue_depth() == total - 1
        broker.complete(lease, outcome(lease.unit))
        assert broker.queue_depth() == total - 1
