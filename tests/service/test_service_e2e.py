"""The service acceptance bar, end to end with real processes.

Submit a manifest over HTTP; run a two-member worker fleet as real
subprocesses; SIGKILL one member while it provably holds leases (the
``REPRO_SERVICE_STALL_S`` fault hook freezes it between leasing and
heartbeating); the survivor finishes the run.  Afterwards:

* every expired lease was requeued — the requeue count is exact;
* the journal holds exactly one record per unit — none lost, none doubled;
* the report served over HTTP is bit-for-bit the serial ``repro.runs run``
  report of the same manifest;
* ``/metrics`` parses and carries the requeue count and nonzero units/s.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.runs.aggregate import StreamingAggregator
from repro.runs.engine import RunEngine
from repro.runs.store import JOURNAL_FILENAME, RunStore
from repro.service import FileBroker
from repro.service.api import ReproServiceServer, ServiceConfig
from conftest import small_manifest

LEASE_TTL_S = 1.5
STALLED_LEASES = 2


def _spawn_worker(broker_dir, *, stall_s=None, extra=()):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    if stall_s is not None:
        env["REPRO_SERVICE_STALL_S"] = str(stall_s)
    else:
        env.pop("REPRO_SERVICE_STALL_S", None)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "--broker",
            str(broker_dir),
            "worker",
            "--lease-ttl",
            str(LEASE_TTL_S),
            "--lease-limit",
            str(STALLED_LEASES),
            "--poll",
            "0.1",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


@pytest.mark.chaos
def test_worker_kill_requeues_and_run_matches_serial(tmp_path):
    broker_dir = tmp_path / "broker"
    broker = FileBroker(broker_dir, lease_ttl_s=LEASE_TTL_S)
    server = ReproServiceServer(ServiceConfig(), broker)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    victim = survivor = None
    try:
        manifest = small_manifest()
        body = json.dumps(manifest.to_dict()).encode()
        req = urllib.request.Request(server.url + "/runs", data=body)
        with urllib.request.urlopen(req, timeout=10) as resp:
            receipt = json.load(resp)
        run_id = receipt["run_id"]
        total = receipt["total_units"]
        assert total > STALLED_LEASES

        # A worker that leases units, then plays dead before heartbeating.
        victim = _spawn_worker(broker_dir, stall_s=120)
        leases_dir = broker_dir / "runs" / run_id / "leases"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if leases_dir.is_dir() and len(list(leases_dir.iterdir())) >= STALLED_LEASES:
                break
            time.sleep(0.05)
        held = list(leases_dir.iterdir())
        assert len(held) == STALLED_LEASES, "victim never acquired its leases"
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

        # The survivor sweeps the dead worker's leases and drains the run.
        survivor = _spawn_worker(broker_dir, extra=("--exit-when-idle",))
        stdout, stderr = survivor.communicate(timeout=180)
        assert survivor.returncode == 0, stderr.decode()

        status = broker.run_status(run_id)
        assert status.complete and status.healthy
        assert status.requeues == STALLED_LEASES

        requeues = [e for e in broker.events(run_id) if e["event"] == "requeue"]
        assert len(requeues) == STALLED_LEASES
        requeued_keys = {e["key"] for e in requeues}
        assert requeued_keys == {path.name for path in held}

        # Exactly one journal record per unit: none lost, none doubled.
        journal = broker.store_dir(run_id) / JOURNAL_FILENAME
        keys = [
            json.loads(line)["key"]
            for line in journal.read_text().splitlines()
            if json.loads(line).get("kind", "unit") == "unit"
        ]
        assert len(keys) == total
        assert len(set(keys)) == total

        # Bit-for-bit parity with a serial run of the same manifest.
        serial_store = RunStore(tmp_path / "serial")
        serial_store.write_manifest(manifest)
        RunEngine(manifest, serial_store).run()
        serial_report = (
            StreamingAggregator(manifest).feed_store(serial_store).report()
        )
        service_report = (
            StreamingAggregator(manifest).feed_store(broker.store(run_id)).report()
        )
        assert service_report == serial_report

        with urllib.request.urlopen(server.url + "/metrics", timeout=10) as resp:
            metrics = resp.read().decode()
        assert (
            f'repro_lease_requeues_total{{run="{run_id[:12]}"}} {STALLED_LEASES}'
            in metrics
        )
        units_per_second = [
            float(line.split()[-1])
            for line in metrics.splitlines()
            if line.startswith("repro_units_per_second")
        ]
        assert units_per_second and units_per_second[0] > 0
    finally:
        for proc in (victim, survivor):
            if proc is not None and proc.poll() is None:
                proc.kill()
        server.shutdown()
        server.server_close()
