"""Tests for symbolic-component detection in prompts."""

from __future__ import annotations

from repro.symbolic.detector import SymbolicDetector, SymbolicModality, detect_symbolic
from repro.symbolic.state_diagram import StateDiagram
from repro.symbolic.truth_table import TruthTable
from repro.symbolic.waveform import Waveform

TT_PROMPT = """Implement the truth table below...
a | b | out
0 | 0 | 0
0 | 1 | 0
1 | 0 | 0
1 | 1 | 1"""

WF_PROMPT = """Implement the waveforms below...
a: 0 1 0 1
b: 0 0 1 1
out: 0 0 0 1"""

SD_PROMPT = """Implement this FSM...
A[out=0]--[in=0]->B
A[out=0]--[in=1]->A
B[out=1]--[in=0]->A
B[out=1]--[in=1]->B"""


class TestDetection:
    def test_truth_table_detected(self):
        result = detect_symbolic(TT_PROMPT)
        assert result.modality is SymbolicModality.TRUTH_TABLE
        assert isinstance(result.components[0].parsed, TruthTable)
        assert result.has_symbolic_content

    def test_waveform_detected(self):
        result = detect_symbolic(WF_PROMPT)
        assert result.modality is SymbolicModality.WAVEFORM
        assert isinstance(result.components[0].parsed, Waveform)

    def test_state_diagram_detected(self):
        result = detect_symbolic(SD_PROMPT)
        assert result.modality is SymbolicModality.STATE_DIAGRAM
        assert isinstance(result.components[0].parsed, StateDiagram)

    def test_plain_prompt_has_no_symbolic_content(self):
        result = detect_symbolic("Design an 8-bit up counter with synchronous reset.")
        assert result.modality is SymbolicModality.NONE
        assert not result.has_symbolic_content
        assert result.components == []

    def test_state_diagram_takes_priority_over_waveform(self):
        # State-diagram lines superficially contain ':'-free arrows; mixing prose
        # with a diagram must still classify as a state diagram.
        result = detect_symbolic("Notes: timing is not critical\n" + SD_PROMPT)
        assert result.modality is SymbolicModality.STATE_DIAGRAM

    def test_prose_extracted(self):
        result = detect_symbolic(TT_PROMPT)
        assert "Implement the truth table below" in result.prose
        assert "|" not in result.prose

    def test_symbolic_block_extracted(self):
        result = detect_symbolic(SD_PROMPT)
        block = result.components[0].text
        assert "->" in block
        assert "Implement" not in block

    def test_detector_is_reusable(self):
        detector = SymbolicDetector()
        assert detector.detect(TT_PROMPT).modality is SymbolicModality.TRUTH_TABLE
        assert detector.detect(WF_PROMPT).modality is SymbolicModality.WAVEFORM
        assert detector.detect("plain text").modality is SymbolicModality.NONE

    def test_table2_prompts_classified(self):
        from repro.core.taxonomy import TABLE_II_EXAMPLES, HallucinationSubtype

        expectations = {
            HallucinationSubtype.STATE_DIAGRAM_MISINTERPRETATION: SymbolicModality.STATE_DIAGRAM,
            HallucinationSubtype.WAVEFORM_MISINTERPRETATION: SymbolicModality.WAVEFORM,
            HallucinationSubtype.TRUTH_TABLE_MISINTERPRETATION: SymbolicModality.TRUTH_TABLE,
        }
        for example in TABLE_II_EXAMPLES:
            if example.subtype in expectations:
                result = detect_symbolic(example.prompt)
                assert result.modality is expectations[example.subtype], example.subtype
