"""Tests for the state-diagram modality and its FSM models."""

from __future__ import annotations

import pytest

from repro.symbolic.state_diagram import (
    StateDiagram,
    StateDiagramError,
    Transition,
    looks_like_state_diagram,
    parse_state_diagram,
    random_state_diagram,
)
from repro.verilog.simulator.testbench import ResetSpec, run_functional_check
from repro.verilog.syntax_checker import check_source

PAPER_DIAGRAM = """A[out=0]--[x=0]->B
A[out=0]--[x=1]->A
B[out=1]--[x=0]->A
B[out=1]--[x=1]->B"""


class TestParsing:
    def test_parse_paper_diagram(self):
        diagram = parse_state_diagram(PAPER_DIAGRAM)
        assert diagram.state_names == ["A", "B"]
        assert diagram.input_names == ["x"]
        assert diagram.output_names == ["out"]
        assert diagram.reset_state == "A"
        assert len(diagram.transitions) == 4

    def test_parse_with_en_dash_and_double_equals(self):
        text = "A[out=0]–[in==0]–>B\nB[out=1]–[in==1]–>A"
        diagram = parse_state_diagram(text)
        assert diagram.input_names == ["in"]
        assert len(diagram.transitions) == 2

    def test_parse_with_surrounding_prose(self):
        text = "Implement this FSM...\n" + PAPER_DIAGRAM + "\nUse a single clock."
        diagram = parse_state_diagram(text)
        assert len(diagram.transitions) == 4

    def test_unconditional_transition(self):
        text = "A[out=0]-->B\nB[out=1]-->A"
        diagram = parse_state_diagram(text)
        assert diagram.transitions[0].conditions == ()

    def test_no_diagram_raises(self):
        with pytest.raises(StateDiagramError):
            parse_state_diagram("a | b | out\n0 | 0 | 1")

    def test_detection_heuristic(self):
        assert looks_like_state_diagram(PAPER_DIAGRAM)
        assert not looks_like_state_diagram("a: 0 1 0\nb: 1 1 0")


class TestSemantics:
    def test_next_state(self):
        diagram = parse_state_diagram(PAPER_DIAGRAM)
        assert diagram.next_state("A", {"x": 0}) == "B"
        assert diagram.next_state("A", {"x": 1}) == "A"
        assert diagram.next_state("B", {"x": 0}) == "A"

    def test_next_state_defaults_to_self_loop(self):
        diagram = StateDiagram(states={"A": {"out": 0}}, transitions=[])
        assert diagram.next_state("A", {"x": 1}) == "A"

    def test_outputs_of(self):
        diagram = parse_state_diagram(PAPER_DIAGRAM)
        assert diagram.outputs_of("B") == {"out": 1}
        assert diagram.outputs_of("A") == {"out": 0}

    def test_is_complete(self):
        diagram = parse_state_diagram(PAPER_DIAGRAM)
        assert diagram.is_complete()
        incomplete = StateDiagram(
            states={"A": {"out": 0}, "B": {"out": 1}},
            transitions=[Transition("A", "B", (("x", 0),))],
        )
        assert not incomplete.is_complete()

    def test_golden_model_trace(self):
        diagram = parse_state_diagram(PAPER_DIAGRAM)
        golden = diagram.to_golden_model()
        golden.reset()
        outputs = [golden.step({"x": x})["out"] for x in [0, 1, 0, 0, 1]]
        assert outputs == [1, 1, 0, 1, 1]

    def test_golden_model_reset(self):
        diagram = parse_state_diagram(PAPER_DIAGRAM)
        golden = diagram.to_golden_model()
        golden.step({"x": 0})
        golden.reset()
        assert golden.state == "A"


class TestRendering:
    def test_prompt_roundtrip(self):
        diagram = parse_state_diagram(PAPER_DIAGRAM)
        reparsed = parse_state_diagram(diagram.to_prompt_text())
        assert reparsed.state_names == diagram.state_names
        assert len(reparsed.transitions) == len(diagram.transitions)

    def test_interpretation_matches_table3_format(self):
        diagram = parse_state_diagram(PAPER_DIAGRAM)
        interpretation = diagram.interpret()
        assert "States&Outputs:" in interpretation
        assert "state A(out=0)" in interpretation
        assert "State transition:" in interpretation
        assert "If x=0, then transit to state B" in interpretation
        assert "Reset state: A" in interpretation


class TestVerilogGeneration:
    def test_generated_fsm_compiles(self):
        diagram = parse_state_diagram(PAPER_DIAGRAM)
        source = diagram.to_verilog(module_name="fsm_x")
        assert check_source(source).ok

    def test_generated_fsm_matches_golden(self):
        diagram = parse_state_diagram(PAPER_DIAGRAM)
        source = diagram.to_verilog(module_name="fsm_x")
        stimulus = [{"x": bit, "rst": 0} for bit in [0, 1, 1, 0, 0, 1, 0, 0]]
        result = run_functional_check(
            source, diagram.to_golden_model(), stimulus, reset=ResetSpec(signal="rst")
        )
        assert result.passed, result.failure_summary

    def test_swap_states_breaks_functionality(self):
        diagram = parse_state_diagram(PAPER_DIAGRAM)
        source = diagram.to_verilog(module_name="fsm_x", swap_states=("A", "B"))
        assert check_source(source).ok
        stimulus = [{"x": bit, "rst": 0} for bit in [0, 1, 1, 0, 0, 1, 0, 0]]
        result = run_functional_check(
            source, diagram.to_golden_model(), stimulus, reset=ResetSpec(signal="rst")
        )
        assert not result.passed

    def test_sync_reset_variant_compiles(self):
        diagram = parse_state_diagram(PAPER_DIAGRAM)
        source = diagram.to_verilog(async_reset=False)
        assert "or posedge rst" not in source
        assert check_source(source).ok


class TestRandomDiagrams:
    def test_deterministic(self):
        first = random_state_diagram(seed=9)
        second = random_state_diagram(seed=9)
        assert first.to_prompt_text() == second.to_prompt_text()

    def test_complete_and_consistent(self):
        for seed in range(6):
            diagram = random_state_diagram(num_states=3, seed=seed)
            assert diagram.is_complete()
            assert diagram.reset_state == "A"

    def test_outputs_not_all_identical(self):
        for seed in range(6):
            diagram = random_state_diagram(num_states=3, seed=seed)
            outputs = {tuple(sorted(diagram.outputs_of(state).items())) for state in diagram.state_names}
            assert len(outputs) > 1

    def test_generated_verilog_matches_golden(self):
        for seed in (0, 3, 5):
            diagram = random_state_diagram(num_states=4, seed=seed)
            source = diagram.to_verilog(module_name="rand_fsm")
            stimulus = [{"x": (seed + i) % 2, "rst": 0} for i in range(10)]
            result = run_functional_check(
                source, diagram.to_golden_model(), stimulus, reset=ResetSpec(signal="rst")
            )
            assert result.passed, result.failure_summary
