"""Tests for the truth-table modality."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.logic.expr import And, Var
from repro.symbolic.truth_table import (
    TruthTable,
    TruthTableError,
    looks_like_truth_table,
    parse_truth_table,
)

PAPER_TABLE = """a | b | out
0 | 0 | 0
0 | 1 | 0
1 | 0 | 0
1 | 1 | 1"""


class TestParsing:
    def test_parse_paper_table(self):
        table = parse_truth_table(PAPER_TABLE)
        assert table.inputs == ["a", "b"]
        assert table.outputs == ["out"]
        assert len(table.rows) == 4
        assert table.is_complete()

    def test_parse_with_surrounding_text(self):
        text = "Implement the truth table below...\n" + PAPER_TABLE + "\nThanks."
        table = parse_truth_table(text)
        assert table.minterms() == [3]

    def test_parse_multi_output(self):
        text = "a | b | y | q\n0 | 0 | 1 | 0\n1 | 1 | 0 | 1"
        table = parse_truth_table(text)
        assert table.outputs == ["y", "q"]
        assert table.inputs == ["a", "b"]

    def test_parse_defaults_last_column_to_output(self):
        text = "p | r | s\n0 | 0 | 1\n1 | 1 | 0"
        table = parse_truth_table(text)
        assert table.outputs == ["s"]

    def test_skips_malformed_rows(self):
        text = PAPER_TABLE + "\n1 | ? | 1"
        table = parse_truth_table(text)
        assert len(table.rows) == 4

    def test_no_table_raises(self):
        with pytest.raises(TruthTableError):
            parse_truth_table("implement a counter please")

    def test_header_only_raises(self):
        with pytest.raises(TruthTableError):
            parse_truth_table("a | b | out")


class TestDetectionHeuristic:
    def test_positive(self):
        assert looks_like_truth_table(PAPER_TABLE)

    def test_negative_plain_text(self):
        assert not looks_like_truth_table("implement an adder with carry out")

    def test_negative_state_diagram(self):
        assert not looks_like_truth_table("A[out=0]--[x=0]->B\nB[out=1]--[x=1]->B\nA[out=0]--[x=1]->A")


class TestSemantics:
    def test_minterms_and_expression(self):
        table = parse_truth_table(PAPER_TABLE)
        assert table.minterms() == [3]
        assert table.to_expression().equivalent_to(And(Var("a"), Var("b")))

    def test_output_for_lookup(self):
        table = parse_truth_table(PAPER_TABLE)
        assert table.output_for({"a": 1, "b": 1}) == 1
        assert table.output_for({"a": 0, "b": 1}) == 0

    def test_output_for_missing_row(self):
        table = TruthTable(inputs=["a"], outputs=["out"], rows=[{"a": 0, "out": 1}])
        assert table.output_for({"a": 1}) is None
        assert not table.is_complete()

    def test_from_function(self):
        table = TruthTable.from_function(["a", "b"], "out", function={3: 1})
        assert table.minterms() == [3]
        assert table.is_complete()

    def test_from_expression(self):
        table = TruthTable.from_function(["a", "b"], "out", expression=And(Var("a"), Var("b")))
        assert table.minterms() == [3]

    def test_from_function_requires_source(self):
        with pytest.raises(TruthTableError):
            TruthTable.from_function(["a"], "out")


class TestRendering:
    def test_prompt_roundtrip(self):
        table = parse_truth_table(PAPER_TABLE)
        reparsed = parse_truth_table(table.to_prompt_text())
        assert reparsed.minterms() == table.minterms()
        assert reparsed.inputs == table.inputs

    def test_interpretation_format(self):
        table = parse_truth_table(PAPER_TABLE)
        interpretation = table.interpret()
        assert "Variables:" in interpretation
        assert "a(input)" in interpretation
        assert "out(output)" in interpretation
        assert "Rules:" in interpretation
        assert "If a=1, b=1, then out=1;" in interpretation

    def test_interpretation_has_one_rule_per_row(self):
        table = parse_truth_table(PAPER_TABLE)
        rules = [line for line in table.interpret().splitlines() if line and line[0].isdigit()]
        assert len(rules) == 4


@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=8, unique=True))
def test_prompt_roundtrip_property(minterms):
    table = TruthTable.from_function(["a", "b", "c"], "out", function={m: 1 for m in minterms})
    reparsed = parse_truth_table(table.to_prompt_text())
    assert reparsed.minterms() == sorted(minterms)
