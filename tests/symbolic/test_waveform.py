"""Tests for the waveform-chart modality."""

from __future__ import annotations

import pytest

from repro.logic.expr import And, Var
from repro.symbolic.waveform import Waveform, WaveformError, looks_like_waveform, parse_waveform

PAPER_WAVEFORM = """a: 0 1 1 0
b: 1 0 1 0
out: 0 0 1 0
time(ns): 0 10 20 30"""


class TestParsing:
    def test_parse_paper_waveform(self):
        waveform = parse_waveform(PAPER_WAVEFORM)
        assert set(waveform.signals) == {"a", "b", "out"}
        assert waveform.times == [0, 10, 20, 30]
        assert waveform.num_samples == 4

    def test_output_detection(self):
        waveform = parse_waveform(PAPER_WAVEFORM)
        assert waveform.output_names == ["out"]
        assert waveform.input_names == ["a", "b"]

    def test_parse_with_ellipsis(self):
        text = "a: 0 1 1 ...\nout: 0 1 1 ...\n"
        waveform = parse_waveform(text)
        assert waveform.num_samples == 3

    def test_parse_without_time_line_generates_times(self):
        text = "a: 0 1\nout: 0 1"
        waveform = parse_waveform(text)
        assert waveform.times == [0, 10]

    def test_last_signal_is_output_when_unnamed(self):
        text = "p: 0 1\nr: 1 0\ns: 1 1"
        waveform = parse_waveform(text)
        assert waveform.output_names == ["s"]

    def test_single_signal_raises(self):
        with pytest.raises(WaveformError):
            parse_waveform("a: 0 1 0 1")

    def test_plain_text_raises(self):
        with pytest.raises(WaveformError):
            parse_waveform("make me a mux")

    def test_truncates_to_shortest_signal(self):
        text = "a: 0 1 1 1 0\nout: 0 1 1"
        waveform = parse_waveform(text)
        assert waveform.num_samples == 3


class TestDetectionHeuristic:
    def test_positive(self):
        assert looks_like_waveform(PAPER_WAVEFORM)

    def test_negative(self):
        assert not looks_like_waveform("Implement a 4-bit adder with carry.")

    def test_negative_state_diagram(self):
        assert not looks_like_waveform("A[out=0]--[x=0]->B")


class TestSemantics:
    def test_sample_access(self):
        waveform = parse_waveform(PAPER_WAVEFORM)
        assert waveform.sample(2) == {"a": 1, "b": 1, "out": 1}

    def test_to_truth_table(self):
        waveform = parse_waveform(PAPER_WAVEFORM)
        table = waveform.to_truth_table()
        assert table.inputs == ["a", "b"]
        assert table.output_for({"a": 1, "b": 1}) == 1
        assert table.output_for({"a": 0, "b": 1}) == 0

    def test_to_truth_table_deduplicates(self):
        text = "a: 0 0 1\nout: 0 0 1"
        table = parse_waveform(text).to_truth_table()
        assert len(table.rows) == 2

    def test_from_expression(self):
        waveform = Waveform.from_expression(And(Var("a"), Var("b")), num_samples=6, seed=1)
        assert waveform.num_samples == 6
        for index in range(6):
            sample = waveform.sample(index)
            assert sample["out"] == (sample["a"] & sample["b"])

    def test_from_expression_with_explicit_samples(self):
        samples = [{"a": 1, "b": 1}, {"a": 0, "b": 1}]
        waveform = Waveform.from_expression(And(Var("a"), Var("b")), samples=samples)
        assert waveform.signals["out"] == [1, 0]


class TestRendering:
    def test_prompt_roundtrip(self):
        waveform = parse_waveform(PAPER_WAVEFORM)
        reparsed = parse_waveform(waveform.to_prompt_text())
        assert reparsed.signals == waveform.signals

    def test_interpretation_format(self):
        waveform = parse_waveform(PAPER_WAVEFORM)
        interpretation = waveform.interpret()
        assert "Variables:" in interpretation
        assert "When time is 0ns" in interpretation
        assert "out=1" in interpretation

    def test_interpretation_mentions_every_sample(self):
        waveform = parse_waveform(PAPER_WAVEFORM)
        lines = [line for line in waveform.interpret().splitlines() if line.startswith("When time")]
        assert len(lines) == 4
