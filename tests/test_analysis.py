"""Tests for the post-evaluation hallucination analysis."""

from __future__ import annotations

import pytest

from repro.analysis import HallucinationAnalyzer, analyze_hallucinations
from repro.core.llm.profiles import BASELINE_PROFILES
from repro.core.llm.simulated import SimulatedCodeGenLLM
from repro.core.pipeline import HaVenPipeline
from repro.core.taxonomy import HallucinationType


@pytest.fixture(scope="module")
def weak_report(tiny_human_suite_module):
    backend = SimulatedCodeGenLLM(BASELINE_PROFILES["codellama-7b"], seed=3)
    pipeline = HaVenPipeline(backend, use_sicot=False)
    return analyze_hallucinations(pipeline, tiny_human_suite_module, samples_per_task=2, seed=3)


@pytest.fixture(scope="module")
def tiny_human_suite_module():
    from repro.bench.verilogeval import SuiteConfig, build_verilogeval_human

    return build_verilogeval_human(SuiteConfig(num_tasks=14, seed=9))


class TestHallucinationAnalysis:
    def test_every_sample_diagnosed(self, weak_report, tiny_human_suite_module):
        assert weak_report.total_samples == 2 * len(tiny_human_suite_module)

    def test_weak_model_produces_failures(self, weak_report):
        assert weak_report.failing_samples > 0

    def test_failing_samples_are_classified(self, weak_report):
        classified = [d for d in weak_report.diagnoses if d.subtype is not None]
        failing = [d for d in weak_report.diagnoses if not d.functional_pass]
        assert len(classified) >= len(failing) * 0.5

    def test_counts_by_type_cover_taxonomy(self, weak_report):
        by_type = weak_report.counts_by_type()
        assert set(by_type) == set(HallucinationType)
        assert sum(by_type.values()) == weak_report.summary().total

    def test_counts_by_category_totals(self, weak_report):
        by_category = weak_report.counts_by_category()
        assert sum(total for _, total in by_category.values()) == weak_report.total_samples
        for failing, total in by_category.values():
            assert 0 <= failing <= total

    def test_render_contains_sections(self, weak_report):
        text = weak_report.render()
        assert "Hallucination analysis" in text
        assert "Task category" in text

    def test_perfect_samples_not_classified(self, tiny_human_suite_module):
        class PerfectBackend:
            name = "Perfect"

            def generate(self, context, config):
                from repro.core.llm.base import GeneratedSample

                return [GeneratedSample(code=context.reference_source, sample_index=i) for i in range(config.num_samples)]

        report = HallucinationAnalyzer(samples_per_task=1).analyze(
            HaVenPipeline(PerfectBackend(), use_sicot=False), tiny_human_suite_module
        )
        assert report.failing_samples == 0
        assert report.summary().total == 0

    def test_strong_model_fails_less_than_weak(self, weak_report, tiny_human_suite_module):
        backend = SimulatedCodeGenLLM(BASELINE_PROFILES["origen-deepseek"], seed=3)
        strong = analyze_hallucinations(
            HaVenPipeline(backend, use_sicot=False), tiny_human_suite_module, samples_per_task=2, seed=3
        )
        assert strong.failing_samples <= weak_report.failing_samples
