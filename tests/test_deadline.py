"""Cooperative wall-clock deadlines (`repro.deadline`)."""

from __future__ import annotations

import pickle
import time

import pytest

from repro.deadline import (
    CheckTimeout,
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)


class TestCheckDeadline:
    def test_noop_without_scope(self):
        assert current_deadline() is None
        check_deadline("anywhere")  # never raises

    def test_none_budget_is_a_noop_scope(self):
        with deadline_scope(None) as deadline:
            assert deadline is None
            assert current_deadline() is None
            check_deadline()

    def test_exhausted_budget_raises_structured_timeout(self):
        with deadline_scope(0.01):
            time.sleep(0.02)
            with pytest.raises(CheckTimeout) as excinfo:
                check_deadline("unit.test")
        error = excinfo.value
        assert error.site == "unit.test"
        assert error.budget_s == pytest.approx(0.01)
        assert "wall-clock budget" in str(error)
        assert "unit.test" in str(error)

    def test_generous_budget_does_not_fire(self):
        with deadline_scope(60.0) as deadline:
            check_deadline("fine")
            assert deadline.remaining() > 0
            assert not deadline.expired()

    def test_scopes_nest_and_restore(self):
        with deadline_scope(60.0) as outer:
            assert current_deadline() is outer
            with deadline_scope(30.0) as inner:
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_existing_deadline_can_be_shared(self):
        shared = Deadline(60.0)
        with deadline_scope(shared) as deadline:
            assert deadline is shared
            assert current_deadline() is shared

    def test_scope_restores_on_exception(self):
        with pytest.raises(ValueError):
            with deadline_scope(60.0):
                raise ValueError("boom")
        assert current_deadline() is None


class TestCheckTimeoutPickling:
    def test_round_trip_keeps_structured_fields(self):
        original = CheckTimeout("budget gone", site="sat.solve", budget_s=1.5)
        restored = pickle.loads(pickle.dumps(original))
        assert isinstance(restored, CheckTimeout)
        assert str(restored) == "budget gone"
        assert restored.site == "sat.solve"
        assert restored.budget_s == 1.5
