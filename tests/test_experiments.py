"""End-to-end tests of the experiment drivers (scaled far down)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentScale,
    HAVEN_BASE_MODELS,
    build_datasets,
    build_haven_models,
    build_suites,
    baseline_pipeline,
    run_fig3,
    run_fig4,
    run_table4,
    run_table6,
)


@pytest.fixture(scope="module")
def tiny_scale() -> ExperimentScale:
    return ExperimentScale(
        corpus_size=50,
        l_dataset_concise=10,
        l_dataset_faithful=6,
        machine_tasks=8,
        human_tasks=10,
        rtllm_tasks=4,
        v2_tasks=6,
        num_samples=2,
        temperatures=(0.2,),
        seed=1,
    )


@pytest.fixture(scope="module")
def tiny_datasets(tiny_scale):
    return build_datasets(tiny_scale)


class TestDatasetBundle:
    def test_all_three_datasets_non_empty(self, tiny_datasets):
        assert len(tiny_datasets.vanilla) > 0
        assert len(tiny_datasets.k_dataset) > 0
        assert len(tiny_datasets.l_dataset) > 0

    def test_kl_combination(self, tiny_datasets):
        kl = tiny_datasets.kl_dataset()
        assert len(kl) == len(tiny_datasets.k_dataset) + len(tiny_datasets.l_dataset)


class TestHaVenModels:
    def test_three_models_built(self, tiny_datasets):
        models = build_haven_models(tiny_datasets)
        assert set(models.pipelines) == set(HAVEN_BASE_MODELS.values())
        for name, profile in models.profiles.items():
            assert profile.name == name

    def test_finetuned_skills_exceed_base(self, tiny_datasets):
        from repro.core.llm.profiles import BASE_MODEL_PROFILES

        models = build_haven_models(tiny_datasets)
        for base_key, haven_name in HAVEN_BASE_MODELS.items():
            base = BASE_MODEL_PROFILES[base_key]
            tuned = models.profiles[haven_name]
            assert tuned.knowledge_skill > base.knowledge_skill
            assert tuned.logic_skill > base.logic_skill


class TestSuitesAndScales:
    def test_build_suites_sizes(self, tiny_scale):
        suites = build_suites(tiny_scale)
        assert len(suites["machine"]) == tiny_scale.machine_tasks
        assert len(suites["human"]) == tiny_scale.human_tasks
        assert len(suites["rtllm"]) == tiny_scale.rtllm_tasks
        assert len(suites["v2"]) == tiny_scale.v2_tasks

    def test_paper_scale_matches_benchmark_sizes(self):
        scale = ExperimentScale.paper()
        assert scale.machine_tasks == 143
        assert scale.human_tasks == 156
        assert scale.rtllm_tasks == 29
        assert scale.num_samples == 10
        assert scale.temperatures == (0.2, 0.5, 0.8)

    def test_evaluation_config_ks(self, tiny_scale):
        assert tiny_scale.evaluation_config().ks == (1,)
        assert ExperimentScale.paper().evaluation_config().ks == (1, 5)

    def test_baseline_pipeline_factory(self):
        pipeline = baseline_pipeline("gpt-4", use_sicot=True)
        assert "GPT-4" in pipeline.name
        assert pipeline.use_sicot


class TestExperimentDrivers:
    def test_table4_rows(self, tiny_scale):
        rows = run_table4(tiny_scale, baseline_keys=["gpt-3.5", "origen-deepseek"], include_haven=True)
        names = [row.model for row in rows]
        assert "GPT-3.5" in names
        assert any(name.startswith("HaVen") for name in names)
        for row in rows:
            assert row.machine_pass1 is not None
            assert row.human_pass1 is not None

    def test_haven_outperforms_weak_baseline_on_human(self, tiny_scale):
        rows = run_table4(tiny_scale, baseline_keys=["codellama-7b"], include_haven=True)
        by_name = {row.model: row for row in rows}
        haven_best = max(row.human_pass1 for name, row in by_name.items() if name.startswith("HaVen"))
        assert haven_best >= by_name["CodeLlama-7b-Instruct"].human_pass1

    def test_table6_sicot_never_hurts_much(self, tiny_scale):
        rows = run_table6(tiny_scale, full_subset=False)
        assert set(rows) == {"GPT-4o mini", "GPT-4", "DeepSeek-Coder-V2"}
        for with_cot, without_cot in rows.values():
            assert with_cot >= without_cot - 1e-6

    def test_fig3_monotone_improvement(self, tiny_scale):
        series = run_fig3(tiny_scale)
        assert len(series) == 3
        for entry in series:
            assert entry.pass1["vanilla+CoT+KL"] >= entry.pass1["base"]
            assert entry.pass1["vanilla+KL"] >= entry.pass1["vanilla"] - 1e-6

    def test_fig4_grid_monotone_in_k(self, tiny_scale):
        grid1, grid5 = run_fig4(tiny_scale, portions=(0, 100))
        assert set(grid1) == {(0, 0), (0, 100), (100, 0), (100, 100)}
        assert grid1[(100, 100)] >= grid1[(0, 0)]
        assert grid5[(100, 100)] >= grid1[(100, 100)] - 1e-6
