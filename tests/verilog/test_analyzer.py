"""Tests for the topic/attribute analyzer (the slang substitute)."""

from __future__ import annotations

from repro.verilog.analyzer import Attribute, ModuleAnalyzer, Topic, analyze_source


class TestTopicDetection:
    def test_counter_detected(self, counter_source):
        result = analyze_source(counter_source)
        assert Topic.COUNTER in result.topics
        assert result.primary_topic is Topic.COUNTER

    def test_fsm_detected(self, fsm_source):
        result = analyze_source(fsm_source)
        assert Topic.FSM in result.topics
        assert result.state_signals  # state/next_state found

    def test_adder_detected(self, adder_source):
        result = analyze_source(adder_source)
        assert Topic.ADDER in result.topics

    def test_mux_detected(self, mux_source):
        result = analyze_source(mux_source)
        assert Topic.MULTIPLEXER in result.topics

    def test_shift_register_detected_by_structure(self):
        source = """
        module sr(input clk, input rst, input din, output reg [7:0] data);
            always @(posedge clk) begin
                if (rst) data <= 8'd0;
                else data <= {data[6:0], din};
            end
        endmodule
        """
        result = analyze_source(source)
        assert Topic.SHIFT_REGISTER in result.topics

    def test_alu_detected_by_name_and_structure(self):
        source = """
        module my_alu(input [3:0] a, input [3:0] b, input [1:0] op, output reg [3:0] r);
            always @(*) begin
                case (op)
                    2'b00: r = a + b;
                    2'b01: r = a - b;
                    default: r = a & b;
                endcase
            end
        endmodule
        """
        result = analyze_source(source)
        assert Topic.ALU in result.topics

    def test_plain_logic_falls_back_to_combinational(self):
        result = analyze_source("module g(input p, input q, output w); assign w = p ^ q; endmodule")
        assert result.primary_topic is Topic.COMBINATIONAL
        assert not result.has_identifiable_topic()

    def test_clock_divider_detected_by_name(self):
        source = """
        module clk_div(input clk, input rst, output reg clk_out);
            reg [3:0] counter;
            always @(posedge clk) begin
                if (rst) begin counter <= 4'd0; clk_out <= 1'b0; end
                else if (counter == 4'd3) begin counter <= 4'd0; clk_out <= ~clk_out; end
                else counter <= counter + 4'd1;
            end
        endmodule
        """
        result = analyze_source(source)
        assert Topic.CLOCK_DIVIDER in result.topics


class TestAttributeDetection:
    def test_sync_reset_posedge_clock(self, counter_source):
        result = analyze_source(counter_source)
        assert Attribute.SYNC_RESET in result.attributes
        assert Attribute.POSEDGE_CLOCK in result.attributes
        assert Attribute.SEQUENTIAL in result.attributes
        assert Attribute.PARAMETERIZED in result.attributes

    def test_async_reset_detected(self, fsm_source):
        result = analyze_source(fsm_source)
        assert Attribute.ASYNC_RESET in result.attributes

    def test_active_high_enable(self, counter_source):
        result = analyze_source(counter_source)
        assert Attribute.ACTIVE_HIGH_ENABLE in result.attributes

    def test_active_low_enable(self):
        source = """
        module r(input clk, input rst, input en_n, input d, output reg q);
            always @(posedge clk) begin
                if (rst) q <= 1'b0;
                else if (!en_n) q <= d;
            end
        endmodule
        """
        result = analyze_source(source)
        assert Attribute.ACTIVE_LOW_ENABLE in result.attributes

    def test_negedge_clock(self):
        source = """
        module d(input clk, input d, output reg q);
            always @(negedge clk) q <= d;
        endmodule
        """
        result = analyze_source(source)
        assert Attribute.NEGEDGE_CLOCK in result.attributes

    def test_combinational_only(self, adder_source):
        result = analyze_source(adder_source)
        assert Attribute.COMBINATIONAL_ONLY in result.attributes
        assert Attribute.SEQUENTIAL not in result.attributes

    def test_clock_and_reset_signal_lists(self, counter_source):
        result = analyze_source(counter_source)
        assert result.clock_signals == ["clk"]
        assert result.reset_signals == ["rst"]
        assert result.enable_signals == ["en"]

    def test_active_low_reset_names(self):
        source = """
        module r(input clk, input rst_n, input d, output reg q);
            always @(posedge clk or negedge rst_n) begin
                if (!rst_n) q <= 1'b0;
                else q <= d;
            end
        endmodule
        """
        result = analyze_source(source)
        assert "rst_n" in result.reset_signals
        assert Attribute.ASYNC_RESET in result.attributes


class TestAnalyzerOnCorpus:
    def test_corpus_topics_match_intent(self, small_corpus):
        """The analyzer recovers the intended topic for most clean corpus samples."""
        analyzer = ModuleAnalyzer()
        clean = [sample for sample in small_corpus if not sample.is_flawed]
        hits = 0
        for sample in clean:
            result = analyzer.analyze_source(sample.code)
            if sample.intended_topic in result.topics or sample.intended_topic is Topic.COMBINATIONAL:
                hits += 1
        assert hits >= len(clean) * 0.8

    def test_primary_topic_priority(self, fsm_source):
        result = analyze_source(fsm_source)
        # FSM wins over any other co-detected topic.
        assert result.primary_topic is Topic.FSM
