"""Differential property tests: BatchSimulator vs the scalar ModuleSimulator.

The batched engine must be *bit-exact* with the scalar oracle on every signal of
every lane — combinational and clocked.  Random modules are generated from a
seeded grammar over the supported RTL subset (bitwise/arithmetic/relational
operators, ternaries, concats, part selects, shifts by constants and by
signals, if/case procedural logic, sync/async resets) and driven with random
stimuli; any divergence is a bug in the column algebra.
"""

from __future__ import annotations

import random

import pytest

from repro.verilog.simulator import (
    BatchSimulator,
    BatchVector,
    LogicVector,
    ModuleSimulator,
    differential_combinational,
    simulate_combinational,
    simulate_combinational_batch,
)


# --------------------------------------------------------------------------- random RTL
class _ExprGen:
    """Seeded random expression generator over declared signals."""

    def __init__(self, rng: random.Random, signals: dict[str, int]):
        self.rng = rng
        self.signals = signals

    def expr(self, depth: int) -> str:
        if depth <= 0 or self.rng.random() < 0.3:
            return self.leaf()
        choice = self.rng.random()
        if choice < 0.35:
            op = self.rng.choice(["&", "|", "^", "+", "-"])
            return f"({self.expr(depth - 1)} {op} {self.expr(depth - 1)})"
        if choice < 0.5:
            op = self.rng.choice(["==", "!=", "<", ">", "<=", ">="])
            return f"({self.expr(depth - 1)} {op} {self.expr(depth - 1)})"
        if choice < 0.6:
            return f"(~{self.expr(depth - 1)})"
        if choice < 0.7:
            op = self.rng.choice(["&", "|", "^"])
            name = self.rng.choice(list(self.signals))
            return f"({op}{name})"
        if choice < 0.8:
            return f"({self.expr(depth - 1)} ? {self.expr(depth - 1)} : {self.expr(depth - 1)})"
        if choice < 0.9:
            amount = self.rng.randint(0, 3)
            op = self.rng.choice(["<<", ">>"])
            return f"({self.expr(depth - 1)} {op} {amount})"
        return f"{{{self.expr(depth - 1)}, {self.expr(depth - 1)}}}"

    def leaf(self) -> str:
        if self.rng.random() < 0.7:
            name = self.rng.choice(list(self.signals))
            width = self.signals[name]
            if width > 1 and self.rng.random() < 0.3:
                msb = self.rng.randint(0, width - 1)
                lsb = self.rng.randint(0, msb)
                if msb == lsb:
                    return f"{name}[{msb}]"
                return f"{name}[{msb}:{lsb}]"
            return name
        width = self.rng.randint(1, 4)
        return f"{width}'d{self.rng.randrange(1 << width)}"


def _random_combinational(seed: int) -> tuple[str, dict[str, int]]:
    """A random combinational module; returns (source, input widths)."""
    rng = random.Random(seed)
    num_inputs = rng.randint(2, 4)
    widths = {f"i{n}": rng.choice([1, 2, 4, 8]) for n in range(num_inputs)}
    gen = _ExprGen(rng, widths)
    ports = [f"    input [{w - 1}:0] {n}" if w > 1 else f"    input {n}" for n, w in widths.items()]
    num_outputs = rng.randint(1, 3)
    lines = []
    for index in range(num_outputs):
        out_width = rng.choice([1, 4, 8])
        range_text = f"[{out_width - 1}:0] " if out_width > 1 else ""
        if rng.random() < 0.5:
            ports.append(f"    output {range_text}o{index}")
            lines.append(f"    assign o{index} = {gen.expr(3)};")
        else:
            ports.append(f"    output reg {range_text}o{index}")
            condition = gen.expr(2)
            subject = rng.choice(list(widths))
            arms = "\n".join(
                f"            {widths[subject]}'d{value}: o{index} = {gen.expr(2)};"
                for value in range(min(4, 1 << widths[subject]))
            )
            lines.append(
                "    always @(*) begin\n"
                f"        if ({condition})\n"
                f"            o{index} = {gen.expr(2)};\n"
                "        else begin\n"
                f"            case ({subject})\n{arms}\n"
                f"            default: o{index} = {gen.expr(2)};\n"
                "            endcase\n"
                "        end\n"
                "    end"
            )
    source = (
        "module randmod (\n" + ",\n".join(ports) + "\n);\n" + "\n".join(lines) + "\nendmodule\n"
    )
    return source, widths


def _random_clocked(seed: int) -> tuple[str, dict[str, int]]:
    """A random clocked module (registers + comb logic); returns (source, data widths)."""
    rng = random.Random(seed)
    widths = {"d0": rng.choice([1, 4, 8]), "d1": rng.choice([1, 2, 4])}
    gen = _ExprGen(rng, {**widths, "state": 4})
    async_reset = rng.random() < 0.5
    sensitivity = "posedge clk or posedge rst" if async_reset else "posedge clk"
    ports = ["    input clk", "    input rst"]
    ports += [
        f"    input [{w - 1}:0] {n}" if w > 1 else f"    input {n}" for n, w in widths.items()
    ]
    ports.append("    output reg [3:0] state")
    ports.append("    output [3:0] view")
    body = (
        f"    always @({sensitivity}) begin\n"
        "        if (rst)\n"
        "            state <= 4'd0;\n"
        "        else begin\n"
        f"            state <= {gen.expr(2)};\n"
        "        end\n"
        "    end\n"
        f"    assign view = {gen.expr(2)};\n"
    )
    source = "module randseq (\n" + ",\n".join(ports) + "\n);\n" + body + "endmodule\n"
    return source, widths


def _random_vectors(rng: random.Random, widths: dict[str, int], count: int) -> list[dict[str, int]]:
    return [
        {name: rng.randrange(1 << width) for name, width in widths.items()} for _ in range(count)
    ]


# --------------------------------------------------------------------------- combinational
class TestCombinationalDifferential:
    @pytest.mark.parametrize("seed", range(24))
    def test_random_module_matches_scalar_oracle(self, seed):
        source, widths = _random_combinational(seed)
        rng = random.Random(seed + 1000)
        vectors = _random_vectors(rng, widths, 24)
        # differential_combinational raises SimulationError on any divergence.
        outputs = differential_combinational(source, vectors)
        assert len(outputs) == len(vectors)

    def test_all_internal_signals_match_not_only_outputs(self):
        source, widths = _random_combinational(5)
        rng = random.Random(99)
        vectors = _random_vectors(rng, widths, 16)
        batch = BatchSimulator.from_source(source, lanes=len(vectors))
        batch.apply_inputs({name: [v[name] for v in vectors] for name in widths})
        for lane, vector in enumerate(vectors):
            scalar = ModuleSimulator.from_source(source)
            scalar.apply_inputs(dict(vector))
            for name in scalar.signals:
                assert batch.get_lane(name, lane) == scalar.get(name), (name, lane)

    def test_x_propagation_matches(self):
        source = (
            "module m(input [3:0] a, input [3:0] b, output [4:0] s, output e);\n"
            "    assign s = a + b;\n"
            "    assign e = a == b;\n"
            "endmodule\n"
        )
        # Lane 1 drives b with x bits; the scalar oracle must agree bit for bit.
        a_values = [LogicVector.from_int(3, 4), LogicVector.from_int(9, 4)]
        b_values = [LogicVector.from_int(5, 4), LogicVector.from_string("1x00")]
        batch = BatchSimulator.from_source(source, lanes=2)
        batch.apply_inputs({"a": a_values, "b": b_values})
        for lane in range(2):
            scalar = ModuleSimulator.from_source(source)
            scalar.apply_inputs({"a": a_values[lane], "b": b_values[lane]})
            assert batch.get_lane("s", lane) == scalar.get("s")
            assert batch.get_lane("e", lane) == scalar.get("e")

    def test_data_dependent_shift_matches(self):
        source = (
            "module m(input en, input [2:0] sel, output reg [7:0] out);\n"
            "    always @(*) begin\n"
            "        if (en) out = 8'd1 << sel; else out = 8'd0;\n"
            "    end\n"
            "endmodule\n"
        )
        vectors = [{"en": e, "sel": s} for e in (0, 1) for s in range(8)]
        differential_combinational(source, vectors)

    def test_inconsistent_stimulus_keys_rejected(self):
        from repro.verilog.errors import SimulationError

        source = "module m(input a, input b, output y); assign y = a ^ b; endmodule"
        with pytest.raises(SimulationError):
            simulate_combinational_batch(source, [{"a": 1, "b": 0}, {"a": 1}])

    def test_matches_scalar_helper_output_format(self):
        source = "module m(input a, input b, output y); assign y = a & b; endmodule"
        vectors = [{"a": a, "b": b} for a in (0, 1) for b in (0, 1)]
        assert simulate_combinational_batch(source, vectors) == simulate_combinational(
            source, vectors
        )


class TestIndexWrapRegressions:
    """Bit-select positions must not alias modulo 2^index.width (review finding)."""

    def test_read_of_bit_beyond_index_range_does_not_alias(self):
        # v[8] is unreachable through a 3-bit sel; sel=0 must read bit 0 only.
        source = (
            "module m(input [8:0] v, input [2:0] sel, output o);\n"
            "    assign o = v[sel];\n"
            "endmodule\n"
        )
        vectors = [{"v": 0b100000000, "sel": 0}, {"v": 0b100000001, "sel": 0}]
        outputs = differential_combinational(source, vectors)
        assert outputs[0]["o"].to_int() == 0
        assert outputs[1]["o"].to_int() == 1

    def test_write_of_bit_beyond_index_range_does_not_alias(self):
        source = (
            "module m(input [2:0] sel, output reg [8:0] out);\n"
            "    always @(*) begin\n"
            "        out = 9'd0;\n"
            "        out[sel] = 1'b1;\n"
            "    end\n"
            "endmodule\n"
        )
        # Mixed lanes force the non-uniform masked-write path.
        vectors = [{"sel": 0}, {"sel": 1}, {"sel": 7}]
        outputs = differential_combinational(source, vectors)
        assert [o["out"].to_int() for o in outputs] == [1, 2, 128]


class TestLatchFallback:
    """Inferred latches hold history across vectors: they must stay scalar."""

    LATCH = (
        "module m(input en, input [3:0] d, output reg [3:0] q);\n"
        "    always @(*) begin\n"
        "        if (en) q = d;\n"
        "    end\n"
        "endmodule\n"
    )

    def test_latch_risk_detected(self):
        assert BatchSimulator.from_source(self.LATCH, lanes=2).has_latch_risk()
        complete = (
            "module m(input en, input [3:0] d, output reg [3:0] q);\n"
            "    always @(*) begin\n"
            "        if (en) q = d; else q = 4'd0;\n"
            "    end\n"
            "endmodule\n"
        )
        assert not BatchSimulator.from_source(complete, lanes=2).has_latch_risk()
        case_with_default = (
            "module m(input [1:0] op, output reg [1:0] y);\n"
            "    always @(*) begin\n"
            "        case (op)\n"
            "            2'd0: y = 2'd1;\n"
            "            default: y = 2'd0;\n"
            "        endcase\n"
            "    end\n"
            "endmodule\n"
        )
        assert not BatchSimulator.from_source(case_with_default, lanes=2).has_latch_risk()
        case_without_default = case_with_default.replace(
            "            default: y = 2'd0;\n", ""
        )
        assert BatchSimulator.from_source(case_without_default, lanes=2).has_latch_risk()

    def test_latchy_dut_scored_identically_to_scalar_runner(self):
        from repro.verilog.simulator import BatchTestbenchRunner, CombinationalGolden, TestbenchRunner

        # The golden mirrors the latch's history semantics, so the scalar
        # serial run passes; the batched runner must reach the same verdict.
        state = {"q": 0}

        def golden_fn(inputs):
            if inputs["en"]:
                state["q"] = inputs["d"]
            return {"q": state["q"]}

        stimulus = [{"en": 1, "d": 5}, {"en": 0, "d": 7}, {"en": 1, "d": 2}]
        scalar = TestbenchRunner().run(self.LATCH, CombinationalGolden(golden_fn), stimulus)
        state["q"] = 0
        batched = BatchTestbenchRunner(differential=True).run(
            self.LATCH, CombinationalGolden(golden_fn), stimulus
        )
        assert scalar.passed and batched.passed


# --------------------------------------------------------------------------- clocked
class TestClockedDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_clocked_module_matches_scalar_lanes(self, seed):
        source, widths = _random_clocked(seed)
        rng = random.Random(seed + 500)
        lanes = 6
        cycles = 10
        sequences = [
            [
                {
                    "rst": 1 if cycle == 0 else (1 if rng.random() < 0.1 else 0),
                    **{name: rng.randrange(1 << width) for name, width in widths.items()},
                }
                for cycle in range(cycles)
            ]
            for _ in range(lanes)
        ]
        batch = BatchSimulator.from_source(source, lanes=lanes)
        scalars = [ModuleSimulator.from_source(source) for _ in range(lanes)]
        for cycle in range(cycles):
            data = {
                name: [sequences[lane][cycle][name] for lane in range(lanes)]
                for name in sequences[0][cycle]
            }
            batch.clock_cycle("clk", data)
            for lane in range(lanes):
                scalars[lane].clock_cycle("clk", sequences[lane][cycle])
            for lane in range(lanes):
                for name in scalars[lane].signals:
                    assert batch.get_lane(name, lane) == scalars[lane].get(name), (
                        seed,
                        cycle,
                        lane,
                        name,
                    )

    def test_per_lane_edges_trigger_masked_sequential(self):
        # Lanes disagree on the clock edge itself: only lanes seeing 0->1 tick.
        source = (
            "module m(input clk, output reg [3:0] q);\n"
            "    initial q = 4'd0;\n"
            "    always @(posedge clk) q <= q + 4'd1;\n"
            "endmodule\n"
        )
        batch = BatchSimulator.from_source(source, lanes=3)
        batch.apply_inputs({"clk": [0, 0, 0]})
        batch.apply_inputs({"clk": [1, 0, 1]})
        assert [batch.get_lane("q", lane).to_int() for lane in range(3)] == [1, 0, 1]
        batch.apply_inputs({"clk": [0, 1, 0]})
        assert [batch.get_lane("q", lane).to_int() for lane in range(3)] == [1, 1, 1]

    def test_async_reset_matches_oracle_mid_sequence(self):
        source = (
            "module m(input clk, input rst, input en, output reg [3:0] count);\n"
            "    always @(posedge clk or posedge rst) begin\n"
            "        if (rst) count <= 4'd0;\n"
            "        else if (en) count <= count + 1'b1;\n"
            "    end\n"
            "endmodule\n"
        )
        rng = random.Random(7)
        lanes = 4
        batch = BatchSimulator.from_source(source, lanes=lanes)
        scalars = [ModuleSimulator.from_source(source) for _ in range(lanes)]
        batch.pulse("rst")
        for scalar in scalars:
            scalar.pulse("rst")
        for cycle in range(12):
            resets = [1 if rng.random() < 0.2 else 0 for _ in range(lanes)]
            enables = [rng.randint(0, 1) for _ in range(lanes)]
            batch.clock_cycle("clk", {"rst": resets, "en": enables})
            for lane in range(lanes):
                scalars[lane].clock_cycle("clk", {"rst": resets[lane], "en": enables[lane]})
            for lane in range(lanes):
                assert batch.get_lane("count", lane) == scalars[lane].get("count"), (cycle, lane)


# --------------------------------------------------------------------------- BatchVector
class TestBatchVector:
    def test_pack_unpack_roundtrip(self):
        rng = random.Random(3)
        vectors = [
            LogicVector(width=6, value=rng.randrange(64), xz_mask=rng.randrange(64))
            for _ in range(17)
        ]
        packed = BatchVector.from_vectors(vectors)
        assert packed.to_vectors() == vectors

    def test_broadcast_is_uniform(self):
        value = LogicVector.from_string("1x0z")
        packed = BatchVector.broadcast(value, 9)
        assert packed.uniform_value() == value
        assert all(packed.lane(index) == value for index in range(9))

    def test_select_lanes_merges_per_lane(self):
        a = BatchVector.from_ints([1, 2, 3, 4], 4)
        b = BatchVector.from_ints([9, 9, 9, 9], 4)
        merged = a.select_lanes(0b0101, b)
        assert [merged.lane(index).to_int() for index in range(4)] == [1, 9, 3, 9]

    def test_resize_and_concat_match_scalar(self):
        vectors = [LogicVector.from_int(v, 3) for v in (1, 5, 7)]
        packed = BatchVector.from_vectors(vectors)
        widened = packed.resized(5)
        assert [widened.lane(index) for index in range(3)] == [v.resized(5) for v in vectors]
        joined = packed.concat(packed)
        assert [joined.lane(index) for index in range(3)] == [v.concat(v) for v in vectors]
