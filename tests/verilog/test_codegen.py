"""Codegen back end: lowering, equivalence, fallback recording, BitTable export.

The generated straight-line functions must be *observationally identical* to
the interpreter on every supported design — these tests pin the contract at
three levels: artifact generation (what is accepted, what is rejected and
why), runtime equivalence (codegen vs interpreter, lane by lane), and the
integration seams (fallback registry, deadline ticks, disk-cached artifacts,
truth-table export).
"""

from __future__ import annotations

import pytest

from repro.deadline import CheckTimeout, deadline_scope
from repro.verilog import codegen
from repro.verilog.design import DesignDatabase
from repro.verilog.simulator import BatchSimulator, ModuleSimulator
from repro.verilog.simulator.simulator import SimulationError

ALU = """
module alu(
    input [3:0] a,
    input [3:0] b,
    input [1:0] op,
    output reg [3:0] y,
    output reg carry
);
    reg [4:0] t;
    always @(*) begin
        t = 5'b0;
        case (op)
            2'b00: t = a + b;
            2'b01: t = a - b;
            2'b10: t = {1'b0, a & b};
            default: t = {1'b0, a | b};
        endcase
        y = t[3:0];
        carry = t[4];
    end
endmodule
"""

ACCUM = """
module accum(
    input clk,
    input rst,
    input [3:0] d,
    output reg [4:0] sum
);
    always @(posedge clk) begin
        if (rst)
            sum <= 5'b0;
        else
            sum <= sum + d;
    end
endmodule
"""


@pytest.fixture(autouse=True)
def _clean_fallback_registry():
    codegen.reset_fallback_stats()
    yield
    codegen.reset_fallback_stats()


def _columns(simulator: BatchSimulator, names: list[str]) -> dict[str, list[str]]:
    """Every output on every lane, as Verilog literals (x/z kept visible)."""
    out: dict[str, list[str]] = {}
    for name in names:
        vector = simulator.get(name)
        out[name] = [vector.lane(lane).to_verilog_literal() for lane in range(simulator.lanes)]
    return out


class TestGeneration:
    def test_supported_design_produces_sources(self):
        compiled = DesignDatabase().compile(ALU)
        artifact = compiled.codegen
        assert artifact is not None and artifact.supported
        assert "def codegen_settle" in artifact.settle_source
        assert "def codegen_sequential" in artifact.sequential_source
        assert set(artifact.settle_gate) == {"a", "b", "op"}
        assert {name for name, _ in artifact.settle_writes} == {"t", "y", "carry"}

    @pytest.mark.parametrize(
        "source, reason",
        [
            (
                "module d(input [3:0] a, input [3:0] b, output [3:0] y);"
                " assign y = a / b; endmodule",
                "mul-div-mod",
            ),
            (
                "module s(input [3:0] a, input [1:0] n, output [3:0] y);"
                " assign y = a << n; endmodule",
                "non-constant-shift",
            ),
            (
                "module l(input sel, input d, output reg q);"
                " always @(*) begin if (sel) q = d; end endmodule",
                "latch",
            ),
            (
                "module u(input a, output y); wire dangling;"
                " assign y = a; endmodule",
                "undef-source",
            ),
            (
                "module t(input a, output reg y);"
                ' always @(*) begin y = a; $display("y"); end endmodule',
                "system-task",
            ),
            (
                "module c(input a, output wire p, output wire q);"
                " assign p = a ^ q; assign q = p; endmodule",
                "comb-cycle",
            ),
        ],
    )
    def test_reject_reasons(self, source, reason):
        compiled = DesignDatabase().compile(source)
        assert compiled.codegen is not None
        assert compiled.codegen.reject_reason == reason

    def test_backend_codegen_raises_on_rejected_design(self):
        source = (
            "module d(input [3:0] a, input [3:0] b, output [3:0] y);"
            " assign y = a / b; endmodule"
        )
        with pytest.raises(SimulationError, match="mul-div-mod"):
            BatchSimulator.from_source(source, lanes=4, backend="codegen")

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="backend"):
            BatchSimulator.from_source(ALU, lanes=2, backend="jit")


class TestEquivalence:
    def test_combinational_matches_interpreter(self):
        lanes = 64
        rng_inputs = {
            "a": [(7 * lane + 3) % 16 for lane in range(lanes)],
            "b": [(11 * lane + 5) % 16 for lane in range(lanes)],
            "op": [lane % 4 for lane in range(lanes)],
        }
        fast = BatchSimulator.from_source(ALU, lanes=lanes, backend="codegen")
        slow = BatchSimulator.from_source(ALU, lanes=lanes, backend="interpret")
        assert fast._codegen is not None
        assert slow._codegen is None
        fast.apply_inputs(rng_inputs)
        slow.apply_inputs(dict(rng_inputs))
        assert _columns(fast, ["y", "carry"]) == _columns(slow, ["y", "carry"])

    def test_clocked_matches_interpreter(self):
        lanes = 16
        fast = BatchSimulator.from_source(ACCUM, lanes=lanes, backend="auto")
        slow = BatchSimulator.from_source(ACCUM, lanes=lanes, backend="interpret")
        stimulus = [
            {"clk": 0, "rst": 1, "d": [0] * lanes},
            {"clk": 1},
            {"clk": 0, "rst": 0, "d": [lane % 16 for lane in range(lanes)]},
            {"clk": 1},
            {"clk": 0, "d": [(3 * lane + 1) % 16 for lane in range(lanes)]},
            {"clk": 1},
        ]
        for step in stimulus:
            fast.apply_inputs(dict(step))
            slow.apply_inputs(dict(step))
            assert _columns(fast, ["sum"]) == _columns(slow, ["sum"])

    def test_xz_gate_falls_back_per_call_then_recovers(self):
        # Before the first reset the register is x: the gate refuses the
        # generated sequential pass and the interpreter runs that call.
        lanes = 4
        simulator = BatchSimulator.from_source(ACCUM, lanes=lanes, backend="auto")
        assert simulator._codegen is not None
        simulator.apply_inputs({"clk": 0, "rst": 0, "d": 1})
        simulator.apply_inputs({"clk": 1})
        stats = codegen.fallback_stats()
        assert stats["reasons"].get(codegen.XZ_STATE, 0) >= 1
        assert simulator.get("sum").lane(0).has_unknown
        # A reset cycle defines the state; from here the generated pass runs.
        simulator.apply_inputs({"clk": 0, "rst": 1})
        simulator.apply_inputs({"clk": 1})
        simulator.apply_inputs({"clk": 0, "rst": 0, "d": 3})
        simulator.apply_inputs({"clk": 1})
        before = codegen.fallback_stats()["total"]
        simulator.apply_inputs({"clk": 0, "d": 2})
        simulator.apply_inputs({"clk": 1})
        assert codegen.fallback_stats()["total"] == before
        assert simulator.get("sum").lane(0).to_int() == 5


class TestFallbackRegistry:
    def test_auto_records_design_rejection(self):
        source = (
            "module d(input [3:0] a, input [3:0] b, output [3:0] y);"
            " assign y = a % b; endmodule"
        )
        simulator = BatchSimulator.from_source(source, lanes=4, backend="auto")
        assert simulator._codegen is None
        stats = codegen.fallback_stats()
        assert stats["total"] >= 1
        assert "mul-div-mod" in stats["reasons"]
        assert any("mul-div-mod" in reasons for reasons in stats["designs"].values())

    def test_interpret_backend_records_nothing(self):
        BatchSimulator.from_source(ALU, lanes=4, backend="interpret")
        assert codegen.fallback_stats()["total"] == 0


class TestDeadline:
    def test_generated_settle_ticks_the_deadline(self):
        simulator = BatchSimulator.from_source(ALU, lanes=8, backend="codegen")
        runtime = simulator._codegen
        assert runtime is not None
        simulator.apply_inputs({"a": 1, "b": 2, "op": 0})
        with deadline_scope(0.0):
            with pytest.raises(CheckTimeout) as excinfo:
                runtime.try_settle(simulator.store, simulator._full_mask)
        assert excinfo.value.site == "BatchSimulator.codegen_settle"


class TestBitTableExport:
    def test_export_matches_scalar_simulator(self):
        source = """
        module f(input [2:0] a, input inv, output [2:0] y, output p);
            assign y = inv ? ~a : a;
            assign p = ^a;
        endmodule
        """
        compiled = DesignDatabase().compile(source)
        tables = codegen.export_bittables(compiled)
        assert tables is not None
        assert set(tables) == {"y", "p"}
        assert len(tables["y"]) == 3 and len(tables["p"]) == 1

        scalar = ModuleSimulator(compiled)
        for a in range(8):
            for inv in range(2):
                scalar.apply_inputs({"a": a, "inv": inv})
                assignment = {"inv": inv}
                for bit in range(3):
                    assignment[f"a[{bit}]"] = (a >> bit) & 1
                y = sum(
                    tables["y"][bit].evaluate(assignment) << bit for bit in range(3)
                )
                assert y == scalar.get_int("y")
                assert tables["p"][0].evaluate(assignment) == scalar.get_int("p")

    def test_sequential_designs_do_not_export(self):
        assert codegen.export_bittables(DesignDatabase().compile(ACCUM)) is None

    def test_oversized_input_space_does_not_export(self):
        source = (
            "module w(input [12:0] a, output [12:0] y); assign y = ~a; endmodule"
        )
        assert codegen.export_bittables(DesignDatabase().compile(source)) is None
