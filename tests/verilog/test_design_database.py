"""Cache semantics of the compile-once design database.

Covers the contract the rest of the codebase now leans on: LRU hit/miss/
eviction accounting, parameter-override keying, negative caching of parse and
elaboration errors, the on-disk content-addressed tier, signal-store isolation
between simulators built from one cached artifact, and a property test that
cached and cold evaluation agree on random writer round-tripped modules.
"""

from __future__ import annotations

import random

import pytest

from repro.verilog.design import (
    CompiledDesign,
    DesignDatabase,
    DesignKey,
    coerce_compiled,
    compile_module_ast,
    get_default_database,
    set_default_database,
)
from repro.verilog.errors import ElaborationError, ParseError, VerilogError
from repro.verilog.parser import parse_module
from repro.verilog.simulator import BatchSimulator, ModuleSimulator, elaborate_module
from repro.verilog.syntax_checker import SyntaxChecker
from repro.verilog.writer import write_module

INV = "module inv(input a, output y); assign y = ~a; endmodule\n"

PARAM_COUNTER = """
module counter #(parameter WIDTH = 4) (
    input clk,
    input rst,
    output reg [WIDTH-1:0] count
);
    always @(posedge clk) begin
        if (rst)
            count <= {WIDTH{1'b0}};
        else
            count <= count + 1'b1;
    end
endmodule
"""

LATCHY = """
module latchy(input sel, input d, output reg q);
    always @(*) begin
        if (sel)
            q = d;
    end
endmodule
"""


class TestCacheSemantics:
    def test_hit_miss_accounting(self):
        db = DesignDatabase()
        first = db.compile(INV)
        second = db.compile(INV)
        assert first is second
        assert db.stats.misses == 1
        assert db.stats.hits == 1

    def test_parameter_override_keying(self):
        db = DesignDatabase()
        base = db.compile(PARAM_COUNTER)
        wide = db.compile(PARAM_COUNTER, parameter_overrides={"WIDTH": 8})
        assert base is not wide
        assert base.parameters["WIDTH"] == 4
        assert wide.parameters["WIDTH"] == 8
        assert db.stats.misses == 2
        # Override order in the dict must not matter for the key.
        again = db.compile(PARAM_COUNTER, parameter_overrides={"WIDTH": 8})
        assert again is wide

    def test_module_name_keying(self):
        source = INV + "module buf_(input a, output y); assign y = a; endmodule\n"
        db = DesignDatabase()
        first = db.compile(source)
        named = db.compile(source, module_name="buf_")
        assert first.name == "inv"
        assert named.name == "buf_"
        # Both compiles share one parse of the source file.
        assert db.stats.parse_hits == 1

    def test_lru_eviction(self):
        db = DesignDatabase(max_entries=2)
        sources = [f"module m{i}(input a, output y); assign y = a; endmodule" for i in range(3)]
        db.compile(sources[0])
        db.compile(sources[1])
        db.compile(sources[0])  # refresh: m0 is now most recent
        db.compile(sources[2])  # evicts m1
        assert db.stats.evictions == 1
        misses = db.stats.misses
        db.compile(sources[0])
        assert db.stats.misses == misses  # still cached
        db.compile(sources[1])
        assert db.stats.misses == misses + 1  # was evicted, recompiled

    def test_zero_capacity_disables_caching(self):
        db = DesignDatabase(max_entries=0)
        first = db.compile(INV)
        second = db.compile(INV)
        assert first is not second
        assert db.stats.hits == 0
        assert db.stats.misses == 2

    def test_negative_cache_parse_error(self):
        db = DesignDatabase()
        broken = "module broken("
        with pytest.raises(ParseError) as cold:
            db.compile(broken)
        with pytest.raises(ParseError) as warm:
            db.compile(broken)
        assert str(cold.value) == str(warm.value)
        assert db.stats.negative_hits == 1
        assert db.stats.misses == 1

    def test_negative_cache_elaboration_error(self):
        db = DesignDatabase()
        # Parses fine but cannot be elaborated (memory array).
        source = "module mem(input a, output y); reg [7:0] store [0:3]; assign y = a; endmodule"
        with pytest.raises(ElaborationError):
            db.compile(source)
        with pytest.raises(ElaborationError):
            db.compile(source)
        assert db.stats.negative_hits == 1

    def test_negative_cache_is_per_key(self):
        db = DesignDatabase()
        with pytest.raises(ParseError):
            db.compile(INV, module_name="missing")
        # Same source under a different key still compiles.
        assert db.compile(INV).name == "inv"


class TestDiskTier:
    def test_round_trip(self, tmp_path):
        writer_db = DesignDatabase(cache_dir=tmp_path)
        compiled = writer_db.compile(PARAM_COUNTER, parameter_overrides={"WIDTH": 6})
        assert writer_db.stats.disk_writes == 1

        reader_db = DesignDatabase(cache_dir=tmp_path)
        loaded = reader_db.compile(PARAM_COUNTER, parameter_overrides={"WIDTH": 6})
        assert reader_db.stats.disk_hits == 1
        assert reader_db.stats.misses == 0
        assert loaded.key == compiled.key
        assert loaded.parameters == compiled.parameters
        # The loaded artifact must actually simulate.
        simulator = ModuleSimulator(loaded)
        simulator.apply_inputs({"rst": 1, "clk": 0})
        simulator.clock_cycle()
        simulator.apply_inputs({"rst": 0})
        simulator.clock_cycle()
        assert simulator.get_int("count") == 1

    def test_corrupt_entry_recompiles(self, tmp_path):
        db = DesignDatabase(cache_dir=tmp_path)
        db.compile(INV)
        for entry in tmp_path.iterdir():
            entry.write_bytes(b"not a pickle")
        fresh = DesignDatabase(cache_dir=tmp_path)
        compiled = fresh.compile(INV)
        assert fresh.stats.disk_hits == 0
        assert fresh.stats.misses == 1
        assert compiled.name == "inv"

    def test_disk_filename_embeds_schema_version(self, tmp_path):
        from repro.verilog.design import DISK_FORMAT_VERSION

        db = DesignDatabase(cache_dir=tmp_path)
        db.compile(INV)
        entries = list(tmp_path.iterdir())
        assert len(entries) == 1
        assert entries[0].name.endswith(f"-v{DISK_FORMAT_VERSION}.pkl")

    def test_stale_schema_version_is_a_clean_miss(self, tmp_path):
        """Old-format pickles are never loaded: the version lives in the key.

        A schema bump (e.g. adding the codegen artifact) must surface as a
        recompile, not as an unpickle error or an artifact with silently
        missing attributes.
        """
        from repro.verilog.design import DISK_FORMAT_VERSION

        db = DesignDatabase(cache_dir=tmp_path)
        db.compile(INV)
        for entry in list(tmp_path.iterdir()):
            stale = entry.name.replace(
                f"-v{DISK_FORMAT_VERSION}.pkl", f"-v{DISK_FORMAT_VERSION - 1}.pkl"
            )
            entry.rename(tmp_path / stale)
        fresh = DesignDatabase(cache_dir=tmp_path)
        compiled = fresh.compile(INV)
        assert fresh.stats.disk_hits == 0
        assert fresh.stats.misses == 1
        simulator = ModuleSimulator(compiled)
        simulator.apply_inputs({"a": 1})
        assert simulator.get_int("y") == 0
        # The recompile rewrote the entry under the current version.
        names = {entry.name for entry in tmp_path.iterdir()}
        assert any(name.endswith(f"-v{DISK_FORMAT_VERSION}.pkl") for name in names)

    def test_codegen_artifact_survives_disk_round_trip(self, tmp_path):
        writer_db = DesignDatabase(cache_dir=tmp_path)
        compiled = writer_db.compile(INV)
        assert compiled.codegen is not None and compiled.codegen.supported

        reader_db = DesignDatabase(cache_dir=tmp_path)
        loaded = reader_db.compile(INV)
        assert reader_db.stats.disk_hits == 1
        assert loaded.codegen is not None
        assert loaded.codegen.supported
        assert loaded.codegen.settle_source == compiled.codegen.settle_source
        # The reloaded artifact must drive the generated back end.
        simulator = BatchSimulator(loaded, lanes=2, backend="codegen")
        simulator.apply_inputs({"a": [0, 1]})
        assert simulator.get("y").lane(0).to_int() == 1
        assert simulator.get("y").lane(1).to_int() == 0


class TestCompiledDesign:
    def test_store_isolation_between_simulators(self):
        db = DesignDatabase()
        compiled = db.compile(PARAM_COUNTER)
        a = ModuleSimulator(compiled)
        b = ModuleSimulator(compiled)
        a.apply_inputs({"rst": 1, "clk": 0})
        a.clock_cycle()
        a.apply_inputs({"rst": 0})
        a.clock_cycle()
        a.clock_cycle()
        assert a.get_int("count") == 2
        # b never saw a clock edge: its registers still hold the template's x.
        assert b.get("count").has_unknown
        # The template itself is untouched.
        assert compiled.template.store.get("count").has_unknown

    def test_template_survives_simulation(self):
        db = DesignDatabase()
        compiled = db.compile(INV)
        simulator = ModuleSimulator(compiled)
        simulator.apply_inputs({"a": 1})
        again = ModuleSimulator(compiled)
        again.apply_inputs({"a": 0})
        assert again.get_int("y") == 1
        assert simulator.get_int("y") == 0

    def test_analyses(self):
        db = DesignDatabase()
        counter = db.compile(PARAM_COUNTER)
        assert counter.has_sequential_processes
        assert counter.clock == "clk"
        assert counter.reset == "rst"
        assert not counter.reset_active_low
        latchy = db.compile(LATCHY)
        assert latchy.has_latch_risk
        assert not latchy.has_sequential_processes
        inv = db.compile(INV)
        assert not inv.has_latch_risk
        assert inv.input_widths() == {"a": 1}

    def test_undef_sources(self):
        source = "module u(input a, output y); wire dangling; assign y = a; endmodule"
        compiled = DesignDatabase().compile(source)
        assert compiled.undef_sources == frozenset({"dangling"})

    def test_divergent_overrides_bypass_template(self):
        db = DesignDatabase()
        compiled = db.compile(PARAM_COUNTER)
        simulator = ModuleSimulator(compiled, parameter_overrides={"WIDTH": 2})
        assert simulator.design.store.widths["count"] == 2
        # The cached artifact keeps its own parameters.
        assert compiled.parameters["WIDTH"] == 4

    def test_coerce_compiled_variants(self):
        db = DesignDatabase()
        from_source = coerce_compiled(INV, database=db)
        assert from_source is coerce_compiled(from_source)
        module = parse_module(INV)
        from_ast = coerce_compiled(module)
        assert isinstance(from_ast, CompiledDesign)
        assert from_ast.name == "inv"
        overridden = coerce_compiled(db.compile(PARAM_COUNTER), parameter_overrides={"WIDTH": 7})
        assert overridden.parameters["WIDTH"] == 7


class TestSyntaxCheckerMemo:
    def test_check_results_memoised(self):
        db = DesignDatabase()
        checker = SyntaxChecker(database=db)
        first = checker.check(INV)
        second = checker.check(INV)
        assert first is second
        assert first.ok
        assert db.stats.check_hits == 1

    def test_failed_checks_memoised(self):
        db = DesignDatabase()
        checker = SyntaxChecker(database=db)
        broken = "module broken(input a, output y); assign y = b; endmodule"
        first = checker.check(broken)
        second = checker.check(broken)
        assert first is second
        assert not first.ok
        assert db.stats.check_hits == 1

    def test_checker_and_simulator_share_parse(self):
        db = DesignDatabase()
        checker = SyntaxChecker(database=db)
        checker.check(INV)
        db.compile(INV)
        # compile() reused the parse the checker populated.
        assert db.stats.parse_hits == 1


# --------------------------------------------------------------------------- property test
def _random_combinational_source(rng: random.Random, index: int) -> tuple[str, list[str]]:
    """A small random combinational module over 1-bit inputs."""
    num_inputs = rng.randint(2, 4)
    inputs = [f"i{j}" for j in range(num_inputs)]

    def expr(depth: int) -> str:
        if depth <= 0 or rng.random() < 0.3:
            return rng.choice(inputs + ["1'b0", "1'b1"])
        op = rng.choice(["&", "|", "^"])
        left, right = expr(depth - 1), expr(depth - 1)
        if rng.random() < 0.3:
            return f"(~({left} {op} {right}))"
        return f"({left} {op} {right})"

    ports = ", ".join(f"input {name}" for name in inputs)
    return (
        f"module rand{index}({ports}, output y0, output y1);\n"
        f"    assign y0 = {expr(3)};\n"
        f"    assign y1 = {expr(2)};\n"
        "endmodule\n"
    ), inputs


@pytest.mark.parametrize("seed", range(8))
def test_cached_and_cold_agree_on_random_roundtripped_modules(seed):
    """Property: cached compile (twice, writer round-tripped) == cold elaborate.

    Each random module is written out, re-parsed and compiled through a
    database twice (the second compile is a guaranteed cache hit); a cold
    simulator built straight from ``elaborate_module`` on a fresh parse is the
    oracle.  Every input assignment must produce identical outputs.
    """
    rng = random.Random(seed)
    db = DesignDatabase()
    for index in range(4):
        source, inputs = _random_combinational_source(rng, index)
        roundtripped = write_module(parse_module(source))
        db.compile(roundtripped)  # prime
        cached = db.compile(roundtripped)  # hit
        assert db.stats.hits >= 1
        warm_sim = ModuleSimulator(cached)
        cold_sim = ModuleSimulator(parse_module(roundtripped))
        warm_batch = BatchSimulator(cached, lanes=1 << len(inputs))
        lanes = {
            name: [(row >> bit) & 1 for row in range(1 << len(inputs))]
            for bit, name in enumerate(inputs)
        }
        warm_batch.apply_inputs(lanes)
        for row in range(1 << len(inputs)):
            assignment = {name: (row >> bit) & 1 for bit, name in enumerate(inputs)}
            warm_sim.apply_inputs(dict(assignment))
            cold_sim.apply_inputs(dict(assignment))
            for output in ("y0", "y1"):
                assert warm_sim.get(output) == cold_sim.get(output), (
                    f"cached scalar diverged on {assignment} (seed {seed}, module {index})"
                )
                assert warm_batch.get_lane(output, row) == cold_sim.get(output), (
                    f"cached batch diverged on {assignment} (seed {seed}, module {index})"
                )


class TestDefaultDatabase:
    def test_from_source_rides_default_database(self):
        previous = set_default_database(DesignDatabase())
        try:
            db = get_default_database()
            ModuleSimulator.from_source(INV)
            ModuleSimulator.from_source(INV)
            BatchSimulator.from_source(INV, 4)
            assert db.stats.misses == 1
            assert db.stats.hits == 2
        finally:
            set_default_database(previous)
