"""Tests for the expression evaluator."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.verilog.errors import SimulationError
from repro.verilog.parser import parse_module
from repro.verilog.simulator.eval import EvalContext, ExpressionEvaluator
from repro.verilog.simulator.values import LogicVector
from repro.verilog import ast_nodes as ast


def _evaluate(expression_text: str, signals: dict[str, LogicVector] | None = None) -> LogicVector:
    """Parse an expression through a throwaway module and evaluate it."""
    signals = signals or {}
    declarations = "\n".join(
        f"    input [{value.width - 1}:0] {name}," if value.width > 1 else f"    input {name},"
        for name, value in signals.items()
    )
    source = f"module t(\n{declarations}\n    output [31:0] y\n);\nassign y = {expression_text};\nendmodule"
    module = parse_module(source)
    assign = module.find_items(ast.ContinuousAssign)[0]
    evaluator = ExpressionEvaluator(EvalContext(signals=dict(signals)))
    return evaluator.evaluate(assign.value)


def _signals(**values: tuple[int, int]) -> dict[str, LogicVector]:
    return {name: LogicVector.from_int(value, width) for name, (value, width) in values.items()}


class TestArithmetic:
    def test_addition(self):
        result = _evaluate("a + b", _signals(a=(200, 8), b=(100, 8)))
        assert result.to_int() == 300 & 0xFF or result.to_int() == 300  # width >= 8

    def test_subtraction_keeps_borrow_headroom(self):
        result = _evaluate("a - b", _signals(a=(0, 8), b=(1, 8)))
        # The expression keeps one bit of headroom; assignment truncation restores
        # the usual 8-bit wrap-around (checked in the simulator tests).
        assert result.width == 9
        assert result.to_int() & 0xFF == 0xFF

    def test_multiplication(self):
        assert _evaluate("a * b", _signals(a=(7, 8), b=(6, 8))).to_int() == 42

    def test_division_and_modulo(self):
        assert _evaluate("a / b", _signals(a=(42, 8), b=(5, 8))).to_int() == 8
        assert _evaluate("a % b", _signals(a=(42, 8), b=(5, 8))).to_int() == 2

    def test_division_by_zero_is_x(self):
        assert _evaluate("a / b", _signals(a=(42, 8), b=(0, 8))).has_unknown

    def test_power(self):
        assert _evaluate("a ** 2", _signals(a=(5, 8))).to_int() == 25


class TestBitwiseAndLogical:
    def test_bitwise_ops(self):
        signals = _signals(a=(0b1100, 4), b=(0b1010, 4))
        assert _evaluate("a & b", signals).to_int() == 0b1000
        assert _evaluate("a | b", signals).to_int() == 0b1110
        assert _evaluate("a ^ b", signals).to_int() == 0b0110

    def test_bitwise_not(self):
        assert _evaluate("~a", _signals(a=(0b1010, 4))).slice(3, 0).to_int() == 0b0101

    def test_logical_ops(self):
        signals = _signals(a=(3, 4), b=(0, 4))
        assert _evaluate("a && b", signals).to_int() == 0
        assert _evaluate("a || b", signals).to_int() == 1
        assert _evaluate("!b", signals).to_int() == 1

    def test_logical_with_x_short_circuit(self):
        signals = {"a": LogicVector.from_int(0, 1), "b": LogicVector.unknown(1)}
        assert _evaluate("a && b", signals).to_int() == 0
        signals = {"a": LogicVector.from_int(1, 1), "b": LogicVector.unknown(1)}
        assert _evaluate("a || b", signals).to_int() == 1

    def test_reduction_operators(self):
        signals = _signals(a=(0b1111, 4), b=(0b1010, 4))
        assert _evaluate("&a", signals).to_int() == 1
        assert _evaluate("&b", signals).to_int() == 0
        assert _evaluate("|b", signals).to_int() == 1
        assert _evaluate("^b", signals).to_int() == 0
        assert _evaluate("~^b", signals).to_int() == 1

    def test_bitwise_with_x_propagation(self):
        signals = {"a": LogicVector.from_string("1x"), "b": LogicVector.from_int(0b01, 2)}
        result = _evaluate("a & b", signals)
        assert result.bit(1) == "0" or result.bit(1) == "x"  # x & 0 = 0
        # 1 & x should be x; x & 0 is 0
        result_or = _evaluate("a | b", signals)
        assert result_or.bit(0) == "1"


class TestComparisons:
    def test_equality(self):
        signals = _signals(a=(5, 4), b=(5, 4), c=(6, 4))
        assert _evaluate("a == b", signals).to_int() == 1
        assert _evaluate("a == c", signals).to_int() == 0
        assert _evaluate("a != c", signals).to_int() == 1

    def test_relational(self):
        signals = _signals(a=(5, 4), b=(9, 4))
        assert _evaluate("a < b", signals).to_int() == 1
        assert _evaluate("a >= b", signals).to_int() == 0

    def test_comparison_with_x_is_x(self):
        signals = {"a": LogicVector.unknown(4), "b": LogicVector.from_int(3, 4)}
        assert _evaluate("a == b", signals).has_unknown

    def test_case_equality_with_x(self):
        signals = {"a": LogicVector.unknown(4), "b": LogicVector.unknown(4)}
        assert _evaluate("a === b", signals).to_int() == 1
        assert _evaluate("a !== b", signals).to_int() == 0


class TestShiftsSelectsConcat:
    def test_shifts(self):
        signals = _signals(a=(0b0110, 4))
        assert _evaluate("a << 1", signals).to_int() == 0b1100
        assert _evaluate("a >> 2", signals).to_int() == 0b0001

    def test_arithmetic_right_shift(self):
        signals = _signals(a=(0b1000, 4))
        assert _evaluate("a >>> 1", signals).slice(3, 0).to_int() == 0b1100

    def test_ternary(self):
        signals = _signals(sel=(1, 1), a=(3, 4), b=(9, 4))
        assert _evaluate("sel ? a : b", signals).to_int() == 3

    def test_ternary_with_x_condition_merges(self):
        signals = {"sel": LogicVector.unknown(1), "a": LogicVector.from_int(5, 4), "b": LogicVector.from_int(5, 4)}
        assert _evaluate("sel ? a : b", signals).to_int() == 5

    def test_concat_and_replication(self):
        signals = _signals(a=(0b10, 2), b=(0b1, 1))
        assert _evaluate("{a, b}", signals).to_int() == 0b101
        assert _evaluate("{3{b}}", signals).to_int() == 0b111

    def test_bit_and_part_select(self):
        signals = _signals(a=(0b10110010, 8))
        assert _evaluate("a[7]", signals).to_int() == 1
        assert _evaluate("a[3:0]", signals).to_int() == 0b0010
        assert _evaluate("a[0 +: 4]", signals).to_int() == 0b0010

    def test_system_functions(self):
        signals = _signals(a=(12, 8))
        assert _evaluate("$signed(a)", signals).to_int() == 12
        assert _evaluate("$clog2(a)", signals).to_int() == 4


class TestContextAndErrors:
    def test_parameter_lookup(self):
        evaluator = ExpressionEvaluator(EvalContext(parameters={"WIDTH": 8}))
        assert evaluator.evaluate(ast.Identifier("WIDTH")).to_int() == 8

    def test_unknown_identifier_raises(self):
        evaluator = ExpressionEvaluator(EvalContext())
        with pytest.raises(SimulationError):
            evaluator.evaluate(ast.Identifier("nope"))

    def test_constant_evaluation(self):
        evaluator = ExpressionEvaluator(EvalContext(parameters={"W": 4}))
        expression = ast.BinaryOp(op="-", left=ast.Identifier("W"), right=ast.Number(value=1))
        assert evaluator.evaluate_constant(expression) == 3

    def test_constant_with_x_raises(self):
        evaluator = ExpressionEvaluator(EvalContext(signals={"a": LogicVector.unknown(4)}))
        with pytest.raises(SimulationError):
            evaluator.evaluate_constant(ast.Identifier("a"))


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
def test_addition_matches_python(a, b):
    result = _evaluate("a + b", _signals(a=(a, 8), b=(b, 8)))
    assert result.to_int() & 0x1FF == (a + b) & 0x1FF


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
def test_bitwise_matches_python(a, b):
    signals = _signals(a=(a, 8), b=(b, 8))
    assert _evaluate("a & b", signals).to_int() == a & b
    assert _evaluate("a | b", signals).to_int() == a | b
    assert _evaluate("a ^ b", signals).to_int() == a ^ b


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
def test_comparisons_match_python(a, b):
    signals = _signals(a=(a, 8), b=(b, 8))
    assert _evaluate("a < b", signals).to_int() == int(a < b)
    assert _evaluate("a == b", signals).to_int() == int(a == b)
