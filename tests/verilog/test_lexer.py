"""Tests for the Verilog lexer."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.verilog.errors import LexerError
from repro.verilog.lexer import Lexer, tokenize
from repro.verilog.tokens import TokenKind


class TestBasicTokens:
    def test_keywords_recognised(self):
        tokens = tokenize("module endmodule input output wire reg always assign")
        kinds = {token.text: token.kind for token in tokens[:-1]}
        assert all(kind is TokenKind.KEYWORD for kind in kinds.values())

    def test_identifier_vs_keyword(self):
        tokens = tokenize("module my_module")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENTIFIER
        assert tokens[1].text == "my_module"

    def test_identifier_with_dollar_and_digits(self):
        tokens = tokenize("sig_1$x")
        assert tokens[0].kind is TokenKind.IDENTIFIER
        assert tokens[0].text == "sig_1$x"

    def test_eof_token_terminates_stream(self):
        tokens = tokenize("wire w;")
        assert tokens[-1].kind is TokenKind.EOF

    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_system_identifier(self):
        tokens = tokenize("$display")
        assert tokens[0].kind is TokenKind.SYSTEM_IDENTIFIER
        assert tokens[0].text == "$display"

    def test_escaped_identifier(self):
        tokens = tokenize("\\weird+name rest")
        assert tokens[0].kind is TokenKind.IDENTIFIER
        assert tokens[0].text == "weird+name"
        assert tokens[1].text == "rest"


class TestNumbers:
    @pytest.mark.parametrize(
        "literal",
        ["42", "4'b1010", "8'hFF", "12'o777", "16'd1234", "4'sb1010", "3'b1x0", "8'hz"],
    )
    def test_number_forms(self, literal):
        tokens = tokenize(literal)
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].text == literal

    def test_underscore_in_number(self):
        tokens = tokenize("16'b1010_1010_1111_0000")
        assert tokens[0].kind is TokenKind.NUMBER

    def test_real_literal(self):
        tokens = tokenize("10.5")
        assert tokens[0].kind is TokenKind.NUMBER

    def test_invalid_base_raises(self):
        with pytest.raises(LexerError):
            tokenize("4'q1010")

    def test_missing_digits_raises(self):
        with pytest.raises(LexerError):
            tokenize("4'b;")


class TestOperatorsAndComments:
    @pytest.mark.parametrize(
        "operator",
        ["<<<", ">>>", "===", "!==", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "~&", "~|", "~^", "+:", "-:"],
    )
    def test_multi_char_operators(self, operator):
        tokens = tokenize(f"a {operator} b")
        assert any(token.kind is TokenKind.OPERATOR and token.text == operator for token in tokens)

    def test_line_comment_is_skipped(self):
        tokens = tokenize("wire a; // this is a comment\nwire b;")
        texts = [token.text for token in tokens]
        assert "comment" not in " ".join(texts)
        assert texts.count("wire") == 2

    def test_block_comment_is_skipped(self):
        tokens = tokenize("wire /* hidden */ a;")
        assert [t.text for t in tokens[:-1]] == ["wire", "a", ";"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("wire a; /* unterminated")

    def test_compiler_directive_skipped(self):
        tokens = tokenize("`timescale 1ns/1ps\nmodule m; endmodule")
        assert tokens[0].is_keyword("module")

    def test_string_literal(self):
        tokens = tokenize('$display("hello world");')
        strings = [t for t in tokens if t.kind is TokenKind.STRING]
        assert len(strings) == 1
        assert strings[0].text == "hello world"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize('"oops')

    def test_unexpected_character_raises(self):
        with pytest.raises(LexerError):
            tokenize("wire a §;")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("module m;\n  wire a;\nendmodule")
        wire_token = next(token for token in tokens if token.text == "wire")
        assert wire_token.line == 2
        assert wire_token.column == 3

    def test_token_helpers(self):
        tokens = tokenize("module (")
        assert tokens[0].is_keyword("module")
        assert not tokens[0].is_keyword("endmodule")
        assert tokens[1].is_punct("(")


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=1, max_value=32))
def test_lexing_random_sized_literals(value, width):
    """Any sized binary literal we can print must lex as a single number token."""
    literal = f"{width}'b{format(value & ((1 << width) - 1), 'b')}"
    tokens = tokenize(literal)
    assert tokens[0].kind is TokenKind.NUMBER
    assert len(tokens) == 2  # number + EOF


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12))
def test_lexing_random_identifiers(name):
    tokens = Lexer(name).tokenize()
    assert tokens[0].text == name
    assert tokens[0].kind in (TokenKind.IDENTIFIER, TokenKind.KEYWORD)
