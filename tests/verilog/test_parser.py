"""Tests for the Verilog parser and AST construction."""

from __future__ import annotations

import pytest

from repro.verilog import ast_nodes as ast
from repro.verilog.errors import ParseError
from repro.verilog.parser import parse_module, parse_source


class TestModuleParsing:
    def test_empty_module(self):
        design = parse_source("module empty(); endmodule")
        assert len(design.modules) == 1
        assert design.modules[0].name == "empty"
        assert design.modules[0].ports == []

    def test_module_without_port_list(self):
        module = parse_module("module m; wire w; endmodule")
        assert module.name == "m"

    def test_ansi_ports(self, counter_source):
        module = parse_module(counter_source)
        assert module.port_names() == ["clk", "rst", "en", "count"]
        count = module.ports[-1]
        assert count.direction is ast.PortDirection.OUTPUT
        assert count.net_type is ast.NetType.REG
        assert count.range is not None

    def test_module_parameters(self, counter_source):
        module = parse_module(counter_source)
        assert "WIDTH" in module.parameters
        assert isinstance(module.parameters["WIDTH"], ast.Number)
        assert module.parameters["WIDTH"].value == 4

    def test_non_ansi_ports_merge_direction(self):
        source = """
        module nonansi(a, b, y);
            input a;
            input b;
            output y;
            assign y = a & b;
        endmodule
        """
        module = parse_module(source)
        directions = {port.name: port.direction for port in module.ports}
        assert directions == {
            "a": ast.PortDirection.INPUT,
            "b": ast.PortDirection.INPUT,
            "y": ast.PortDirection.OUTPUT,
        }

    def test_multiple_modules(self):
        design = parse_source("module a(); endmodule\nmodule b(); endmodule")
        assert [m.name for m in design.modules] == ["a", "b"]
        assert design.find_module("b") is not None
        assert design.find_module("missing") is None

    def test_parse_module_by_name(self):
        source = "module a(); endmodule module b(); endmodule"
        assert parse_module(source, "b").name == "b"

    def test_missing_module_raises(self):
        with pytest.raises(ParseError):
            parse_module("module a(); endmodule", "zzz")

    def test_no_module_raises(self):
        with pytest.raises(ParseError):
            parse_module("   ")

    def test_garbage_raises(self, broken_source):
        with pytest.raises(ParseError):
            parse_source(broken_source)

    def test_unclosed_module_raises(self):
        with pytest.raises(ParseError):
            parse_source("module m(); wire a;")


class TestModuleItems:
    def test_net_declarations(self):
        module = parse_module("module m(); wire [7:0] a, b; reg c = 1'b0; integer i; endmodule")
        declarations = module.find_items(ast.NetDeclaration)
        assert len(declarations) == 3
        assert declarations[0].names == ["a", "b"]
        assert declarations[1].initial_values["c"].value == 0
        assert declarations[2].net_type is ast.NetType.INTEGER

    def test_localparam_and_parameter(self):
        module = parse_module(
            "module m(); parameter W = 8; localparam IDLE = 2'd0, RUN = 2'd1; endmodule"
        )
        declarations = module.find_items(ast.ParameterDeclaration)
        assert declarations[0].local is False
        assert declarations[1].local is True
        assert set(declarations[1].names) == {"IDLE", "RUN"}

    def test_continuous_assign(self, adder_source):
        module = parse_module(adder_source)
        assigns = module.find_items(ast.ContinuousAssign)
        assert len(assigns) == 1
        assert isinstance(assigns[0].target, ast.Concat)
        assert isinstance(assigns[0].value, ast.BinaryOp)

    def test_always_block_sensitivity(self, fsm_source):
        module = parse_module(fsm_source)
        always_blocks = module.find_items(ast.AlwaysBlock)
        assert len(always_blocks) == 3
        first = always_blocks[0]
        assert first.sensitivity[0].edge is ast.EdgeKind.POSEDGE
        assert first.sensitivity[1].edge is ast.EdgeKind.POSEDGE
        star = always_blocks[1]
        assert star.sensitivity[0].edge is ast.EdgeKind.ANY

    def test_always_star_without_parentheses(self):
        module = parse_module("module m(input a, output reg y); always @* y = a; endmodule")
        block = module.find_items(ast.AlwaysBlock)[0]
        assert block.sensitivity[0].edge is ast.EdgeKind.ANY

    def test_level_sensitive_list(self):
        module = parse_module(
            "module m(input a, input b, output reg y); always @(a or b) y = a & b; endmodule"
        )
        block = module.find_items(ast.AlwaysBlock)[0]
        assert len(block.sensitivity) == 2
        assert all(item.edge is ast.EdgeKind.LEVEL for item in block.sensitivity)

    def test_initial_block(self):
        module = parse_module("module m(); reg r; initial r = 1'b1; endmodule")
        assert len(module.find_items(ast.InitialBlock)) == 1

    def test_module_instance_named_connections(self):
        source = """
        module top(input a, input b, output y);
            and_gate u1 (.x(a), .y(b), .z(y));
        endmodule
        """
        module = parse_module(source)
        instance = module.find_items(ast.ModuleInstance)[0]
        assert instance.module_name == "and_gate"
        assert instance.instance_name == "u1"
        assert [c.port for c in instance.connections] == ["x", "y", "z"]

    def test_module_instance_with_parameters(self):
        source = """
        module top(input clk, output [7:0] q);
            counter #(.WIDTH(8)) c0 (clk, q);
        endmodule
        """
        instance = parse_module(source).find_items(ast.ModuleInstance)[0]
        assert instance.parameter_overrides[0].port == "WIDTH"
        assert instance.connections[0].port is None

    def test_function_declaration(self):
        source = """
        module m(input [3:0] a, output [3:0] y);
            function [3:0] double;
                input [3:0] value;
                double = value << 1;
            endfunction
            assign y = double(a);
        endmodule
        """
        module = parse_module(source)
        functions = module.find_items(ast.FunctionDeclaration)
        assert len(functions) == 1
        assert functions[0].name == "double"
        assert len(functions[0].inputs) == 1


class TestStatements:
    def _body(self, text: str) -> ast.Statement:
        module = parse_module(
            f"module m(input a, input b, input clk, output reg y); always @(posedge clk) {text} endmodule"
        )
        return module.find_items(ast.AlwaysBlock)[0].body

    def test_if_else_chain(self):
        body = self._body("if (a) y <= 1'b1; else if (b) y <= 1'b0; else y <= a & b;")
        assert isinstance(body, ast.IfStatement)
        assert isinstance(body.else_branch, ast.IfStatement)

    def test_case_with_default(self):
        body = self._body(
            "case ({a, b}) 2'b00: y <= 1'b0; 2'b01, 2'b10: y <= 1'b1; default: y <= 1'b0; endcase"
        )
        assert isinstance(body, ast.CaseStatement)
        assert len(body.items) == 3
        assert body.items[1].expressions and len(body.items[1].expressions) == 2
        assert body.items[2].is_default

    def test_casez(self):
        body = self._body("casez (a) 1'b?: y <= 1'b1; endcase")
        assert isinstance(body, ast.CaseStatement)
        assert body.kind == "casez"

    def test_for_loop(self):
        source = """
        module m(input clk, output reg [7:0] y);
            integer i;
            always @(posedge clk) begin
                for (i = 0; i < 8; i = i + 1)
                    y[i] <= 1'b0;
            end
        endmodule
        """
        block = parse_module(source).find_items(ast.AlwaysBlock)[0].body
        assert isinstance(block.statements[0], ast.ForLoop)

    def test_named_block(self):
        body = self._body("begin : blk y <= a; end")
        assert isinstance(body, ast.Block)
        assert body.name == "blk"

    def test_nonblocking_vs_blocking(self):
        nonblocking = self._body("y <= a;")
        assert isinstance(nonblocking, ast.NonBlockingAssign)
        module = parse_module("module m(input a, output reg y); always @(*) y = a; endmodule")
        blocking = module.find_items(ast.AlwaysBlock)[0].body
        assert isinstance(blocking, ast.BlockingAssign)

    def test_system_task_statement(self):
        body = self._body('begin $display("value %d", y); end')
        assert isinstance(body.statements[0], ast.SystemTaskCall)

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_module("module m(input a, output y); assign y = a endmodule")


class TestExpressions:
    def _expr(self, text: str) -> ast.Expression:
        module = parse_module(f"module m(input [7:0] a, input [7:0] b, input c, output [7:0] y); assign y = {text}; endmodule")
        return module.find_items(ast.ContinuousAssign)[0].value

    def test_precedence_of_and_over_or(self):
        expression = self._expr("a | b & c")
        assert isinstance(expression, ast.BinaryOp)
        assert expression.op == "|"
        assert isinstance(expression.right, ast.BinaryOp)
        assert expression.right.op == "&"

    def test_precedence_of_mul_over_add(self):
        expression = self._expr("a + b * c")
        assert expression.op == "+"
        assert expression.right.op == "*"

    def test_parentheses_override(self):
        expression = self._expr("(a + b) * c")
        assert expression.op == "*"
        assert expression.left.op == "+"

    def test_ternary(self):
        expression = self._expr("c ? a : b")
        assert isinstance(expression, ast.Ternary)

    def test_unary_reduction(self):
        expression = self._expr("{8{&a}}")
        assert isinstance(expression, ast.Replication)
        assert isinstance(expression.value, ast.UnaryOp)
        assert expression.value.op == "&"

    def test_concat_and_replication(self):
        expression = self._expr("{a[3:0], {4{c}}}")
        assert isinstance(expression, ast.Concat)
        assert isinstance(expression.parts[0], ast.PartSelect)
        assert isinstance(expression.parts[1], ast.Replication)

    def test_bit_select_and_part_select(self):
        assert isinstance(self._expr("a[3]"), ast.BitSelect)
        part = self._expr("a[7:4]")
        assert isinstance(part, ast.PartSelect)
        assert part.mode == ":"

    def test_indexed_part_select(self):
        part = self._expr("a[c +: 4]")
        assert isinstance(part, ast.PartSelect)
        assert part.mode == "+:"

    def test_sized_number_decoding(self):
        number = self._expr("8'hA5")
        assert isinstance(number, ast.Number)
        assert number.value == 0xA5
        assert number.width == 8
        assert number.base == "h"

    def test_number_with_x_bits(self):
        number = self._expr("4'b1x0z")
        assert isinstance(number, ast.Number)
        assert number.xz_mask != 0

    def test_signed_system_call(self):
        expression = self._expr("$signed(a)")
        assert isinstance(expression, ast.FunctionCall)
        assert expression.name == "$signed"

    def test_equality_operators(self):
        assert self._expr("a == b").op == "=="
        assert self._expr("a === b").op == "==="
