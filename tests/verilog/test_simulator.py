"""Tests for the module simulator (elaboration + execution)."""

from __future__ import annotations

import pytest

from repro.verilog.errors import ElaborationError, SimulationError
from repro.verilog.simulator.simulator import ModuleSimulator, simulate_combinational


class TestElaboration:
    def test_ports_and_widths(self, counter_source):
        simulator = ModuleSimulator.from_source(counter_source)
        assert simulator.input_names() == ["clk", "rst", "en"]
        assert simulator.output_names() == ["count"]
        assert simulator.get("count").width == 4

    def test_parameter_override_changes_width(self, counter_source):
        simulator = ModuleSimulator.from_source(counter_source, parameter_overrides={"WIDTH": 8})
        assert simulator.get("count").width == 8

    def test_localparam_resolution(self, fsm_source):
        simulator = ModuleSimulator.from_source(fsm_source)
        assert simulator.design.parameters["A"] == 0
        assert simulator.design.parameters["B"] == 1

    def test_uninitialised_regs_are_x(self, counter_source):
        simulator = ModuleSimulator.from_source(counter_source)
        assert simulator.get("count").has_unknown

    def test_net_initialiser_applied(self):
        simulator = ModuleSimulator.from_source(
            "module m(output [3:0] y); wire [3:0] t = 4'd9; assign y = t; endmodule"
        )
        assert simulator.get_int("y") == 9

    def test_initial_block_executes(self):
        simulator = ModuleSimulator.from_source(
            "module m(output [3:0] y); reg [3:0] r; initial r = 4'd5; assign y = r; endmodule"
        )
        assert simulator.get_int("y") == 5

    def test_memory_array_rejected(self):
        source = "module m(input clk, output y); reg [7:0] mem [0:3]; assign y = 1'b0; endmodule"
        with pytest.raises(ElaborationError):
            ModuleSimulator.from_source(source)

    def test_module_instance_rejected(self):
        source = "module m(input a, output y); sub u0 (a, y); endmodule"
        with pytest.raises(ElaborationError):
            ModuleSimulator.from_source(source)

    def test_port_without_direction_rejected(self):
        with pytest.raises(ElaborationError):
            ModuleSimulator.from_source("module m(a); wire a; endmodule")


class TestCombinational:
    def test_and_gate(self):
        source = "module g(input a, input b, output y); assign y = a & b; endmodule"
        results = simulate_combinational(source, [{"a": a, "b": b} for a in (0, 1) for b in (0, 1)])
        values = [result["y"].to_int() for result in results]
        assert values == [0, 0, 0, 1]

    def test_always_star_block(self):
        source = """
        module g(input a, input b, output reg y);
            always @(*) begin
                if (a & b) y = 1'b1;
                else y = 1'b0;
            end
        endmodule
        """
        results = simulate_combinational(source, [{"a": 1, "b": 1}, {"a": 1, "b": 0}])
        assert [r["y"].to_int() for r in results] == [1, 0]

    def test_chained_combinational_settles(self):
        source = """
        module chain(input a, output y);
            wire t1, t2;
            assign t1 = ~a;
            assign t2 = ~t1;
            assign y = ~t2;
        endmodule
        """
        results = simulate_combinational(source, [{"a": 0}, {"a": 1}])
        assert [r["y"].to_int() for r in results] == [1, 0]

    def test_combinational_loop_detected(self):
        source = """
        module loop(input a, output y);
            reg t = 1'b0;
            always @(*) t = ~t;
            assign y = t & a;
        endmodule
        """
        with pytest.raises(SimulationError):
            ModuleSimulator.from_source(source)

    def test_x_feedback_loop_settles_to_x(self):
        # A feedback loop through undefined values settles (conservatively) at x
        # instead of looping forever.
        source = """
        module loop(input a, output y);
            wire t;
            assign t = ~t;
            assign y = t & a;
        endmodule
        """
        simulator = ModuleSimulator.from_source(source)
        simulator.apply_inputs({"a": 1})
        assert simulator.get("y").has_unknown

    def test_case_statement_combinational(self):
        source = """
        module mux(input [1:0] sel, input [3:0] a, input [3:0] b, input [3:0] c, output reg [3:0] y);
            always @(*) begin
                case (sel)
                    2'd0: y = a;
                    2'd1: y = b;
                    default: y = c;
                endcase
            end
        endmodule
        """
        results = simulate_combinational(
            source,
            [{"sel": 0, "a": 1, "b": 2, "c": 3}, {"sel": 1, "a": 1, "b": 2, "c": 3}, {"sel": 3, "a": 1, "b": 2, "c": 3}],
        )
        assert [r["y"].to_int() for r in results] == [1, 2, 3]

    def test_adder_carry(self, adder_source):
        simulator = ModuleSimulator.from_source(adder_source)
        simulator.apply_inputs({"a": 9, "b": 8})
        assert simulator.get_int("sum") == 1
        assert simulator.get_int("carry_out") == 1

    def test_function_call_in_assign(self):
        source = """
        module f(input [3:0] a, output [3:0] y);
            function [3:0] double;
                input [3:0] value;
                double = value << 1;
            endfunction
            assign y = double(a);
        endmodule
        """
        simulator = ModuleSimulator.from_source(source)
        simulator.apply_inputs({"a": 5})
        assert simulator.get_int("y") == 10


class TestSequential:
    def test_counter_counts(self, counter_source):
        simulator = ModuleSimulator.from_source(counter_source)
        simulator.apply_inputs({"clk": 0, "rst": 1, "en": 0})
        simulator.clock_cycle()
        assert simulator.get_int("count") == 0
        simulator.apply_inputs({"rst": 0, "en": 1})
        for _ in range(5):
            simulator.clock_cycle()
        assert simulator.get_int("count") == 5

    def test_counter_enable_gates_updates(self, counter_source):
        simulator = ModuleSimulator.from_source(counter_source)
        simulator.apply_inputs({"clk": 0, "rst": 1, "en": 0})
        simulator.clock_cycle()
        simulator.apply_inputs({"rst": 0, "en": 0})
        for _ in range(3):
            simulator.clock_cycle()
        assert simulator.get_int("count") == 0

    def test_counter_wraps(self, counter_source):
        simulator = ModuleSimulator.from_source(counter_source)
        simulator.apply_inputs({"clk": 0, "rst": 1, "en": 0})
        simulator.clock_cycle()
        simulator.apply_inputs({"rst": 0, "en": 1})
        for _ in range(17):
            simulator.clock_cycle()
        assert simulator.get_int("count") == 1

    def test_async_reset_applies_without_clock(self, fsm_source):
        simulator = ModuleSimulator.from_source(fsm_source)
        simulator.apply_inputs({"clk": 0, "x": 0, "rst": 0})
        simulator.apply_inputs({"rst": 1})  # asynchronous reset edge, no clock edge
        assert simulator.get_int("out") == 0
        simulator.apply_inputs({"rst": 0})

    def test_fsm_trace_matches_reference(self, fsm_source):
        simulator = ModuleSimulator.from_source(fsm_source)
        simulator.apply_inputs({"clk": 0, "rst": 1, "x": 0})
        simulator.apply_inputs({"rst": 0})
        outputs = []
        for x in [0, 1, 0, 0, 1, 1]:
            simulator.apply_inputs({"x": x})
            simulator.apply_inputs({"clk": 1})
            simulator.apply_inputs({"clk": 0})
            outputs.append(simulator.get_int("out"))
        assert outputs == [1, 1, 0, 1, 1, 1]

    def test_nonblocking_swap_semantics(self):
        source = """
        module swap(input clk, input rst, output reg a, output reg b);
            always @(posedge clk) begin
                if (rst) begin
                    a <= 1'b0;
                    b <= 1'b1;
                end else begin
                    a <= b;
                    b <= a;
                end
            end
        endmodule
        """
        simulator = ModuleSimulator.from_source(source)
        simulator.apply_inputs({"clk": 0, "rst": 1})
        simulator.clock_cycle()
        simulator.apply_inputs({"rst": 0})
        simulator.clock_cycle()
        # Non-blocking semantics: values swap rather than both becoming equal.
        assert simulator.get_int("a") == 1
        assert simulator.get_int("b") == 0

    def test_negedge_clocking(self):
        source = """
        module d(input clk, input din, output reg q);
            always @(negedge clk) q <= din;
        endmodule
        """
        simulator = ModuleSimulator.from_source(source)
        simulator.apply_inputs({"clk": 1, "din": 1})
        simulator.apply_inputs({"din": 1})
        simulator.apply_inputs({"clk": 0})  # falling edge captures din
        assert simulator.get_int("q") == 1

    def test_shift_register(self):
        source = """
        module sr(input clk, input rst, input din, output reg [3:0] q);
            always @(posedge clk) begin
                if (rst) q <= 4'd0;
                else q <= {q[2:0], din};
            end
        endmodule
        """
        simulator = ModuleSimulator.from_source(source)
        simulator.apply_inputs({"clk": 0, "rst": 1, "din": 0})
        simulator.clock_cycle()
        simulator.apply_inputs({"rst": 0})
        for bit in [1, 0, 1, 1]:
            simulator.clock_cycle(inputs={"din": bit})
        assert simulator.get_int("q") == 0b1011

    def test_pulse_helper(self, counter_source):
        simulator = ModuleSimulator.from_source(counter_source)
        simulator.apply_inputs({"clk": 0, "rst": 0, "en": 1})
        simulator.clock_cycle()  # count becomes x+1 => x, then reset below
        simulator.apply_inputs({"rst": 1})
        simulator.clock_cycle()
        simulator.apply_inputs({"rst": 0})
        assert simulator.get_int("count") == 0

    def test_unknown_input_raises(self, counter_source):
        simulator = ModuleSimulator.from_source(counter_source)
        with pytest.raises(SimulationError):
            simulator.apply_inputs({"nonexistent": 1})

    def test_display_log_captured(self):
        source = """
        module m(input clk, output reg y);
            initial begin
                $display("hello");
                y = 1'b0;
            end
        endmodule
        """
        simulator = ModuleSimulator.from_source(source)
        assert any("hello" in line for line in simulator.display_log)
