"""Tests for the syntax/semantic checker (the compiler verification gate)."""

from __future__ import annotations

from repro.verilog.syntax_checker import SyntaxChecker, check_source, compiles


class TestAcceptedDesigns:
    def test_counter_compiles(self, counter_source):
        result = check_source(counter_source)
        assert result.ok
        assert result.errors == []
        assert result.source_file is not None

    def test_fsm_compiles(self, fsm_source):
        assert compiles(fsm_source)

    def test_adder_compiles(self, adder_source):
        assert compiles(adder_source)

    def test_warning_for_always_without_sensitivity(self):
        result = check_source("module m(output reg y); always y = 1'b0; endmodule")
        assert result.ok
        assert any("sensitivity" in str(w) for w in result.warnings)


class TestRejectedDesigns:
    def test_python_style_code_rejected(self, broken_source):
        result = check_source(broken_source)
        assert not result.ok
        assert result.errors

    def test_empty_source_rejected(self):
        assert not compiles("")

    def test_missing_semicolon_rejected(self):
        assert not compiles("module m(input a, output y); assign y = a endmodule")

    def test_undeclared_identifier_rejected(self):
        result = check_source("module m(input a, output y); assign y = a & ghost; endmodule")
        assert not result.ok
        assert any("ghost" in message for message in result.error_messages)

    def test_procedural_assign_to_wire_rejected(self):
        source = "module m(input a, output y); always @(*) y = a; endmodule"
        result = check_source(source)
        assert not result.ok
        assert any("wire" in message for message in result.error_messages)

    def test_continuous_assign_to_reg_rejected(self):
        source = "module m(input a, output reg y); assign y = a; endmodule"
        result = check_source(source)
        assert not result.ok

    def test_assign_to_input_rejected(self):
        source = "module m(input a, input b, output y); assign a = b; assign y = b; endmodule"
        result = check_source(source)
        assert not result.ok
        assert any("input port" in message for message in result.error_messages)

    def test_duplicate_module_rejected(self):
        source = "module m(); endmodule module m(); endmodule"
        result = check_source(source)
        assert not result.ok

    def test_duplicate_declaration_rejected(self):
        source = "module m(input a, output y); wire t; wire t; assign y = a; endmodule"
        result = check_source(source)
        assert not result.ok

    def test_port_without_direction_rejected(self):
        source = "module m(a, y); assign y = a; endmodule"
        result = check_source(source)
        assert not result.ok

    def test_missing_endmodule_rejected(self, counter_source):
        assert not compiles(counter_source.replace("endmodule", ""))

    def test_error_messages_are_strings(self, broken_source):
        result = check_source(broken_source)
        assert all(isinstance(message, str) for message in result.error_messages)


class TestCorpusLevelBehaviour:
    def test_flawed_corpus_samples_fail_verification(self, small_corpus):
        """Samples flagged as flawed by the corpus generator mostly fail to compile."""
        checker = SyntaxChecker()
        flawed = [sample for sample in small_corpus if sample.is_flawed]
        assert flawed, "corpus should contain flawed samples"
        failures = sum(1 for sample in flawed if not checker.check(sample.code).ok)
        assert failures >= len(flawed) * 0.7

    def test_clean_corpus_samples_compile(self, small_corpus):
        checker = SyntaxChecker()
        clean = [sample for sample in small_corpus if not sample.is_flawed]
        assert clean
        passes = sum(1 for sample in clean if checker.check(sample.code).ok)
        assert passes == len(clean)
