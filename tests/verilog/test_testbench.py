"""Tests for the testbench runner (DUT vs Python golden model)."""

from __future__ import annotations

from repro.verilog.simulator.testbench import CombinationalGolden, ResetSpec, run_functional_check
from repro.verilog.simulator.testbench import TestbenchRunner as Runner


class CounterGoldenLocal:
    """Minimal sequential golden model used by these tests."""

    is_sequential = True

    def __init__(self, width: int = 4):
        self.width = width
        self.value = 0

    def reset(self) -> None:
        self.value = 0

    def step(self, inputs):
        if inputs.get("rst"):
            self.value = 0
        elif inputs.get("en", 1):
            self.value = (self.value + 1) % (1 << self.width)
        return {"count": self.value}

    def eval(self, inputs):
        return {"count": self.value}


class TestCombinationalChecks:
    def test_correct_and_gate_passes(self):
        source = "module g(input a, input b, output y); assign y = a & b; endmodule"
        golden = CombinationalGolden(lambda ins: {"y": ins["a"] & ins["b"]})
        stimulus = [{"a": a, "b": b} for a in (0, 1) for b in (0, 1)]
        result = run_functional_check(source, golden, stimulus)
        assert result.passed
        assert result.total_checks == 4
        assert result.mismatches == []

    def test_wrong_operator_fails(self):
        source = "module g(input a, input b, output y); assign y = a | b; endmodule"
        golden = CombinationalGolden(lambda ins: {"y": ins["a"] & ins["b"]})
        stimulus = [{"a": a, "b": b} for a in (0, 1) for b in (0, 1)]
        result = run_functional_check(source, golden, stimulus)
        assert not result.passed
        assert result.mismatches
        assert "expected" in str(result.mismatches[0])

    def test_non_compiling_code_reports_error(self, broken_source):
        golden = CombinationalGolden(lambda ins: {"y": 0})
        result = run_functional_check(broken_source, golden, [{"a": 0}])
        assert not result.passed
        assert result.error is not None
        assert "simulation error" in result.failure_summary

    def test_missing_output_counts_as_mismatch(self):
        source = "module g(input a, output y); assign y = a; endmodule"
        golden = CombinationalGolden(lambda ins: {"z": ins["a"]})
        result = run_functional_check(source, golden, [{"a": 1}])
        assert not result.passed

    def test_x_output_counts_as_mismatch(self):
        source = "module g(input a, output reg y); always @(*) if (a) y = 1'b1; endmodule"
        golden = CombinationalGolden(lambda ins: {"y": 1 if ins["a"] else 0})
        result = run_functional_check(source, golden, [{"a": 0}, {"a": 1}])
        assert not result.passed  # y is x when a == 0 (missing else branch)

    def test_empty_stimulus_does_not_pass(self):
        source = "module g(input a, output y); assign y = a; endmodule"
        golden = CombinationalGolden(lambda ins: {"y": ins["a"]})
        result = run_functional_check(source, golden, [])
        assert not result.passed
        assert result.total_checks == 0

    def test_check_outputs_subset(self):
        source = "module g(input a, output y, output z); assign y = a; assign z = ~a; endmodule"
        golden = CombinationalGolden(lambda ins: {"y": ins["a"], "z": 1})  # z model is wrong
        result = run_functional_check(source, golden, [{"a": 1}], check_outputs=["y"])
        assert result.passed


class TestSequentialChecks:
    def test_correct_counter_passes(self, counter_source):
        runner = Runner(clock="clk", reset=ResetSpec(signal="rst"))
        stimulus = [{"rst": 0, "en": 1} for _ in range(8)]
        result = runner.run(counter_source, CounterGoldenLocal(), stimulus)
        assert result.passed

    def test_counter_with_wrong_reset_polarity_fails(self, counter_source):
        broken = counter_source.replace("if (rst)", "if (!rst)")
        runner = Runner(clock="clk", reset=ResetSpec(signal="rst"))
        stimulus = [{"rst": 0, "en": 1} for _ in range(8)]
        result = runner.run(broken, CounterGoldenLocal(), stimulus)
        assert not result.passed

    def test_mid_run_reset_checked(self, counter_source):
        runner = Runner(clock="clk", reset=ResetSpec(signal="rst"))
        stimulus = [{"rst": 0, "en": 1}] * 4 + [{"rst": 1, "en": 1}] + [{"rst": 0, "en": 1}] * 3
        result = runner.run(counter_source, CounterGoldenLocal(), stimulus)
        assert result.passed

    def test_fsm_against_golden(self, fsm_source):
        class FSMGolden:
            is_sequential = True

            def __init__(self):
                self.state = 0

            def reset(self):
                self.state = 0

            def step(self, inputs):
                x = inputs.get("x", 0)
                if self.state == 0:
                    self.state = 0 if x else 1
                else:
                    self.state = 1 if x else 0
                return {"out": self.state}

            def eval(self, inputs):
                return {"out": self.state}

        runner = Runner(clock="clk", reset=ResetSpec(signal="rst"))
        stimulus = [{"x": bit, "rst": 0} for bit in [0, 1, 1, 0, 0, 1, 0]]
        result = runner.run(fsm_source, FSMGolden(), stimulus)
        assert result.passed

    def test_mismatch_limit_stops_early(self):
        source = "module g(input a, output y); assign y = ~a; endmodule"
        golden = CombinationalGolden(lambda ins: {"y": ins["a"]})
        runner = Runner(max_mismatches=2)
        result = runner.run(source, golden, [{"a": 0}] * 10)
        assert not result.passed
        assert len(result.mismatches) == 2

    def test_failure_summary_mentions_step(self):
        source = "module g(input a, output y); assign y = ~a; endmodule"
        golden = CombinationalGolden(lambda ins: {"y": ins["a"]})
        result = run_functional_check(source, golden, [{"a": 0}])
        assert "step 0" in result.failure_summary
