"""Tests for the four-state LogicVector type."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.verilog.simulator.values import LogicVector, concat_all


class TestConstruction:
    def test_from_int_masks_to_width(self):
        value = LogicVector.from_int(0x1FF, 8)
        assert value.width == 8
        assert value.to_int() == 0xFF

    def test_from_int_negative_wraps(self):
        value = LogicVector.from_int(-1, 4)
        assert value.to_int() == 0xF

    def test_unknown_and_high_impedance(self):
        assert LogicVector.unknown(4).to_binary_string() == "xxxx"
        assert LogicVector.high_impedance(4).to_binary_string() == "zzzz"

    def test_from_string(self):
        value = LogicVector.from_string("10x0")
        assert value.width == 4
        assert value.bit(3) == "1"
        assert value.bit(1) == "x"

    def test_from_string_with_prefix(self):
        value = LogicVector.from_string("4'b1z01")
        assert value.width == 4
        assert value.bit(2) == "z"

    def test_from_string_invalid_char(self):
        with pytest.raises(ValueError):
            LogicVector.from_string("10a0")

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            LogicVector(width=0, value=0)


class TestQueries:
    def test_to_int_raises_on_x(self):
        with pytest.raises(ValueError):
            LogicVector.unknown(4).to_int()

    def test_to_int_or_default(self):
        assert LogicVector.unknown(4).to_int_or(0) == 0

    def test_signed_interpretation(self):
        assert LogicVector.from_int(0xF, 4).to_signed_int() == -1
        assert LogicVector.from_int(0x7, 4).to_signed_int() == 7

    def test_is_true_three_valued(self):
        assert LogicVector.from_int(2, 4).is_true() is True
        assert LogicVector.from_int(0, 4).is_true() is False
        assert LogicVector.unknown(4).is_true() is None
        # A defined 1 bit dominates even with other x bits.
        mixed = LogicVector(width=2, value=0b01, xz_mask=0b10)
        assert mixed.is_true() is True

    def test_verilog_literal(self):
        assert LogicVector.from_int(5, 4).to_verilog_literal() == "4'b0101"

    def test_bit_out_of_range_is_x(self):
        assert LogicVector.from_int(1, 2).bit(5) == "x"


class TestManipulation:
    def test_resize_truncates_and_extends(self):
        value = LogicVector.from_int(0b1011, 4)
        assert value.resized(2).to_int() == 0b11
        assert value.resized(8).to_int() == 0b1011

    def test_sign_extension(self):
        value = LogicVector.from_int(0b1000, 4)
        assert value.sign_extended(8).to_int() == 0b11111000

    def test_slice(self):
        value = LogicVector.from_int(0b10110010, 8)
        assert value.slice(7, 4).to_int() == 0b1011
        assert value.slice(3, 0).to_int() == 0b0010

    def test_slice_reversed_bounds(self):
        value = LogicVector.from_int(0b1100, 4)
        assert value.slice(0, 3).to_int() == value.slice(3, 0).to_int()

    def test_slice_out_of_range_bits_are_x(self):
        value = LogicVector.from_int(0b11, 2)
        sliced = value.slice(4, 0)
        assert sliced.bit(4) == "x"
        assert sliced.bit(0) == "1"

    def test_replaced(self):
        value = LogicVector.from_int(0, 8)
        replaced = value.replaced(7, 4, LogicVector.from_int(0b1010, 4))
        assert replaced.to_int() == 0b10100000

    def test_concat(self):
        high = LogicVector.from_int(0b10, 2)
        low = LogicVector.from_int(0b01, 2)
        assert high.concat(low).to_int() == 0b1001

    def test_concat_all(self):
        parts = [LogicVector.from_int(1, 1), LogicVector.from_int(0, 1), LogicVector.from_int(3, 2)]
        assert concat_all(parts).to_binary_string() == "1011"

    def test_concat_all_empty_raises(self):
        with pytest.raises(ValueError):
            concat_all([])


# --------------------------------------------------------------------------- property tests
@given(st.integers(min_value=0, max_value=2**16 - 1))
def test_int_roundtrip(value):
    vector = LogicVector.from_int(value, 16)
    assert vector.to_int() == value
    assert LogicVector.from_string(vector.to_binary_string()).to_int() == value


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
def test_concat_matches_arithmetic(high, low):
    vector = LogicVector.from_int(high, 8).concat(LogicVector.from_int(low, 8))
    assert vector.to_int() == (high << 8) | low


@given(
    st.integers(min_value=0, max_value=2**12 - 1),
    st.integers(min_value=0, max_value=11),
    st.integers(min_value=0, max_value=11),
)
def test_slice_matches_bit_arithmetic(value, a, b):
    msb, lsb = max(a, b), min(a, b)
    vector = LogicVector.from_int(value, 12)
    expected = (value >> lsb) & ((1 << (msb - lsb + 1)) - 1)
    assert vector.slice(msb, lsb).to_int() == expected


@given(st.text(alphabet="01xz", min_size=1, max_size=24))
def test_string_roundtrip(bits):
    vector = LogicVector.from_string(bits)
    assert vector.to_binary_string() == bits
