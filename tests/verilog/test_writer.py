"""Tests for the Verilog writer (AST → source) and parse/write round-trips."""

from __future__ import annotations

import pytest

from repro.verilog import ast_nodes as ast
from repro.verilog.parser import parse_module, parse_source
from repro.verilog.writer import VerilogWriter, write_module, write_source


def _roundtrip(source: str) -> ast.Module:
    """Parse → write → parse again and return the re-parsed module."""
    first = parse_module(source)
    emitted = write_module(first)
    return parse_module(emitted)


class TestRoundTrip:
    def test_counter_roundtrip(self, counter_source):
        module = _roundtrip(counter_source)
        assert module.name == "counter"
        assert module.port_names() == ["clk", "rst", "en", "count"]
        assert "WIDTH" in module.parameters

    def test_fsm_roundtrip(self, fsm_source):
        module = _roundtrip(fsm_source)
        assert len(module.find_items(ast.AlwaysBlock)) == 3
        assert len(module.find_items(ast.ParameterDeclaration)) == 2

    def test_adder_roundtrip(self, adder_source):
        module = _roundtrip(adder_source)
        assigns = module.find_items(ast.ContinuousAssign)
        assert len(assigns) == 1

    def test_mux_roundtrip(self, mux_source):
        module = _roundtrip(mux_source)
        assign = module.find_items(ast.ContinuousAssign)[0]
        assert isinstance(assign.value, ast.Ternary)

    def test_instance_roundtrip(self):
        source = """
        module top(input clk, output [7:0] q);
            counter #(.WIDTH(8)) c0 (.clk(clk), .count(q));
        endmodule
        """
        module = _roundtrip(source)
        instance = module.find_items(ast.ModuleInstance)[0]
        assert instance.module_name == "counter"
        assert instance.parameter_overrides[0].port == "WIDTH"

    def test_source_file_roundtrip(self):
        source = "module a(input x, output y); assign y = x; endmodule\nmodule b(); endmodule"
        design = parse_source(source)
        emitted = write_source(design)
        reparsed = parse_source(emitted)
        assert [m.name for m in reparsed.modules] == ["a", "b"]


class TestStatementEmission:
    def test_case_statement_emission(self, fsm_source):
        emitted = write_module(parse_module(fsm_source))
        assert "case (state)" in emitted
        assert "default:" in emitted
        assert "endcase" in emitted

    def test_if_else_indentation(self, counter_source):
        emitted = write_module(parse_module(counter_source))
        assert "if (rst)" in emitted
        assert "else" in emitted

    def test_for_loop_emission(self):
        source = """
        module m(input clk, output reg [7:0] y);
            integer i;
            always @(posedge clk)
                for (i = 0; i < 8; i = i + 1)
                    y[i] <= 1'b0;
        endmodule
        """
        emitted = write_module(parse_module(source))
        assert "for (i = 0; i < 8; i = i + 1)" in emitted
        assert parse_module(emitted).name == "m"

    def test_sensitivity_list_emission(self, fsm_source):
        emitted = write_module(parse_module(fsm_source))
        assert "always @(posedge clk or posedge rst)" in emitted
        assert "always @(*)" in emitted


class TestExpressionEmission:
    def test_number_preserves_original_text(self):
        module = parse_module("module m(output [7:0] y); assign y = 8'hA5; endmodule")
        emitted = write_module(module)
        assert "8'hA5" in emitted

    def test_synthesised_number_formatting(self):
        writer = VerilogWriter()
        text = writer.write_expression(ast.Number(value=10, width=4, base="b"))
        assert text == "4'b1010"

    def test_unsized_number(self):
        writer = VerilogWriter()
        assert writer.write_expression(ast.Number(value=7)) == "7"

    def test_nested_binary_parentheses(self):
        writer = VerilogWriter()
        expression = ast.BinaryOp(
            op="|",
            left=ast.BinaryOp(op="&", left=ast.Identifier("a"), right=ast.Identifier("b")),
            right=ast.Identifier("c"),
        )
        assert writer.write_expression(expression) == "(a & b) | c"

    def test_replication_emission(self):
        writer = VerilogWriter()
        expression = ast.Replication(count=ast.Number(value=4), value=ast.Identifier("bit"))
        assert writer.write_expression(expression) == "{4{bit}}"

    def test_part_select_emission(self):
        writer = VerilogWriter()
        expression = ast.PartSelect(
            target=ast.Identifier("bus"), msb=ast.Number(value=7), lsb=ast.Number(value=4)
        )
        assert writer.write_expression(expression) == "bus[7:4]"

    def test_unsupported_expression_raises(self):
        writer = VerilogWriter()

        class Strange(ast.Expression):
            pass

        with pytest.raises(TypeError):
            writer.write_expression(Strange())
