"""Fuzz round-trip: writer output must re-parse to an equivalent AST.

Random modules are generated from a seeded grammar over the supported subset
(declarations with initialisers, parameters, continuous assigns, combinational
and clocked always blocks, if/case/for statements, the full expression
grammar).  For every module: ``parse(source)`` → ``write`` → ``parse`` must
yield a structurally identical AST (dataclass equality), and the emission must
be a fixed point (``write(parse(write(m))) == write(m)``).

The same generator doubles as the execution-fuzz corpus: every module is also
driven through a *three-way differential* — codegen back end vs batch
interpreter vs the scalar ``ModuleSimulator`` — comparing every output signal
on every lane after every input application (x/z bits included).
"""

from __future__ import annotations

import random

import pytest

from repro.verilog.design import DesignDatabase
from repro.verilog.parser import parse_module
from repro.verilog.simulator import BatchSimulator, ModuleSimulator
from repro.verilog.writer import write_module


class _SourceGen:
    """Seeded random Verilog source generator (valid by construction)."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.signals: dict[str, int] = {}

    # ------------------------------------------------------------------ expressions
    def expr(self, depth: int) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            return self.leaf()
        choice = rng.random()
        if choice < 0.3:
            op = rng.choice(["&", "|", "^", "+", "-", "&&", "||"])
            return f"({self.expr(depth - 1)} {op} {self.expr(depth - 1)})"
        if choice < 0.45:
            op = rng.choice(["==", "!=", "<", ">", "<=", ">=", "===", "!=="])
            return f"({self.expr(depth - 1)} {op} {self.expr(depth - 1)})"
        if choice < 0.55:
            op = rng.choice(["~", "!", "&", "|", "^", "~&", "~|"])
            return f"({op}{self.leaf()})"
        if choice < 0.65:
            return f"({self.expr(depth - 1)} ? {self.expr(depth - 1)} : {self.expr(depth - 1)})"
        if choice < 0.75:
            return f"{{{self.expr(depth - 1)}, {self.expr(depth - 1)}}}"
        if choice < 0.8:
            count = rng.randint(2, 4)
            return f"{{{count}{{{self.leaf()}}}}}"
        if choice < 0.9:
            op = rng.choice(["<<", ">>", "<<<", ">>>"])
            return f"({self.expr(depth - 1)} {op} {self.rng.randint(0, 3)})"
        return self.leaf()

    def leaf(self) -> str:
        rng = self.rng
        if self.signals and rng.random() < 0.65:
            name = rng.choice(list(self.signals))
            width = self.signals[name]
            roll = rng.random()
            if width > 1 and roll < 0.2:
                index = rng.randint(0, width - 1)
                return f"{name}[{index}]"
            if width > 1 and roll < 0.35:
                msb = rng.randint(0, width - 1)
                lsb = rng.randint(0, msb)
                return f"{name}[{msb}:{lsb}]"
            if width > 2 and roll < 0.4:
                base = rng.randint(0, width - 2)
                return f"{name}[{base} +: 2]"
            return name
        width = rng.randint(1, 8)
        value = rng.randrange(1 << width)
        base = rng.choice(["d", "b", "h", ""])
        if not base:
            return str(value)
        digits = {"d": str(value), "b": format(value, "b"), "h": format(value, "x")}[base]
        return f"{width}'{base}{digits}"

    # ------------------------------------------------------------------ statements
    def statement(self, target: str, depth: int, nonblocking: bool) -> str:
        rng = self.rng
        assign = "<=" if nonblocking else "="
        if depth <= 0 or rng.random() < 0.4:
            return f"{target} {assign} {self.expr(2)};"
        choice = rng.random()
        if choice < 0.4:
            return (
                f"if ({self.expr(2)})\n"
                f"    {self.statement(target, depth - 1, nonblocking)}\n"
                "else\n"
                f"    {self.statement(target, depth - 1, nonblocking)}"
            )
        if choice < 0.7:
            kind = rng.choice(["case", "casez", "casex"])
            subject = rng.choice(list(self.signals))
            arms = "\n".join(
                f"    {self.signals[subject]}'d{value}: {self.statement(target, 0, nonblocking)}"
                for value in range(min(3, 1 << self.signals[subject]))
            )
            return (
                f"{kind} ({subject})\n{arms}\n"
                f"    default: {self.statement(target, 0, nonblocking)}\n"
                "endcase"
            )
        return (
            "begin\n"
            f"    {self.statement(target, depth - 1, nonblocking)}\n"
            f"    {self.statement(target, depth - 1, nonblocking)}\n"
            "end"
        )

    # ------------------------------------------------------------------ modules
    def module(self) -> str:
        rng = self.rng
        self.signals = {}
        ports = ["input clk", "input rst"]
        self.signals["rst"] = 1
        for index in range(rng.randint(1, 3)):
            width = rng.choice([1, 2, 4, 8])
            name = f"in{index}"
            self.signals[name] = width
            ports.append(f"input [{width - 1}:0] {name}" if width > 1 else f"input {name}")
        items: list[str] = []
        if rng.random() < 0.5:
            items.append(f"localparam LIMIT = {rng.randint(1, 15)};")
        for index in range(rng.randint(0, 2)):
            width = rng.choice([2, 4, 8])
            name = f"w{index}"
            init = f" = {width}'d{rng.randrange(1 << width)}" if rng.random() < 0.3 else ""
            items.append(f"reg [{width - 1}:0] {name}{init};")
            self.signals[name] = width
        outputs: list[str] = []
        for index in range(rng.randint(1, 2)):
            width = rng.choice([1, 4, 8])
            name = f"out{index}"
            range_text = f"[{width - 1}:0] " if width > 1 else ""
            if rng.random() < 0.5:
                ports.append(f"output {range_text}{name}")
                items.append(f"assign {name} = {self.expr(3)};")
            else:
                ports.append(f"output reg {range_text}{name}")
                if rng.random() < 0.5:
                    items.append(
                        "always @(*)\n    " + self.statement(name, 2, nonblocking=False)
                    )
                else:
                    sensitivity = rng.choice(["posedge clk", "posedge clk or posedge rst"])
                    items.append(
                        f"always @({sensitivity})\n    "
                        + self.statement(name, 2, nonblocking=True)
                    )
            outputs.append(name)
            self.signals[name] = width
        header = "module fuzzmod (\n    " + ",\n    ".join(ports) + "\n);\n"
        return header + "\n".join("    " + item.replace("\n", "\n    ") for item in items) + "\nendmodule\n"


@pytest.mark.parametrize("seed", range(40))
def test_write_then_parse_is_equivalent(seed):
    source = _SourceGen(seed).module()
    first = parse_module(source)
    emitted = write_module(first)
    second = parse_module(emitted)
    assert second == first, f"round-trip changed the AST for seed {seed}:\n{emitted}"


@pytest.mark.parametrize("seed", range(40))
def test_emission_is_a_fixed_point(seed):
    source = _SourceGen(seed).module()
    first_text = write_module(parse_module(source))
    second_text = write_module(parse_module(first_text))
    assert second_text == first_text


_FUZZ_LANES = 8
_FUZZ_STEPS = 4


def _snapshot(batch: BatchSimulator, scalars, outputs: list[str]) -> None:
    """Assert one engine's outputs equal the scalar oracle on every lane."""
    for name in outputs:
        vector = batch.get(name)
        for lane, scalar in enumerate(scalars):
            assert (
                vector.lane(lane).to_verilog_literal()
                == scalar.get(name).to_verilog_literal()
            ), f"output {name} lane {lane}"


@pytest.mark.parametrize("seed", range(20))
def test_three_way_differential_execution(seed):
    """codegen == batch interpreter == scalar simulator, every output, every lane.

    Generated modules that the lowering rejects (e.g. uninitialised regs
    surfacing as undef sources) still run here — ``auto`` then *is* the
    interpreter, and the differential degenerates to batch-vs-scalar, which is
    exactly the fallback contract being checked.
    """
    source = _SourceGen(seed).module()
    compiled = DesignDatabase().compile(source)
    widths = compiled.input_widths()
    data_inputs = sorted(set(widths) - {"clk", "rst"})
    outputs = [port.name for port in compiled.template.output_ports()]
    rng = random.Random(seed * 7919 + 1)

    fast = BatchSimulator(compiled, lanes=_FUZZ_LANES, backend="auto")
    slow = BatchSimulator(compiled, lanes=_FUZZ_LANES, backend="interpret")
    scalars = [ModuleSimulator(compiled) for _ in range(_FUZZ_LANES)]

    for step in range(_FUZZ_STEPS):
        data = {
            name: [rng.randrange(1 << widths[name]) for _ in range(_FUZZ_LANES)]
            for name in data_inputs
        }
        rst = 1 if step == 0 else 0
        for phase in (
            {**data, "rst": [rst] * _FUZZ_LANES, "clk": [0] * _FUZZ_LANES},
            {"clk": [1] * _FUZZ_LANES},
            {"clk": [0] * _FUZZ_LANES},
        ):
            fast.apply_inputs({name: list(values) for name, values in phase.items()})
            slow.apply_inputs({name: list(values) for name, values in phase.items()})
            for lane, scalar in enumerate(scalars):
                scalar.apply_inputs(
                    {name: values[lane] for name, values in phase.items()}
                )
            _snapshot(fast, scalars, outputs)
            _snapshot(slow, scalars, outputs)


def test_roundtrip_preserves_number_literal_text():
    source = "module m(output [7:0] y); assign y = 8'hA5 + 8'b0001_0010; endmodule"
    emitted = write_module(parse_module(source))
    assert "8'hA5" in emitted
    assert parse_module(emitted) == parse_module(source)
