"""Line-coverage report for ``src/repro`` (``make coverage``).

Prefers the ``coverage`` package when it is installed; otherwise falls back to
a stdlib ``sys.settrace`` collector.  The fallback installs a *local* trace
function only for frames whose code lives under ``src/repro``, so test and
stdlib frames pay call-event overhead only — the functional suite stays
runnable in a few minutes even without the C tracer.

Executable-line universes come from compiling each source file and walking the
code objects' ``co_lines`` tables, so the denominator matches what the
interpreter can actually execute (not blank/comment lines).

Usage (from the repository root)::

    PYTHONPATH=src python tools/coverage_report.py [pytest args...]

Default pytest arguments: ``-q -m "not perf" tests``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SOURCE_ROOT = REPO_ROOT / "src" / "repro"


def _executable_lines(path: Path) -> set[int]:
    """All line numbers the compiled module can execute."""
    try:
        code = compile(path.read_text(), str(path), "exec")
    except SyntaxError:
        return set()
    lines: set[int] = set()
    stack = [code]
    while stack:
        current = stack.pop()
        lines.update(line for _, _, line in current.co_lines() if line is not None)
        for constant in current.co_consts:
            if hasattr(constant, "co_lines"):
                stack.append(constant)
    return lines


def _run_with_settrace(pytest_args: list[str]) -> tuple[int, dict[str, set[int]]]:
    import pytest

    prefix = str(SOURCE_ROOT) + "/"
    executed: dict[str, set[int]] = {}

    def local_trace(frame, event, arg):
        if event == "line":
            executed.setdefault(frame.f_code.co_filename, set()).add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        if event == "call" and frame.f_code.co_filename.startswith(prefix):
            return local_trace
        return None

    import threading

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    return int(exit_code), executed


def _run_with_coverage_package(pytest_args: list[str]) -> tuple[int, dict[str, set[int]]]:
    import coverage
    import pytest

    cov = coverage.Coverage(source=[str(SOURCE_ROOT)])
    cov.start()
    exit_code = pytest.main(pytest_args)
    cov.stop()
    data = cov.get_data()
    executed = {
        filename: set(data.lines(filename) or []) for filename in data.measured_files()
    }
    return int(exit_code), executed


def report(executed: dict[str, set[int]]) -> float:
    """Print the per-file table; return total percent covered."""
    rows: list[tuple[str, int, int]] = []
    for path in sorted(SOURCE_ROOT.rglob("*.py")):
        universe = _executable_lines(path)
        if not universe:
            continue
        hit = executed.get(str(path), set()) & universe
        rows.append((str(path.relative_to(REPO_ROOT)), len(hit), len(universe)))
    name_width = max((len(name) for name, _, _ in rows), default=20)
    print(f"\n{'file':<{name_width}}  {'lines':>6} {'hit':>6} {'cover':>7}")
    total_hit = 0
    total_lines = 0
    for name, hit, universe in rows:
        total_hit += hit
        total_lines += universe
        print(f"{name:<{name_width}}  {universe:>6} {hit:>6} {100.0 * hit / universe:>6.1f}%")
    percent = 100.0 * total_hit / total_lines if total_lines else 0.0
    print(f"{'TOTAL':<{name_width}}  {total_lines:>6} {total_hit:>6} {percent:>6.1f}%")
    return percent


def main(argv: list[str] | None = None) -> int:
    pytest_args = list(argv if argv is not None else sys.argv[1:])
    if not pytest_args:
        pytest_args = ["-q", "-m", "not perf", "tests"]
    try:
        import coverage  # noqa: F401

        exit_code, executed = _run_with_coverage_package(pytest_args)
        mode = "coverage package"
    except ImportError:
        exit_code, executed = _run_with_settrace(pytest_args)
        mode = "stdlib settrace fallback"
    print(f"\ncoverage mode: {mode}")
    report(executed)
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
