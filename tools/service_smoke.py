"""Service smoke: real processes, a killed worker, an exact requeue count.

The CI ``service-smoke`` job (and ``make service-smoke``) runs this script.
It boots the HTTP API and a worker as real subprocesses, submits a tiny
manifest over HTTP, SIGKILLs the worker while the ``REPRO_SERVICE_STALL_S``
fault hook has it frozen holding leases, and lets a second worker finish the
run.  It then asserts the service contract:

* every lease the dead worker held expired and was requeued — exactly that
  many ``requeue`` events, no more;
* the run completed healthy (every unit journaled exactly once);
* ``/metrics`` parses and reports the exact requeue count and a nonzero
  units/s throughput.

Exit code 0 on success; any broken assertion or timeout fails the job.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
LEASE_TTL_S = 2.0
STALLED_LEASES = 2


def log(message: str) -> None:
    print(f"[service-smoke] {message}", flush=True)


def service_cmd(broker_dir: Path, *args: str) -> list[str]:
    return [sys.executable, "-m", "repro.service", "--broker", str(broker_dir), *args]


def service_env(**extra: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env.pop("REPRO_SERVICE_STALL_S", None)
    env.update(extra)
    return env


def wait_for(predicate, *, timeout_s: float, what: str):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    raise TimeoutError(f"timed out after {timeout_s}s waiting for {what}")


def http_json(url: str, data: bytes | None = None) -> dict:
    with urllib.request.urlopen(
        urllib.request.Request(url, data=data), timeout=15
    ) as response:
        return json.load(response)


def main() -> int:
    broker_dir = Path(tempfile.mkdtemp(prefix="service-smoke-")) / "broker"
    procs: list[subprocess.Popen] = []
    try:
        # --- boot the API server and parse its ephemeral port -------------
        server = subprocess.Popen(
            service_cmd(broker_dir, "serve", "--port", "0", "--lease-ttl", str(LEASE_TTL_S)),
            env=service_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        procs.append(server)
        banner = server.stdout.readline().strip()
        match = re.search(r"listening on (http://\S+)", banner)
        assert match, f"unexpected server banner: {banner!r}"
        base_url = match.group(1)
        log(f"server up at {base_url}")

        # --- submit a tiny manifest over HTTP ------------------------------
        build = subprocess.run(
            [
                sys.executable,
                "-c",
                "import json\n"
                "from repro.experiments import ExperimentScale\n"
                "from repro.runs.presets import table4_manifest\n"
                "manifest = table4_manifest(ExperimentScale.tiny(),"
                " baseline_keys=['gpt-4'], include_haven=False)\n"
                "print(json.dumps(manifest.to_dict()))",
            ],
            env=service_env(),
            capture_output=True,
            text=True,
            check=True,
        )
        receipt = http_json(base_url + "/runs", data=build.stdout.encode())
        run_id, total = receipt["run_id"], receipt["total_units"]
        log(f"submitted run {run_id[:12]}: {total} units")
        assert total > STALLED_LEASES

        # --- a worker leases units, then plays dead ------------------------
        victim = subprocess.Popen(
            service_cmd(
                broker_dir,
                "worker",
                "--lease-ttl",
                str(LEASE_TTL_S),
                "--lease-limit",
                str(STALLED_LEASES),
            ),
            env=service_env(REPRO_SERVICE_STALL_S="300"),
        )
        procs.append(victim)
        leases_dir = broker_dir / "runs" / run_id / "leases"
        held = wait_for(
            lambda: (
                sorted(path.name for path in leases_dir.iterdir())
                if leases_dir.is_dir()
                and len(list(leases_dir.iterdir())) >= STALLED_LEASES
                else None
            ),
            timeout_s=90,
            what="the victim worker to acquire its leases",
        )
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
        log(f"killed worker holding {len(held)} leases")

        # --- a survivor sweeps the corpses and drains the run --------------
        survivor = subprocess.Popen(
            service_cmd(
                broker_dir,
                "worker",
                "--lease-ttl",
                str(LEASE_TTL_S),
                "--exit-when-idle",
            ),
            env=service_env(),
        )
        procs.append(survivor)
        assert survivor.wait(timeout=600) == 0, "survivor worker failed"

        status = http_json(f"{base_url}/runs/{run_id}")
        log(
            f"run finished: {status['completed_units']}/{status['total_units']}"
            f" units, {status['requeues']} requeues"
        )
        assert status["complete"], f"run incomplete: {status}"
        assert status["healthy"], f"run unhealthy: {status}"
        assert status["completed_units"] == total
        assert status["requeues"] == len(held), (
            f"expected exactly {len(held)} requeues, saw {status['requeues']}"
        )

        # --- the metrics endpoint agrees -----------------------------------
        with urllib.request.urlopen(base_url + "/metrics", timeout=15) as response:
            metrics = response.read().decode()
        requeue_line = f'repro_lease_requeues_total{{run="{run_id[:12]}"}} {len(held)}'
        assert requeue_line in metrics, f"missing {requeue_line!r} in /metrics"
        rate = [
            float(line.split()[-1])
            for line in metrics.splitlines()
            if line.startswith("repro_units_per_second")
        ]
        assert rate and rate[0] > 0, f"units/s not positive: {rate}"
        log(f"metrics ok: {requeue_line}; units/s={rate[0]}")
        log("PASS")
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
